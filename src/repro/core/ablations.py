"""Factory for the ablated KVEC variants of the paper's Fig. 9.

Each variant is a full KVEC model whose configuration disables exactly one
ingredient:

* ``"w/o Key Correlation"`` — the dynamic mask keeps only value correlations,
* ``"w/o Value Correlation"`` — each key-value sequence is modelled
  independently (only intra-sequence attention),
* ``"w/o Time-related Embed."`` — relative-position and time embeddings are
  removed from the input embedding,
* ``"w/o Membership Embed."`` — the membership embedding is removed.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.config import KVECConfig
from repro.core.model import KVEC
from repro.data.items import ValueSpec

#: Mapping from the variant names used in Fig. 9 to configuration overrides.
ABLATION_VARIANTS: Dict[str, Dict[str, bool]] = {
    "KVEC (ours)": {},
    "w/o Key Correlation": {"use_key_correlation": False},
    "w/o Value Correlation": {"use_value_correlation": False},
    "w/o Time-related Embed.": {"use_time_embeddings": False},
    "w/o Membership Embed.": {"use_membership_embedding": False},
}


def make_kvec_variant(
    variant: str,
    spec: ValueSpec,
    num_classes: int,
    config: KVECConfig,
) -> KVEC:
    """Build the KVEC model corresponding to an ablation ``variant`` name."""
    if variant not in ABLATION_VARIANTS:
        raise KeyError(f"unknown ablation variant {variant!r}; known: {sorted(ABLATION_VARIANTS)}")
    overrides = ABLATION_VARIANTS[variant]
    return KVEC(spec, num_classes, config.with_overrides(**overrides))
