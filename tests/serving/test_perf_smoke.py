"""Perf smoke: the incremental serving path must beat full re-encode.

Deselected by default (see ``pytest.ini``); run with ``pytest -m perf_smoke``.
The assertions are wall-clock based and intentionally loose (2x at window 256
where the measured margin is orders of magnitude larger) so the smoke stays
robust on loaded CI machines.
"""

import pytest

pytestmark = pytest.mark.perf_smoke


def test_incremental_at_least_2x_full_reencode_at_window_256():
    bench = pytest.importorskip(
        "benchmarks.bench_ext_serving_latency",
        reason="benchmarks/ must be importable (run pytest from the repo root)",
    )
    result = bench.run_latency_comparison("unit", emit_json=False)
    stats = result["windows"][256]
    assert stats["speedup_mean"]["fill"] >= 2.0, stats
