"""Tests for the evaluator, the KVEC estimator adapter and the RQ analyses."""

import numpy as np
import pytest

from repro.baselines.srn_fixed import SRNFixed
from repro.baselines.prefix import PrefixSRNConfig
from repro.eval.attention_analysis import attention_score_profile
from repro.eval.estimators import KVECEstimator
from repro.eval.evaluator import evaluate_method, prepare_tangled_splits
from repro.eval.halting_analysis import (
    distribution_distance,
    halting_position_distribution,
    true_halting_distribution,
)


class TestPrepareTangledSplits:
    def test_splits_have_expected_structure(self, tiny_traffic_dataset):
        splits = prepare_tangled_splits(tiny_traffic_dataset, concurrency=3, seed=0)
        train, validation, test = splits.sizes()
        assert train > 0 and test > 0
        assert splits.num_classes == tiny_traffic_dataset.num_classes
        assert splits.spec is tiny_traffic_dataset.spec

    def test_no_key_leakage_between_subsets(self, tiny_traffic_dataset):
        splits = prepare_tangled_splits(tiny_traffic_dataset, concurrency=3, seed=1)
        train_keys = {key for tangle in splits.train for key in tangle.keys}
        test_keys = {key for tangle in splits.test for key in tangle.keys}
        assert not train_keys & test_keys

    def test_concurrency_respected(self, tiny_traffic_dataset):
        splits = prepare_tangled_splits(tiny_traffic_dataset, concurrency=4, seed=2)
        assert max(tangle.num_keys for tangle in splits.train) <= 4


class TestEvaluateMethod:
    def test_returns_summary_and_records(self, tiny_splits, tiny_traffic_dataset):
        splits = prepare_tangled_splits(tiny_traffic_dataset, concurrency=3, seed=0)
        method = SRNFixed(
            splits.spec,
            splits.num_classes,
            halt_time=5,
            config=PrefixSRNConfig(d_model=16, num_blocks=1, epochs=1, batch_size=8),
        )
        result = evaluate_method(method, splits)
        assert result.method == "SRN-Fixed"
        assert result.summary.num_sequences == len(result.records)
        assert 0.0 <= result.metric("accuracy") <= 1.0

    def test_kvec_estimator_interface(self, tiny_splits, tiny_kvec_config):
        estimator = KVECEstimator(tiny_splits["spec"], tiny_splits["num_classes"], tiny_kvec_config)
        estimator.fit(tiny_splits["train"])
        assert estimator.history is not None
        records = estimator.predict_all(tiny_splits["test"])
        assert records
        assert all(0 <= r.predicted < tiny_splits["num_classes"] for r in records)


class TestAttentionAnalysis:
    def test_profile_points_are_well_formed(self, trained_tiny_kvec):
        model = trained_tiny_kvec["model"]
        splits = trained_tiny_kvec["splits"]
        points = attention_score_profile(model, splits["test"][:2], earliness_levels=(0.2, 1.0))
        assert len(points) == 2
        for point in points:
            assert point.internal_score >= 0.0
            assert point.external_score >= 0.0
            assert point.internal_score + point.external_score <= 1.0 + 1e-6
            assert 0.0 <= point.accuracy <= 1.0

    def test_internal_attention_grows_with_observation(self, trained_tiny_kvec):
        model = trained_tiny_kvec["model"]
        splits = trained_tiny_kvec["splits"]
        points = attention_score_profile(model, splits["test"][:2], earliness_levels=(0.1, 1.0))
        assert points[-1].internal_score >= points[0].internal_score - 0.05


class TestHaltingAnalysis:
    def test_true_distribution_concentrated_at_signal_end(self, tiny_stop_dataset):
        splits = prepare_tangled_splits(tiny_stop_dataset, concurrency=2, seed=0)
        distribution = true_halting_distribution(tiny_stop_dataset, splits.test, num_bins=10)
        assert distribution.proportions.sum() == pytest.approx(1.0)
        # Stop signal ends at item 10 of 30 -> fraction 1/3.
        assert distribution.mean_earliness() == pytest.approx(1.0 / 3.0, abs=0.1)

    def test_predicted_distribution_sums_to_one(self, tiny_stop_dataset, tiny_kvec_config):
        splits = prepare_tangled_splits(tiny_stop_dataset, concurrency=2, seed=0)
        estimator = KVECEstimator(splits.spec, splits.num_classes, tiny_kvec_config)
        estimator.fit(splits.train)
        distribution = halting_position_distribution(estimator, splits.test, num_bins=10)
        assert distribution.proportions.sum() == pytest.approx(1.0)
        assert len(distribution.as_series()) == 10

    def test_distribution_distance_properties(self, tiny_stop_dataset):
        splits = prepare_tangled_splits(tiny_stop_dataset, concurrency=2, seed=0)
        distribution = true_halting_distribution(tiny_stop_dataset, splits.test, num_bins=10)
        assert distribution_distance(distribution, distribution) == pytest.approx(0.0)

    def test_distribution_distance_requires_same_binning(self, tiny_stop_dataset):
        splits = prepare_tangled_splits(tiny_stop_dataset, concurrency=2, seed=0)
        coarse = true_halting_distribution(tiny_stop_dataset, splits.test, num_bins=5)
        fine = true_halting_distribution(tiny_stop_dataset, splits.test, num_bins=10)
        with pytest.raises(ValueError):
            distribution_distance(coarse, fine)
