"""The Synthetic-Traffic dataset with known halting positions.

The paper builds this dataset to evaluate the *halting policy* (Fig. 11):
real datasets do not label the position at which enough evidence has arrived,
so the authors place a 10-packet discriminative **stop signal** either at the
start of each flow (the *early-stop* subdataset) or at its end (the
*late-stop* subdataset), and fill the rest of the flow with uninformative
"empty" packets.  A good halting policy should halt right after the stop
signal has been observed.

We reproduce the construction directly.  Each class has a distinct stop-signal
template over (packet size, direction); empty packets use a reserved neutral
size code and a random direction so they carry no class information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Literal, Tuple

import numpy as np

from repro.data.items import Item, KeyValueSequence, ValueSpec
from repro.datasets.base import GeneratedDataset

Subset = Literal["early", "late"]


@dataclass
class SyntheticStopConfig:
    """Configuration of the Synthetic-Traffic generator."""

    name: str = "Synthetic-Traffic"
    num_flows: int = 200
    flow_length: int = 100
    signal_length: int = 10
    num_size_buckets: int = 16
    subset: Subset = "early"
    noise_probability: float = 0.05
    seed: int = 31

    def __post_init__(self) -> None:
        if self.signal_length >= self.flow_length:
            raise ValueError("signal_length must be smaller than flow_length")
        if self.subset not in ("early", "late"):
            raise ValueError(f"subset must be 'early' or 'late', got {self.subset!r}")
        if self.num_size_buckets < 4:
            raise ValueError("need at least 4 size buckets (one is reserved for empty packets)")


def synthetic_stop_value_spec(num_size_buckets: int = 16) -> ValueSpec:
    """Same schema as the traffic datasets: (size bucket, direction)."""
    return ValueSpec(
        field_names=("size", "direction"),
        cardinalities=(num_size_buckets, 2),
        session_field=1,
    )


def make_synthetic_traffic(
    num_flows: int = 200,
    subset: Subset = "early",
    seed: int = 31,
    **overrides,
) -> GeneratedDataset:
    """Generate the Synthetic-Traffic dataset (early-stop or late-stop)."""
    config = SyntheticStopConfig(num_flows=num_flows, subset=subset, seed=seed, **overrides)
    return generate_synthetic_stop_dataset(config)


def generate_synthetic_stop_dataset(config: SyntheticStopConfig) -> GeneratedDataset:
    """Generate the dataset described by ``config``."""
    rng = np.random.default_rng(config.seed)
    spec = synthetic_stop_value_spec(config.num_size_buckets)

    # The last size bucket is reserved for "empty" packets so the stop signal
    # and the filler never overlap.
    empty_code = config.num_size_buckets - 1
    templates = _make_templates(config, rng, empty_code)

    sequences: List[KeyValueSequence] = []
    stop_positions: Dict[Hashable, int] = {}
    for flow_index in range(config.num_flows):
        label = flow_index % 2
        key = f"synth-{config.subset}-{flow_index}"
        items, stop_position = _generate_flow(key, label, templates[label], empty_code, config, rng)
        sequences.append(KeyValueSequence(key, items, label))
        stop_positions[key] = stop_position

    return GeneratedDataset(
        name=f"{config.name}-{config.subset}",
        sequences=sequences,
        spec=spec,
        num_classes=2,
        class_names=("class-a", "class-b"),
        true_stop_positions=stop_positions,
    )


def _make_templates(
    config: SyntheticStopConfig,
    rng: np.random.Generator,
    empty_code: int,
) -> List[List[Tuple[int, int]]]:
    """Build one distinct stop-signal template per class."""
    templates: List[List[Tuple[int, int]]] = []
    usable = empty_code  # codes [0, empty_code) are available for signals
    half = max(1, usable // 2)
    for label in range(2):
        # Class 0 uses the lower half of the size range, class 1 the upper
        # half, so the signals are linearly separable but only once observed.
        low = 0 if label == 0 else half
        high = half if label == 0 else usable
        template = [
            (int(rng.integers(low, high)), int(rng.integers(0, 2)))
            for _ in range(config.signal_length)
        ]
        templates.append(template)
    return templates


def _generate_flow(
    key: str,
    label: int,
    template: List[Tuple[int, int]],
    empty_code: int,
    config: SyntheticStopConfig,
    rng: np.random.Generator,
) -> Tuple[List[Item], int]:
    """Generate one flow and return its items plus the true stop position."""
    length = config.flow_length
    signal_length = config.signal_length
    if config.subset == "early":
        signal_start = 0
    else:
        signal_start = length - signal_length
    # The flow is classifiable once the whole signal has been observed.
    stop_position = signal_start + signal_length

    items: List[Item] = []
    time = 0.0
    for position in range(length):
        in_signal = signal_start <= position < signal_start + signal_length
        if in_signal and rng.random() >= config.noise_probability:
            size_code, direction = template[position - signal_start]
        else:
            size_code = empty_code
            direction = int(rng.integers(0, 2))
        items.append(Item(key=key, value=(size_code, direction), time=time))
        time += float(rng.exponential(1.0))
    return items, stop_position
