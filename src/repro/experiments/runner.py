"""Command-line runner for the registered experiments.

Examples
--------
List experiments::

    python -m repro.experiments.runner --list

Run one experiment at benchmark scale::

    python -m repro.experiments.runner fig3_accuracy --scale bench
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.experiments.registry import get_experiment, list_experiments


def run_experiment(identifier: str, scale: str = "bench", **kwargs):
    """Run one registered experiment and return its result object."""
    experiment = get_experiment(identifier)
    return experiment.run(scale, **kwargs)


def _render(result) -> str:
    render = getattr(result, "render", None)
    if callable(render):
        return render()
    return repr(result)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Run KVEC reproduction experiments")
    parser.add_argument("experiment", nargs="?", help="experiment id (see --list)")
    parser.add_argument("--scale", default="bench", choices=("unit", "bench", "paper"))
    parser.add_argument("--list", action="store_true", help="list registered experiments")
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        for experiment in list_experiments():
            print(f"{experiment.identifier:<24} {experiment.paper_artifact:<10} {experiment.description}")
        return 0

    start = time.perf_counter()
    result = run_experiment(args.experiment, scale=args.scale)
    elapsed = time.perf_counter() - start
    print(_render(result))
    print(f"\n[{args.experiment} @ {args.scale}] completed in {elapsed:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
