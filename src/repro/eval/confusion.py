"""Confusion matrices and per-class classification reports.

The paper reports macro precision/recall/F1 (Figs. 4-6); per-class numbers
are what a practitioner needs to understand *which* application types or
user segments a model confuses, so the evaluation layer also exposes the
full confusion matrix and a classification report in the familiar
scikit-learn layout (implemented from scratch — scikit-learn is not a
dependency of this package).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.model import PredictionRecord


@dataclass
class ClassReport:
    """Precision / recall / F1 / support of one class."""

    label: int
    precision: float
    recall: float
    f1: float
    support: int


class ConfusionMatrix:
    """A ``(num_classes, num_classes)`` count matrix: rows = truth, cols = prediction."""

    def __init__(self, num_classes: int) -> None:
        if num_classes < 2:
            raise ValueError("need at least two classes")
        self.num_classes = num_classes
        self.counts = np.zeros((num_classes, num_classes), dtype=np.int64)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_records(cls, records: Sequence[PredictionRecord], num_classes: Optional[int] = None) -> "ConfusionMatrix":
        """Build a confusion matrix from prediction records."""
        if num_classes is None:
            highest = max(
                [record.label for record in records] + [record.predicted for record in records],
                default=1,
            )
            num_classes = max(2, highest + 1)
        matrix = cls(num_classes)
        for record in records:
            matrix.add(record.label, record.predicted)
        return matrix

    def add(self, label: int, predicted: int, count: int = 1) -> None:
        """Record ``count`` sequences of true class ``label`` predicted as ``predicted``."""
        if not 0 <= label < self.num_classes or not 0 <= predicted < self.num_classes:
            raise ValueError(
                f"label {label} / prediction {predicted} outside [0, {self.num_classes})"
            )
        if count < 0:
            raise ValueError("count must be non-negative")
        self.counts[label, predicted] += count

    def merge(self, other: "ConfusionMatrix") -> "ConfusionMatrix":
        """Return a new matrix holding the element-wise sum of two matrices."""
        if other.num_classes != self.num_classes:
            raise ValueError("cannot merge confusion matrices of different sizes")
        merged = ConfusionMatrix(self.num_classes)
        merged.counts = self.counts + other.counts
        return merged

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def support(self, label: int) -> int:
        """Number of sequences whose true class is ``label``."""
        return int(self.counts[label].sum())

    def accuracy(self) -> float:
        total = self.total
        return float(np.trace(self.counts) / total) if total else 0.0

    def precision(self, label: int) -> float:
        predicted = self.counts[:, label].sum()
        return float(self.counts[label, label] / predicted) if predicted else 0.0

    def recall(self, label: int) -> float:
        actual = self.counts[label].sum()
        return float(self.counts[label, label] / actual) if actual else 0.0

    def f1(self, label: int) -> float:
        precision = self.precision(label)
        recall = self.recall(label)
        if precision + recall == 0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

    def per_class_report(self) -> List[ClassReport]:
        """Per-class precision / recall / F1 / support for every class."""
        return [
            ClassReport(
                label=label,
                precision=self.precision(label),
                recall=self.recall(label),
                f1=self.f1(label),
                support=self.support(label),
            )
            for label in range(self.num_classes)
        ]

    def macro_averages(self) -> Tuple[float, float, float]:
        """Macro precision, recall and F1 over classes that appear in the data.

        Classes with zero support *and* zero predictions are excluded, which
        matches the behaviour of :mod:`repro.eval.metrics` (its per-class
        counts only contain observed labels).
        """
        reports = [
            report
            for report in self.per_class_report()
            if report.support > 0 or self.counts[:, report.label].sum() > 0
        ]
        if not reports:
            return 0.0, 0.0, 0.0
        precision = float(np.mean([report.precision for report in reports]))
        recall = float(np.mean([report.recall for report in reports]))
        f1 = float(np.mean([report.f1 for report in reports]))
        return precision, recall, f1

    def most_confused_pairs(self, top: int = 3) -> List[Tuple[int, int, int]]:
        """The ``top`` largest off-diagonal entries as ``(truth, predicted, count)``."""
        if top <= 0:
            raise ValueError("top must be positive")
        pairs: List[Tuple[int, int, int]] = []
        for truth in range(self.num_classes):
            for predicted in range(self.num_classes):
                if truth != predicted and self.counts[truth, predicted] > 0:
                    pairs.append((truth, predicted, int(self.counts[truth, predicted])))
        pairs.sort(key=lambda pair: pair[2], reverse=True)
        return pairs[:top]

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def render(self, class_names: Sequence[str] = ()) -> str:
        """Render the matrix as an aligned text table."""
        names = list(class_names) if class_names else [str(label) for label in range(self.num_classes)]
        if len(names) != self.num_classes:
            raise ValueError("class_names length must match num_classes")
        width = max(6, max(len(name) for name in names) + 1)
        header = " " * width + "".join(f"{name:>{width}}" for name in names)
        lines = ["confusion matrix (rows = truth, columns = prediction)", header]
        for label, name in enumerate(names):
            row = f"{name:>{width}}" + "".join(
                f"{int(self.counts[label, predicted]):>{width}}" for predicted in range(self.num_classes)
            )
            lines.append(row)
        return "\n".join(lines)


def classification_report(
    records: Sequence[PredictionRecord],
    num_classes: Optional[int] = None,
    class_names: Sequence[str] = (),
) -> str:
    """Render a per-class precision/recall/F1/support report from records."""
    matrix = ConfusionMatrix.from_records(records, num_classes=num_classes)
    names = list(class_names) if class_names else [str(label) for label in range(matrix.num_classes)]
    if len(names) != matrix.num_classes:
        raise ValueError("class_names length must match the number of classes")
    lines = [f"{'class':<16}{'precision':>10}{'recall':>10}{'f1':>10}{'support':>10}"]
    for report in matrix.per_class_report():
        lines.append(
            f"{names[report.label]:<16}{report.precision:>10.3f}{report.recall:>10.3f}"
            f"{report.f1:>10.3f}{report.support:>10d}"
        )
    precision, recall, f1 = matrix.macro_averages()
    lines.append(
        f"{'macro avg':<16}{precision:>10.3f}{recall:>10.3f}{f1:>10.3f}{matrix.total:>10d}"
    )
    lines.append(f"{'accuracy':<16}{matrix.accuracy():>10.3f}")
    return "\n".join(lines)
