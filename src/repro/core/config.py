"""Configuration of the KVEC model and its training procedure."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple


@dataclass
class KVECConfig:
    """Hyperparameters of KVEC.

    The defaults are scaled-down versions of the paper's settings (Section
    V-A4: 6 attention blocks with 128-dimensional embeddings on the traffic
    datasets, a 256-cell LSTM fusion layer, Adam with learning rate 1e-4,
    100 epochs, batch size 64) so that CPU training with the numpy substrate
    converges in seconds at test scale and minutes at benchmark scale.

    Attributes
    ----------
    d_model:
        Dimension of item embeddings inside KVRL.
    num_blocks:
        Number of stacked attention blocks (paper: 6 for traffic, 2 for
        MovieLens).
    num_heads:
        Attention heads per block (the paper's formulation is single-head).
    ffn_hidden:
        Hidden width of the position-wise feed-forward network.
    d_state:
        Dimension of the per-sequence representation maintained by the gated
        fusion (paper: 256).
    dropout:
        Dropout probability inside attention blocks (paper: 0.1).
    max_positions / max_keys / max_time:
        Capacities of the relative-position, membership and time embedding
        tables; indices beyond the capacity are clamped to the last entry.
    alpha / beta:
        Loss weights: ``l = l1 + alpha * l2 + beta * l3`` (Section IV-E).
        ``alpha`` scales the REINFORCE policy loss, ``beta`` the earliness
        penalty.  The paper freezes ``alpha = 0.1`` and sweeps ``beta`` to
        trace the accuracy/earliness curve.
    learning_rate / baseline_learning_rate:
        Adam learning rates for the model parameters θ and the baseline
        value-network parameters θb respectively.
    epochs / batch_size:
        Training epochs and the number of tangled sequences per gradient
        accumulation window.
    grad_clip:
        Global gradient-norm clip (0 disables clipping).
    use_key_correlation / use_value_correlation:
        Ablation switches for the two correlation types in the dynamic mask
        ("w/o Key Correlation", "w/o Value Correlation" in Fig. 9).
    use_membership_embedding / use_time_embeddings:
        Ablation switches for the membership embedding and the time-related
        (relative position + time) embeddings ("w/o Membership Embed.",
        "w/o Time-related Embed." in Fig. 9).  Under ``encoding="rotary"``
        the latter switch disables the attention-side rotary phases and the
        relative within-key position bias instead.
    encoding:
        How time/position information enters the model.  ``"absolute"`` (the
        paper's scheme, the default) adds learned absolute position/time
        embeddings indexed by the item's offset *within the current window* —
        faithful to the paper but eviction-unstable: sliding-window serving
        must re-encode everything whenever an item is evicted.  ``"rotary"``
        moves the time-related signal into attention: queries/keys are phase
        rotated by the item's *global* arrival index (rotary embedding, so
        attention logits depend only on arrival-index differences) and a
        learned relative within-key position bias replaces the absolute
        position embedding; the membership embedding is indexed by a stable
        hash of the key.  An item's embedding, cached K/V projections and
        fused representation then never depend on its current offset in the
        serving window, enabling O(W·d) steady-state serving (see
        :mod:`repro.core.incremental`).
    fusion:
        Fusion mechanism: ``"gated"`` (the paper's LSTM-style gating),
        ``"mean"`` or ``"last"`` (parameter-free ablations).
    batched_training:
        Run training minibatches through the cross-sample lockstep episode
        runner (:mod:`repro.core.batched_episodes`): one GEMM per step
        across the minibatch instead of per-sample GEMV chains.  Losses and
        gradients match the per-sample path within 1e-8 at equal seeds (the
        parity suite pins this); off by default so existing configs keep the
        reference path.
    seed:
        Seed for parameter initialisation and action sampling.
    """

    d_model: int = 32
    num_blocks: int = 2
    num_heads: int = 2
    ffn_hidden: int = 64
    d_state: int = 48
    dropout: float = 0.1
    max_positions: int = 256
    max_keys: int = 64
    max_time: int = 512
    alpha: float = 0.1
    beta: float = 0.001
    learning_rate: float = 1e-3
    baseline_learning_rate: float = 1e-3
    epochs: int = 10
    batch_size: int = 8
    grad_clip: float = 5.0
    use_key_correlation: bool = True
    use_value_correlation: bool = True
    use_membership_embedding: bool = True
    use_time_embeddings: bool = True
    encoding: str = "absolute"
    fusion: str = "gated"
    batched_training: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.d_model <= 0 or self.d_state <= 0:
            raise ValueError("embedding dimensions must be positive")
        if self.d_model % self.num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        if self.encoding not in ("absolute", "rotary"):
            raise ValueError(f"unknown encoding {self.encoding!r}")
        if self.fusion not in ("gated", "mean", "last"):
            raise ValueError(f"unknown fusion {self.fusion!r}")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")

    def with_overrides(self, **kwargs) -> "KVECConfig":
        """Return a copy of the config with the given fields replaced."""
        return replace(self, **kwargs)

    def paper_scale(self) -> "KVECConfig":
        """Return the configuration matching the paper's published settings."""
        return self.with_overrides(
            d_model=128,
            num_blocks=6,
            num_heads=4,
            ffn_hidden=256,
            d_state=256,
            learning_rate=1e-4,
            epochs=100,
            batch_size=64,
        )
