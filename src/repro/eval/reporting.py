"""ASCII rendering of result tables and figure series.

The benchmark harness prints, for every reproduced table and figure, the same
rows/series the paper reports; these helpers keep that formatting in one
place.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.eval.curves import PerformanceCurve
from repro.eval.metrics import MetricSummary


def render_metric_table(results: Mapping[str, MetricSummary], title: str = "") -> str:
    """Render one row of metrics per method."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = (
        f"{'method':<18}{'accuracy':>10}{'precision':>11}{'recall':>9}{'f1':>7}"
        f"{'earliness':>11}{'HM':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, summary in results.items():
        lines.append(
            f"{name:<18}{summary.accuracy:>10.3f}{summary.precision:>11.3f}"
            f"{summary.recall:>9.3f}{summary.f1:>7.3f}{summary.earliness:>11.3f}"
            f"{summary.harmonic_mean:>7.3f}"
        )
    return "\n".join(lines)


def render_curves(
    curves: Mapping[str, PerformanceCurve],
    metric: str,
    title: str = "",
    as_percent: bool = True,
) -> str:
    """Render performance-vs-earliness series, one line per operating point."""
    lines: List[str] = []
    if title:
        lines.append(title)
    scale = 100.0 if as_percent else 1.0
    for name, curve in curves.items():
        lines.append(f"{name}:")
        for earliness_value, metric_value in curve.series(metric):
            lines.append(
                f"    earliness={earliness_value * 100.0:6.2f}%   {metric}={metric_value * scale:7.2f}"
            )
    return "\n".join(lines)


def render_series(series: Sequence[tuple], x_label: str, y_label: str, title: str = "") -> str:
    """Render a generic ``(x, y)`` series as aligned text rows."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for x_value, y_value in series:
        lines.append(f"    {x_label}={x_value:10.4f}   {y_label}={y_value:10.4f}")
    return "\n".join(lines)


def render_comparison_row(values: Mapping[str, Optional[float]], title: str = "") -> str:
    """Render a one-line comparison of methods (e.g. accuracy at fixed earliness)."""
    parts = []
    for name, value in values.items():
        rendered = "n/a" if value is None else f"{value:.3f}"
        parts.append(f"{name}={rendered}")
    prefix = f"{title}: " if title else ""
    return prefix + "  ".join(parts)
