"""Tests for the non-neural baselines (nearest-prefix and indicator classifiers)."""

import numpy as np
import pytest

from repro.baselines.indicator import IndicatorClassifier, IndicatorConfig
from repro.baselines.nearest_prefix import NearestPrefixClassifier, NearestPrefixConfig
from repro.data.items import Item, KeyValueSequence, ValueSpec
from repro.data.tangle import retangle_by_concurrency
from repro.eval.metrics import summarize

SPEC = ValueSpec(("token", "direction"), (6, 2), 1)


def make_class_sequence(key, label, length=20, rng=None):
    """Class 0 emits tokens {0,1,2}, class 1 emits tokens {3,4,5}; the first
    items are the most discriminative (mirroring the traffic datasets)."""
    rng = rng or np.random.default_rng(abs(hash(key)) % 2**32)
    base = 0 if label == 0 else 3
    items = []
    for position in range(length):
        if position < 4 or rng.random() < 0.7:
            token = base + int(rng.integers(0, 3))
        else:
            token = int(rng.integers(0, 6))
        items.append(Item(key, (token, position % 2), float(position)))
    return KeyValueSequence(key, items, label)


@pytest.fixture(scope="module")
def toy_splits():
    rng = np.random.default_rng(0)
    train = [make_class_sequence(f"t{i}", i % 2, rng=rng) for i in range(24)]
    test = [make_class_sequence(f"e{i}", i % 2, rng=rng) for i in range(10)]
    return {
        "train": retangle_by_concurrency(train, SPEC, 3, rng=np.random.default_rng(1)),
        "test": retangle_by_concurrency(test, SPEC, 3, rng=np.random.default_rng(2)),
    }


class TestNearestPrefixConfig:
    def test_grid_must_be_increasing(self):
        with pytest.raises(ValueError):
            NearestPrefixConfig(prefix_grid=(5, 3))

    def test_margin_non_negative(self):
        with pytest.raises(ValueError):
            NearestPrefixConfig(margin=-0.1)


class TestNearestPrefixClassifier:
    def test_requires_fit_before_predict(self, toy_splits):
        classifier = NearestPrefixClassifier(SPEC, 2)
        with pytest.raises(RuntimeError):
            classifier.predict_tangle(toy_splits["test"][0])

    def test_learns_the_separable_toy_problem(self, toy_splits):
        classifier = NearestPrefixClassifier(SPEC, 2, NearestPrefixConfig(margin=0.0))
        classifier.fit(toy_splits["train"])
        records = classifier.predict_all(toy_splits["test"])
        summary = summarize(records)
        assert summary.accuracy >= 0.8
        assert 0.0 < summary.earliness <= 1.0

    def test_larger_margin_halts_later(self, toy_splits):
        eager = NearestPrefixClassifier(SPEC, 2, NearestPrefixConfig(margin=0.0))
        cautious = NearestPrefixClassifier(SPEC, 2, NearestPrefixConfig(margin=0.9))
        eager.fit(toy_splits["train"])
        cautious.fit(toy_splits["train"])
        eager_summary = summarize(eager.predict_all(toy_splits["test"]))
        cautious_summary = summarize(cautious.predict_all(toy_splits["test"]))
        assert cautious_summary.earliness >= eager_summary.earliness

    def test_records_are_well_formed(self, toy_splits):
        classifier = NearestPrefixClassifier(SPEC, 2)
        classifier.fit(toy_splits["train"])
        for record in classifier.predict_all(toy_splits["test"]):
            assert 1 <= record.halt_observation <= record.sequence_length
            assert 0 <= record.predicted < 2
            assert 0.0 <= record.confidence <= 1.0

    def test_histogram_is_normalised(self):
        classifier = NearestPrefixClassifier(SPEC, 2)
        sequence = make_class_sequence("h", 0)
        histogram = classifier.prefix_histogram(sequence, 5)
        assert histogram.shape == (8,)
        assert histogram.sum() == pytest.approx(1.0)


class TestIndicatorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            IndicatorConfig(ngram_lengths=())
        with pytest.raises(ValueError):
            IndicatorConfig(min_precision=0.0)
        with pytest.raises(ValueError):
            IndicatorConfig(min_support=0)


class TestIndicatorClassifier:
    def test_requires_fit_before_predict(self, toy_splits):
        classifier = IndicatorClassifier(SPEC, 2)
        with pytest.raises(RuntimeError):
            classifier.predict_tangle(toy_splits["test"][0])

    def test_mines_indicators_and_classifies(self, toy_splits):
        classifier = IndicatorClassifier(SPEC, 2, IndicatorConfig(min_support=3, min_precision=0.7))
        classifier.fit(toy_splits["train"])
        assert classifier.indicators, "expected at least one mined indicator"
        records = classifier.predict_all(toy_splits["test"])
        summary = summarize(records)
        assert summary.accuracy >= 0.6
        # Indicators fire on the discriminative first items, so halting is early.
        assert summary.earliness < 0.6

    def test_stricter_precision_mines_fewer_indicators(self, toy_splits):
        loose = IndicatorClassifier(SPEC, 2, IndicatorConfig(min_precision=0.6))
        strict = IndicatorClassifier(SPEC, 2, IndicatorConfig(min_precision=0.99))
        loose.fit(toy_splits["train"])
        strict.fit(toy_splits["train"])
        assert len(strict.indicators) <= len(loose.indicators)

    def test_fallback_to_majority_class(self, toy_splits):
        # With an impossible support requirement nothing is mined and every
        # sequence falls back to the majority class at full length.
        classifier = IndicatorClassifier(SPEC, 2, IndicatorConfig(min_support=10_000))
        classifier.fit(toy_splits["train"])
        records = classifier.predict_all(toy_splits["test"])
        assert all(not record.halted_by_policy for record in records)
        assert all(record.halt_observation == record.sequence_length for record in records)

    def test_records_are_well_formed(self, toy_splits):
        classifier = IndicatorClassifier(SPEC, 2)
        classifier.fit(toy_splits["train"])
        for record in classifier.predict_all(toy_splits["test"]):
            assert 1 <= record.halt_observation <= record.sequence_length
            assert 0 <= record.predicted < 2
