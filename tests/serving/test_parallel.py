"""Unit tests for the shard execution backends and the adaptive controller.

Cluster-level parity of the backends lives in ``test_cluster.py``; this file
tests the executors and the batch controller as components: pinning, ordered
fan-out, exception propagation, re-entrancy, lifecycle, and the controller's
widen/narrow behaviour on synthetic observations.
"""

import os
import threading
import time

import pytest

from repro.serving.faults import ShardKilled
from repro.serving.parallel import (
    AdaptiveBatchConfig,
    AdaptiveBatchController,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    WorkerCrashedError,
    available_cpus,
    make_executor,
)


def _toy_handler(replicas, op, shard_id, payload):
    """Module-level (picklable) command interpreter for executor tests."""
    if op == "echo":
        return {"shard": shard_id, "payload": payload, "pid": os.getpid()}
    if op == "store":
        replicas[shard_id] = payload
        return None
    if op == "load":
        return replicas.get(shard_id, "missing")
    if op == "boom":
        raise ValueError("replica boom")
    if op == "kill":
        raise ShardKilled("replica-side kill")
    raise ValueError(f"unknown op {op!r}")


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestSerialExecutor:
    def test_runs_inline_on_caller(self):
        executor = SerialExecutor()
        assert executor.run(0, threading.get_ident) == threading.get_ident()

    def test_map_preserves_order(self):
        executor = SerialExecutor()
        results = executor.map_shards([lambda i=i: i * 10 for i in range(5)])
        assert results == [0, 10, 20, 30, 40]


class TestThreadExecutor:
    def test_shards_are_pinned_to_one_thread(self):
        """Every run for a shard must execute on the same worker thread,
        across many dispatches — the invariant that keeps session state
        single-threaded without locks."""
        with ThreadExecutor(num_shards=4) as executor:
            homes = {shard: set() for shard in range(4)}
            for _ in range(20):
                for shard in range(4):
                    homes[shard].add(executor.run(shard, threading.get_ident))
            for shard, idents in homes.items():
                assert len(idents) == 1, shard
                assert threading.get_ident() not in idents

    def test_worker_sharing_when_fewer_workers_than_shards(self):
        with ThreadExecutor(num_shards=4, num_workers=2) as executor:
            idents = [executor.run(shard, threading.get_ident) for shard in range(4)]
            assert idents[0] == idents[2]
            assert idents[1] == idents[3]
            assert idents[0] != idents[1]

    def test_map_shards_returns_results_in_shard_order(self):
        """Results must come back indexed by shard even when later shards
        finish first — the deterministic-merge contract."""

        def job(shard):
            time.sleep(0.02 * (3 - shard))  # shard 3 finishes first
            return shard

        with ThreadExecutor(num_shards=4) as executor:
            assert executor.map_shards(
                [lambda shard=shard: job(shard) for shard in range(4)]
            ) == [0, 1, 2, 3]

    def test_map_shards_runs_concurrently(self):
        """All four jobs hold a barrier simultaneously: with one worker per
        shard they must all be in flight at once to get past it."""
        barrier = threading.Barrier(4, timeout=5.0)
        with ThreadExecutor(num_shards=4) as executor:
            results = executor.map_shards(
                [lambda: barrier.wait() is not None for _ in range(4)]
            )
        assert results == [True] * 4

    def test_exception_propagates_from_run(self):
        with ThreadExecutor(num_shards=2) as executor:
            with pytest.raises(ValueError, match="boom"):
                executor.run(1, lambda: (_ for _ in ()).throw(ValueError("boom")))

    def test_map_shards_raises_lowest_shard_error_after_all_complete(self):
        finished = []

        def ok(shard):
            finished.append(shard)
            return shard

        def bad(shard):
            raise RuntimeError(f"shard-{shard}")

        with ThreadExecutor(num_shards=3) as executor:
            with pytest.raises(RuntimeError, match="shard-1"):
                executor.map_shards(
                    [lambda: ok(0), lambda: bad(1), lambda: ok(2)]
                )
        # every non-failing job still ran to completion before the raise
        assert sorted(finished) == [0, 2]

    def test_reentrant_run_executes_inline(self):
        """A job already on a shard's pinned worker may run() for the same
        shard again without deadlocking (the worker-side drain loop does
        exactly this)."""
        with ThreadExecutor(num_shards=2) as executor:

            def outer():
                inner_ident = executor.run(0, threading.get_ident)
                return inner_ident == threading.get_ident()

            assert executor.run(0, outer) is True

    def test_close_is_idempotent_and_rejects_new_work(self):
        executor = ThreadExecutor(num_shards=2)
        executor.close()
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.run(0, lambda: None)

    def test_submit_racing_close_raises_or_completes_never_hangs(self):
        """A submitter overlapping close() must either get its result or the
        'executor is closed' error — a job must never be enqueued behind the
        shutdown sentinel, where no worker would ever complete it."""
        for _ in range(20):
            executor = ThreadExecutor(num_shards=1)
            outcomes = []

            def hammer():
                try:
                    for _ in range(50):
                        outcomes.append(executor.run(0, lambda: 1))
                except RuntimeError as error:
                    outcomes.append(str(error))

            submitter = threading.Thread(target=hammer, daemon=True)
            submitter.start()
            executor.close()
            submitter.join(timeout=5.0)
            assert not submitter.is_alive(), "submitter hung on a lost job"
            assert outcomes  # every attempt resolved to a value or the error

    def test_out_of_range_shard_rejected(self):
        with ThreadExecutor(num_shards=2) as executor:
            with pytest.raises(IndexError):
                executor.run(2, lambda: None)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            ThreadExecutor(num_shards=0)
        with pytest.raises(ValueError):
            ThreadExecutor(num_shards=2, num_workers=0)


class TestProcessExecutor:
    def test_commands_run_in_a_separate_process(self):
        with ProcessExecutor(num_shards=2, handler=_toy_handler) as executor:
            reply = executor.remote_call(0, "echo", {"x": 1})
            assert reply["shard"] == 0
            assert reply["payload"] == {"x": 1}
            assert reply["pid"] != os.getpid()
            assert reply["pid"] == executor.worker_pid(0)

    def test_replica_registry_is_process_local_and_per_shard(self):
        with ProcessExecutor(
            num_shards=2, num_workers=1, handler=_toy_handler
        ) as executor:
            executor.remote_call(0, "store", "zero")
            executor.remote_call(1, "store", "one")
            assert executor.remote_call(0, "load") == "zero"
            assert executor.remote_call(1, "load") == "one"

    def test_worker_side_error_reraises_on_caller(self):
        with ProcessExecutor(num_shards=1, handler=_toy_handler) as executor:
            with pytest.raises(ValueError, match="replica boom"):
                executor.remote_call(0, "boom")
            # the worker survives an ordinary error and keeps serving
            assert executor.remote_call(0, "echo")["shard"] == 0

    def test_shard_killed_means_real_process_death(self):
        """A replica-side ShardKilled reply is followed by actual SIGKILL:
        the error surfaces on the caller AND the worker process dies."""
        with ProcessExecutor(num_shards=1, handler=_toy_handler) as executor:
            pid = executor.worker_pid(0)
            with pytest.raises(ShardKilled):
                executor.remote_call(0, "kill")
            assert _wait_until(lambda: not executor.worker_alive(0))
            assert executor.worker_pid(0) == pid  # dead, not yet respawned

    def test_kill_worker_then_ensure_worker_respawns_empty(self):
        with ProcessExecutor(num_shards=1, handler=_toy_handler) as executor:
            executor.remote_call(0, "store", "payload")
            killed = executor.kill_worker(0)
            assert killed == executor.worker_pid(0)
            assert not executor.worker_alive(0)
            with pytest.raises(WorkerCrashedError):
                executor.remote_call(0, "echo")
            assert executor.ensure_worker(0) is True
            assert executor.worker_alive(0)
            assert executor.worker_pid(0) != killed
            assert executor.worker_respawns == 1
            # the fresh process hosts nothing: state must be reseeded
            assert executor.remote_call(0, "load") == "missing"

    def test_ensure_worker_is_a_noop_on_a_live_worker(self):
        with ProcessExecutor(num_shards=1, handler=_toy_handler) as executor:
            pid = executor.worker_pid(0)
            assert executor.ensure_worker(0) is False
            assert executor.worker_pid(0) == pid
            assert executor.worker_respawns == 0

    def test_abandon_terminates_and_replaces_the_process(self):
        with ProcessExecutor(num_shards=2, num_workers=2, handler=_toy_handler) as executor:
            pid = executor.worker_pid(1)
            assert executor.abandon(1) is True
            assert executor.abandoned_workers == 1
            assert executor.worker_respawns == 1
            assert executor.worker_pid(1) != pid
            # the replacement pump + process serve the shard immediately
            assert executor.remote_call(1, "echo")["pid"] == executor.worker_pid(1)
            assert executor.run(1, lambda: 42) == 42

    def test_shards_share_processes_when_fewer_workers(self):
        with ProcessExecutor(
            num_shards=4, num_workers=2, handler=_toy_handler
        ) as executor:
            pids = [executor.remote_call(s, "echo")["pid"] for s in range(4)]
            assert pids[0] == pids[2]
            assert pids[1] == pids[3]
            assert pids[0] != pids[1]

    def test_close_is_idempotent_and_reaps_processes(self):
        executor = ProcessExecutor(num_shards=2, handler=_toy_handler)
        processes = [p for p in executor._processes if p is not None]
        executor.close()
        executor.close()
        assert all(not p.is_alive() for p in processes)
        assert executor.leaked_workers == 0
        with pytest.raises(RuntimeError, match="closed"):
            executor.run(0, lambda: None)

    def test_out_of_range_shard_rejected(self):
        with ProcessExecutor(num_shards=1, handler=_toy_handler) as executor:
            with pytest.raises(IndexError):
                executor.remote_call(1, "echo")


class TestWorkerCountClamping:
    """Workers beyond the shard count can never receive a pinned job, so
    every backend clamps to ``num_shards`` (explicit and default counts)."""

    def test_thread_executor_clamps_explicit_count(self):
        with ThreadExecutor(num_shards=2, num_workers=8) as executor:
            assert executor.num_workers == 2
            assert len(executor._threads) == 2

    def test_thread_executor_default_is_one_per_shard(self):
        with ThreadExecutor(num_shards=3) as executor:
            assert executor.num_workers == 3

    def test_process_executor_clamps_explicit_count(self):
        with ProcessExecutor(
            num_shards=2, num_workers=8, handler=_toy_handler
        ) as executor:
            assert executor.num_workers == 2
            assert len([p for p in executor._processes if p is not None]) == 2

    def test_process_executor_default_never_exceeds_shards(self):
        with ProcessExecutor(num_shards=1, handler=_toy_handler) as executor:
            assert executor.num_workers == 1
        with ProcessExecutor(num_shards=2, handler=_toy_handler) as executor:
            assert executor.num_workers == min(available_cpus(), 2)

    def test_make_executor_clamps_both_backends(self):
        thread = make_executor("thread", 2, num_workers=16)
        assert thread.num_workers == 2
        thread.close()
        process = make_executor("process", 2, num_workers=16, process_handler=_toy_handler)
        assert process.num_workers == 2
        process.close()


class TestMakeExecutor:
    def test_builds_all_backends(self):
        assert isinstance(make_executor("serial", 2), SerialExecutor)
        thread = make_executor("thread", 2)
        assert isinstance(thread, ThreadExecutor)
        thread.close()
        process = make_executor("process", 2, process_handler=_toy_handler)
        assert isinstance(process, ProcessExecutor)
        process.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("fork", 2)

    def test_available_cpus_positive(self):
        assert available_cpus() >= 1


class TestAvailableCpusCgroupAwareness:
    """``available_cpus()`` must respect container CPU quotas, not just the
    affinity mask — a cgroup-limited box often shows every host core in
    ``sched_getaffinity`` while CFS bandwidth caps actual parallelism."""

    def _with_cgroup_files(self, monkeypatch, tmp_path, v2=None, v1=None):
        from repro.serving import parallel

        v2_path = tmp_path / "cpu.max"
        quota_path = tmp_path / "cfs_quota_us"
        period_path = tmp_path / "cfs_period_us"
        if v2 is not None:
            v2_path.write_text(v2 + "\n")
        if v1 is not None:
            quota_path.write_text(str(v1[0]) + "\n")
            period_path.write_text(str(v1[1]) + "\n")
        monkeypatch.setattr(parallel, "_CGROUP_V2_CPU_MAX", str(v2_path))
        monkeypatch.setattr(parallel, "_CGROUP_V1_CFS_QUOTA", str(quota_path))
        monkeypatch.setattr(parallel, "_CGROUP_V1_CFS_PERIOD", str(period_path))
        return parallel

    def test_v2_quota_caps_the_count(self, monkeypatch, tmp_path):
        parallel = self._with_cgroup_files(monkeypatch, tmp_path, v2="200000 100000")
        assert parallel._cgroup_cpu_limit() == 2

    def test_v2_fractional_quota_rounds_up_with_floor_one(self, monkeypatch, tmp_path):
        parallel = self._with_cgroup_files(monkeypatch, tmp_path, v2="50000 100000")
        assert parallel._cgroup_cpu_limit() == 1
        assert parallel.available_cpus() >= 1

    def test_v2_max_means_unlimited(self, monkeypatch, tmp_path):
        parallel = self._with_cgroup_files(monkeypatch, tmp_path, v2="max 100000")
        assert parallel._cgroup_cpu_limit() is None

    def test_v1_quota_and_period(self, monkeypatch, tmp_path):
        parallel = self._with_cgroup_files(monkeypatch, tmp_path, v1=(300000, 100000))
        assert parallel._cgroup_cpu_limit() == 3

    def test_v1_negative_quota_means_unlimited(self, monkeypatch, tmp_path):
        parallel = self._with_cgroup_files(monkeypatch, tmp_path, v1=(-1, 100000))
        assert parallel._cgroup_cpu_limit() is None

    def test_missing_cgroup_files_mean_unlimited(self, monkeypatch, tmp_path):
        parallel = self._with_cgroup_files(monkeypatch, tmp_path)
        assert parallel._cgroup_cpu_limit() is None

    def test_quota_never_raises_available_cpus(self, monkeypatch, tmp_path):
        """A huge quota must not report more CPUs than the affinity mask."""
        parallel = self._with_cgroup_files(monkeypatch, tmp_path, v2="6400000 100000")
        unpatched = parallel.available_cpus()
        assert unpatched <= 64
        quota = parallel._cgroup_cpu_limit()
        assert quota == 64
        assert parallel.available_cpus() == min(unpatched, quota)


class TestAdaptiveBatchConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(min_batch=0),
            dict(min_batch=4, max_batch=2),
            dict(latency_budget_ms=0.0),
            dict(catchup_rounds=0),
            dict(ewma_alpha=0.0),
            dict(ewma_alpha=1.5),
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveBatchConfig(**kwargs)


class TestAdaptiveBatchController:
    def test_starts_at_min_batch(self):
        controller = AdaptiveBatchController(AdaptiveBatchConfig(min_batch=2))
        assert controller.width == 2

    def test_backlog_widens_rounds(self):
        """A deep remaining backlog must widen the next round toward
        clearing it in ``catchup_rounds`` rounds."""
        controller = AdaptiveBatchController(
            AdaptiveBatchConfig(min_batch=1, max_batch=64, catchup_rounds=2,
                                latency_budget_ms=1000.0)
        )
        width = controller.observe_round(backlog=40, rows=1, elapsed_ms=0.1)
        assert width == 20

    def test_empty_queue_narrows_to_min(self):
        controller = AdaptiveBatchController(AdaptiveBatchConfig(min_batch=1))
        controller.observe_round(backlog=100, rows=8, elapsed_ms=1.0)
        assert controller.width > 1
        controller.observe_round(backlog=0, rows=8, elapsed_ms=1.0)
        assert controller.width == 1

    def test_latency_budget_caps_width(self):
        """With rows costing ~2ms each and an 8ms budget, the controller may
        never pick more than 4 rows per round, whatever the backlog."""
        controller = AdaptiveBatchController(
            AdaptiveBatchConfig(min_batch=1, max_batch=64, latency_budget_ms=8.0,
                                ewma_alpha=1.0)
        )
        width = controller.observe_round(backlog=1000, rows=10, elapsed_ms=20.0)
        assert width == 4

    def test_max_batch_is_a_hard_ceiling(self):
        controller = AdaptiveBatchController(
            AdaptiveBatchConfig(max_batch=16, latency_budget_ms=1000.0)
        )
        assert controller.observe_round(backlog=10_000, rows=1, elapsed_ms=0.01) == 16

    def test_ewma_smooths_latency_samples(self):
        controller = AdaptiveBatchController(AdaptiveBatchConfig(ewma_alpha=0.5))
        controller.observe_round(backlog=0, rows=1, elapsed_ms=2.0)
        controller.observe_round(backlog=0, rows=1, elapsed_ms=4.0)
        assert controller.row_ms_ewma == pytest.approx(3.0)

    def test_empty_rounds_leave_ewma_untouched(self):
        controller = AdaptiveBatchController()
        controller.observe_round(backlog=5, rows=0, elapsed_ms=1.0)
        assert controller.row_ms_ewma is None

    def test_reset_restores_initial_state(self):
        controller = AdaptiveBatchController(AdaptiveBatchConfig(min_batch=3))
        controller.observe_round(backlog=50, rows=4, elapsed_ms=1.0)
        controller.reset()
        assert controller.width == 3
        assert controller.row_ms_ewma is None
        assert controller.rounds_observed == 0
