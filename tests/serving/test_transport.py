"""Unit tests for the round-transport layer (``repro.serving.transport``).

Cluster-level transport parity lives in ``test_cluster.py``; this file tests
the codecs, the ring allocator, the caller/worker transport pairs, and —
critically — segment lifecycle: rings must never leak, not after ``close()``
and not across a SIGKILL/respawn cycle, and the resource tracker must never
warn about them.
"""

import pickle
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.data.items import Item
from repro.data.stream import StreamEvent
from repro.serving.cluster import StreamDecision
from repro.serving.engine import Decision
from repro.serving.parallel import ProcessExecutor
from repro.serving.transport import (
    DEFAULT_RING_BYTES,
    PipeTransport,
    PipeWorkerTransport,
    ShmRing,
    ShmTransport,
    ShmWorkerTransport,
    decode_decisions,
    decode_entries,
    encode_decisions,
    encode_entries,
    make_round_transport,
    make_worker_transport,
    shm_available,
)
from tests.serving.test_parallel import _toy_handler

needs_shm = pytest.mark.skipif(not shm_available(), reason="shared memory unavailable")


def make_entries(ids_and_keys, value=(3, 1)):
    return [
        (stream_id, StreamEvent(float(i), Item(key, value, float(i) + 0.5), f"src-{i}"))
        for i, (stream_id, key) in enumerate(ids_and_keys)
    ]


def make_wrapped_decisions(pairs):
    return [
        StreamDecision(
            stream_id,
            0,
            Decision(key, i % 4, 0.25 * i, i + 1, 10.0 + i, i % 2 == 0, i % 3 == 0),
        )
        for i, (stream_id, key) in enumerate(pairs)
    ]


def roundtrip_entries(entries, capacity=DEFAULT_RING_BYTES):
    buffer = memoryview(bytearray(capacity))
    nbytes = encode_entries(entries, buffer)
    assert nbytes is not None
    return decode_entries(bytes(buffer[:nbytes]))


def roundtrip_decisions(decisions, shard_id=0, capacity=DEFAULT_RING_BYTES):
    buffer = memoryview(bytearray(capacity))
    nbytes = encode_decisions(decisions, buffer)
    assert nbytes is not None
    return decode_decisions(bytes(buffer[:nbytes]), shard_id)


class TestCodecs:
    def test_entries_roundtrip_strings(self):
        entries = make_entries([("stream-1", "k1"), ("stream-2", "k2")] * 5)
        assert roundtrip_entries(entries) == entries

    def test_entries_roundtrip_exotic_hashables(self):
        """Every hashable id/key the cluster accepts must survive the codec:
        machine ints, huge ints (pickle fallback), bytes, tuples, None."""
        entries = make_entries(
            [
                (17, 42),
                (-(1 << 62), 1 << 70),
                (b"raw-id", b"raw-key"),
                (("composite", 3), ("k", 1.5)),
                (None, "key"),
            ]
        )
        assert roundtrip_entries(entries) == entries

    def test_entries_roundtrip_empty_and_empty_values(self):
        assert roundtrip_entries([]) == []
        entries = make_entries([("s", "k")], value=())
        assert roundtrip_entries(entries) == entries

    def test_entries_wide_round_uses_numpy_path(self):
        entries = make_entries(
            [(f"stream-{i % 7}", f"key-{i % 13}") for i in range(300)]
        )
        assert roundtrip_entries(entries) == entries

    def test_decoded_values_are_native_types(self):
        """Decoded events must compare and pickle exactly like never-
        serialised ones — no numpy scalars may leak out of the codec."""
        entries = make_entries([(f"s{i}", f"k{i}") for i in range(300)])
        for _, event in roundtrip_entries(entries):
            assert type(event.time) is float
            assert type(event.item.time) is float
            assert all(type(v) is int for v in event.item.value)
        assert pickle.loads(pickle.dumps(roundtrip_entries(entries))) == entries

    def test_decisions_roundtrip(self):
        decisions = make_wrapped_decisions(
            [(f"stream-{i}", f"key-{i}") for i in range(6)]
        )
        assert roundtrip_decisions(decisions) == decisions

    def test_decisions_roundtrip_wide_and_exotic(self):
        decisions = make_wrapped_decisions(
            [((i, "t"), i * 1000) for i in range(200)]
        )
        got = roundtrip_decisions(decisions, shard_id=3)
        assert [d.decision for d in got] == [d.decision for d in decisions]
        assert all(d.shard_id == 3 for d in got)

    def test_decision_flags_roundtrip_independently(self):
        for halted in (False, True):
            for truncated in (False, True):
                decision = StreamDecision(
                    "s", 0, Decision("k", 1, 0.5, 3, 1.0, halted, truncated)
                )
                (got,) = roundtrip_decisions([decision])
                assert got.decision.halted_by_policy is halted
                assert got.decision.window_truncated is truncated

    def test_oversized_payload_returns_none(self):
        entries = make_entries([("stream-1", "key-1")] * 16)
        assert encode_entries(entries, memoryview(bytearray(64))) is None
        decisions = make_wrapped_decisions([("s", "k")] * 16)
        assert encode_decisions(decisions, memoryview(bytearray(64))) is None


@needs_shm
class TestShmRing:
    def test_create_attach_and_read_back(self):
        ring = ShmRing(4096)
        try:
            attached = ShmRing(0, name=ring.name)
            view = ring.view(0, 5)
            view[:5] = b"hello"
            view.release()
            assert attached.read(0, 5) == b"hello"
            attached.close()
        finally:
            ring.destroy()

    def test_advance_wraps_to_zero_at_capacity(self):
        ring = ShmRing(64)
        try:
            ring.advance(0, 48)
            assert ring.offset == 48
            ring.advance(48, 16)  # 8-aligned end == capacity -> wrap
            assert ring.offset == 0
        finally:
            ring.destroy()

    def test_unlink_is_owner_only(self):
        ring = ShmRing(1024)
        attached = ShmRing(0, name=ring.name)
        attached.unlink()  # non-owner: must be a no-op
        reattached = ShmRing(0, name=ring.name)  # still linkable
        reattached.close()
        attached.close()
        ring.destroy()
        with pytest.raises(FileNotFoundError):
            ShmRing(0, name=ring.name)


@needs_shm
class TestShmTransportPair:
    def test_round_payload_rides_the_ring(self):
        caller = ShmTransport(ring_bytes=1 << 16)
        caller.reallocate()
        try:
            worker = make_worker_transport(caller.worker_args())
            assert isinstance(worker, ShmWorkerTransport)
            entries = make_entries([("stream-1", "k1"), ("stream-2", "k2")])
            wire, nbytes = caller.encode_request("round", {"entries": entries})
            assert wire[0] == "shm"
            assert nbytes > 0
            payload = worker.decode_request("round", wire)
            assert payload == {"entries": entries}

            decisions = make_wrapped_decisions([("stream-1", "k1")])
            reply = {
                "decisions": decisions,
                "batch_rounds": 1,
                "batched_rows": 2,
                "encode_ms": 0.5,
            }
            reply_wire = worker.encode_reply("round", reply)
            assert reply_wire[0] == "shm"
            decoded, nbytes_in = caller.decode_reply("round", reply_wire, 0)
            assert decoded == reply
            assert nbytes_in > 0
        finally:
            caller.close()

    def test_oversized_payload_falls_back_to_pickle_envelope(self):
        caller = ShmTransport(ring_bytes=128)
        caller.reallocate()
        try:
            worker = make_worker_transport(caller.worker_args())
            entries = make_entries([(f"stream-{i}", f"key-{i}") for i in range(64)])
            wire, _ = caller.encode_request("round", {"entries": entries})
            assert wire[0] == "pkl"
            assert worker.decode_request("round", wire) == {"entries": entries}
        finally:
            caller.close()

    def test_unencodable_values_fall_back_to_pickle_envelope(self):
        caller = ShmTransport()
        caller.reallocate()
        try:
            entries = [
                ("s", StreamEvent(0.0, Item("k", (1.5, 2.5), 0.0), "s"))
            ]  # float values: outside the flat int64 codec
            wire, _ = caller.encode_request("round", {"entries": entries})
            assert wire[0] == "pkl"
        finally:
            caller.close()

    def test_control_ops_bypass_the_ring(self):
        caller = ShmTransport()
        caller.reallocate()
        try:
            wire, nbytes = caller.encode_request("seed", {"blob": b"x"})
            assert wire == ("raw", {"blob": b"x"})
            assert nbytes == 0
        finally:
            caller.close()

    def test_flush_tail_reply_is_a_bare_decision_list(self):
        caller = ShmTransport()
        caller.reallocate()
        try:
            worker = make_worker_transport(caller.worker_args())
            decisions = make_wrapped_decisions([("s1", "k1"), ("s2", "k2")])
            wire = worker.encode_reply("flush_tail", decisions)
            assert wire[0] == "shm"
            decoded, _ = caller.decode_reply("flush_tail", wire, 0)
            assert decoded == decisions
        finally:
            caller.close()

    def test_reallocate_unlinks_previous_generation(self):
        caller = ShmTransport(ring_bytes=4096)
        caller.reallocate()
        first = caller.segment_names()
        caller.reallocate()
        second = caller.segment_names()
        try:
            assert set(first).isdisjoint(second)
            for name in first:
                with pytest.raises(FileNotFoundError):
                    ShmRing(0, name=name)
        finally:
            caller.close()


class TestPipeTransportPair:
    def test_bulk_round_is_explicitly_pickled(self):
        caller = PipeTransport()
        worker = PipeWorkerTransport()
        entries = make_entries([("s", "k")])
        wire, nbytes = caller.encode_request("round", {"entries": entries})
        assert wire[0] == "pkl"
        assert nbytes == len(wire[1])
        assert worker.decode_request("round", wire) == {"entries": entries}
        reply = {"decisions": [], "batch_rounds": 1, "batched_rows": 1, "encode_ms": 0.1}
        decoded, nbytes_in = caller.decode_reply("round", worker.encode_reply("round", reply), 0)
        assert decoded == reply
        assert nbytes_in > 0

    def test_factories_reject_unknown_names(self):
        with pytest.raises(ValueError, match="unknown transport"):
            make_round_transport("carrier-pigeon")
        with pytest.raises(ValueError, match="unknown worker transport"):
            make_worker_transport(("carrier-pigeon",))


@needs_shm
class TestSegmentLifecycle:
    def test_segments_exist_while_serving_and_vanish_on_close(self):
        executor = ProcessExecutor(num_shards=2, handler=_toy_handler, transport="shm")
        names = executor.shm_segment_names()
        assert len(names) == 2 * executor.num_workers
        for name in names:  # live and attachable while serving
            ShmRing(0, name=name).close()
        executor.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                ShmRing(0, name=name)

    def test_respawn_after_kill_reallocates_and_unlinks_old_rings(self):
        with ProcessExecutor(num_shards=1, handler=_toy_handler, transport="shm") as executor:
            before = executor.shm_segment_names()
            executor.remote_call(0, "echo")
            executor.kill_worker(0)
            executor.ensure_worker(0)
            after = executor.shm_segment_names()
            assert set(before).isdisjoint(after)
            for name in before:  # the killed generation's rings are gone
                with pytest.raises(FileNotFoundError):
                    ShmRing(0, name=name)
            # the respawned worker serves through the fresh rings
            assert executor.remote_call(0, "echo")["shard"] == 0

    def test_no_resource_tracker_warnings_across_lifecycle(self):
        """A kill/respawn/close cycle must leave no orphaned segments and no
        resource-tracker chatter on stderr (leaked segments and
        double-unregisters both scream there at interpreter exit)."""
        repo_src = str(Path(__file__).resolve().parents[2] / "src")
        script = textwrap.dedent(
            """
            from repro.serving.parallel import ProcessExecutor
            from tests.serving.test_parallel import _toy_handler

            executor = ProcessExecutor(num_shards=2, handler=_toy_handler, transport="shm")
            executor.remote_call(0, "echo")
            executor.remote_call(1, "echo")
            executor.kill_worker(0)
            executor.ensure_worker(0)
            executor.remote_call(0, "echo")
            executor.close()
            print("LIFECYCLE-OK")
            """
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            env={
                "PYTHONPATH": repo_src + ":" + str(Path(__file__).resolve().parents[2]),
                "PATH": "/usr/bin:/bin:/usr/local/bin",
            },
        )
        assert result.returncode == 0, result.stderr
        assert "LIFECYCLE-OK" in result.stdout
        assert "resource_tracker" not in result.stderr
        assert "leaked" not in result.stderr


class TestTransportSelection:
    def test_executor_records_resolved_transport(self):
        with ProcessExecutor(num_shards=1, handler=_toy_handler, transport="pipe") as executor:
            assert executor.transport == "pipe"
            assert executor.shm_segment_names() == ()
            assert executor.remote_call(0, "echo")["shard"] == 0

    @needs_shm
    def test_shm_is_the_default(self):
        with ProcessExecutor(num_shards=1, handler=_toy_handler) as executor:
            assert executor.transport == "shm"
            assert executor.remote_call(0, "echo")["shard"] == 0

    def test_invalid_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            ProcessExecutor(num_shards=1, handler=_toy_handler, transport="smoke-signal")
        with pytest.raises(ValueError, match="positive"):
            ProcessExecutor(
                num_shards=1, handler=_toy_handler, transport_ring_bytes=0
            )

    @needs_shm
    def test_tiny_ring_still_serves_rounds_via_fallback(self):
        """A ring too small for any payload degrades to per-payload pickle
        fallback — slower, never wrong."""
        with ProcessExecutor(
            num_shards=1, handler=_toy_handler, transport="shm", transport_ring_bytes=16
        ) as executor:
            assert executor.transport == "shm"
            assert executor.remote_call(0, "echo", {"n": 1})["payload"] == {"n": 1}

    def test_telemetry_dict_is_filled(self):
        with ProcessExecutor(num_shards=1, handler=_toy_handler, transport="pipe") as executor:
            telemetry = {}
            executor.remote_call(0, "echo", {"n": 1}, telemetry=telemetry)
            assert set(telemetry) == {"bytes", "serialize_ms"}
            assert telemetry["serialize_ms"] >= 0.0
