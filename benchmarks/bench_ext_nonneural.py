"""Extension bench: KVEC vs the non-neural early classifiers.

Not a paper artifact.  The paper's related-work section argues that classical
feature-based and prefix-based early classifiers underperform learned
representations on real data; this bench trains the reproduction's
representatives of both families (the indicator miner and the nearest-prefix
centroid classifier) next to KVEC on the Traffic-FG analogue, so the gap (or
lack of it, at the small synthetic scale) is measured rather than asserted.
"""

from benchmarks.conftest import RESULTS_DIR, bench_scale

from repro.baselines.indicator import IndicatorClassifier, IndicatorConfig
from repro.baselines.nearest_prefix import NearestPrefixClassifier, NearestPrefixConfig
from repro.eval.estimators import KVECEstimator
from repro.eval.evaluator import evaluate_method
from repro.eval.reporting import render_metric_table
from repro.experiments.presets import get_scale
from repro.experiments.workloads import dataset_splits


def run_nonneural_comparison(scale_name: str):
    scale = get_scale(scale_name)
    splits = dataset_splits("Traffic-FG", scale)
    methods = {
        "KVEC": KVECEstimator(splits.spec, splits.num_classes, scale.kvec),
        "NearestPrefix": NearestPrefixClassifier(
            splits.spec, splits.num_classes, NearestPrefixConfig(margin=0.02)
        ),
        "Indicator": IndicatorClassifier(
            splits.spec, splits.num_classes, IndicatorConfig(min_support=3, min_precision=0.7)
        ),
    }
    return {name: evaluate_method(method, splits).summary for name, method in methods.items()}


def test_nonneural_comparison(benchmark, scale_name):
    summaries = benchmark.pedantic(
        lambda: run_nonneural_comparison(scale_name), rounds=1, iterations=1
    )
    rendered = render_metric_table(
        summaries, title="KVEC vs non-neural early classifiers (Traffic-FG analogue)"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"ext_nonneural_{bench_scale()}.txt").write_text(rendered + "\n")
    print("\n" + rendered)
    assert set(summaries) == {"KVEC", "NearestPrefix", "Indicator"}
    for summary in summaries.values():
        assert 0.0 <= summary.accuracy <= 1.0
        assert 0.0 < summary.earliness <= 1.0
