"""Tests for the ASCII plotting helpers."""

import pytest

from repro.eval.plotting import AsciiCanvas, histogram, line_plot, sparkline


class TestAsciiCanvas:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            AsciiCanvas(width=5, height=20)
        with pytest.raises(ValueError):
            AsciiCanvas(x_range=(1.0, 0.0))

    def test_plot_counts_in_range_points(self):
        canvas = AsciiCanvas(width=20, height=10, x_range=(0, 1), y_range=(0, 1))
        drawn = canvas.plot([(0.5, 0.5), (2.0, 0.5)], marker="x")
        assert drawn == 1

    def test_marker_must_be_single_char(self):
        canvas = AsciiCanvas(width=20, height=10)
        with pytest.raises(ValueError):
            canvas.plot([(0.5, 0.5)], marker="xx")

    def test_render_dimensions(self):
        canvas = AsciiCanvas(width=30, height=8)
        canvas.plot([(0.1, 0.9), (0.9, 0.1)])
        rendered = canvas.render(x_label="earliness", y_label="accuracy")
        lines = rendered.splitlines()
        # top border + 8 rows + bottom border + x footer + y label
        assert len(lines) == 12
        assert all(len(line) >= 30 for line in lines[1:9])

    def test_corners_are_drawn(self):
        canvas = AsciiCanvas(width=20, height=10, x_range=(0, 1), y_range=(0, 1))
        canvas.plot([(0.0, 0.0), (1.0, 1.0)], marker="#")
        rendered = canvas.render()
        assert rendered.count("#") == 2


class TestLinePlot:
    def test_contains_legend_and_markers(self):
        plot = line_plot(
            {
                "KVEC": [(0.05, 0.8), (0.2, 0.9)],
                "EARLIEST": [(0.05, 0.5), (0.2, 0.6)],
            },
            title="accuracy vs earliness",
        )
        assert "accuracy vs earliness" in plot
        assert "legend:" in plot
        assert "o KVEC" in plot
        assert "x EARLIEST" in plot

    def test_empty_series(self):
        assert "(no data)" in line_plot({}, title="empty")

    def test_single_point_series_does_not_crash(self):
        plot = line_plot({"only": [(0.5, 0.5)]})
        assert "only" in plot


class TestHistogram:
    def test_bars_scale_with_values(self):
        rendered = histogram([(10.0, 0.1), (50.0, 0.5), (90.0, 1.0)], width=20)
        lines = rendered.splitlines()
        bars = [line.count("#") for line in lines]
        assert bars[0] < bars[1] < bars[2]
        assert bars[2] == 20

    def test_custom_labels(self):
        rendered = histogram([(0.0, 0.4), (1.0, 0.6)], bin_labels=["early", "late"])
        assert "early" in rendered and "late" in rendered

    def test_label_length_checked(self):
        with pytest.raises(ValueError):
            histogram([(0.0, 1.0)], bin_labels=["a", "b"])

    def test_empty_bins(self):
        assert "(no data)" in histogram([])


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1.0, 2.0, 3.0, 2.0])) == 4

    def test_extremes_use_extreme_levels(self):
        line = sparkline([0.0, 1.0], levels=" #")
        assert line == " #"

    def test_empty_input(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(set(line)) == 1
