"""Factories for every compared method, parameterised by its trade-off knob.

Table II of the paper lists one earliness/accuracy trade-off hyperparameter
per method; the performance-vs-earliness figures sweep exactly that knob:

==============  ==================================================
KVEC            ``beta`` (time-penalty weight; ``alpha`` is frozen)
EARLIEST        ``lambda`` (time-penalty weight)
SRN-EARLIEST    ``lambda``
SRN-Fixed       ``tau`` (fixed halting time)
SRN-Confidence  ``mu`` (confidence threshold)
==============  ==================================================

SRN-Fixed and SRN-Confidence apply their knob only at prediction time, so a
single trained prefix classifier is shared across all sweep values — the
factories cache it.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Sequence, Tuple

from repro.baselines.common import EarlyClassifier
from repro.baselines.earliest import EARLIEST
from repro.baselines.prefix import PrefixSRNClassifier
from repro.baselines.srn_confidence import SRNConfidence
from repro.baselines.srn_earliest import SRNEarliest
from repro.baselines.srn_fixed import SRNFixed
from repro.core.model import PredictionRecord
from repro.data.items import TangledSequence, ValueSpec
from repro.eval.estimators import KVECEstimator
from repro.experiments.presets import ExperimentScale

#: Plot/report order used throughout the figures.
METHOD_ORDER: Tuple[str, ...] = (
    "KVEC",
    "SRN-EARLIEST",
    "SRN-Confidence",
    "SRN-Fixed",
    "EARLIEST",
)

TradeOffFactory = Callable[[float], EarlyClassifier]


class _SharedPrefixModel:
    """Train one prefix-supervised SRN and reuse it for every τ / µ value."""

    def __init__(self, spec: ValueSpec, num_classes: int, scale: ExperimentScale) -> None:
        self.spec = spec
        self.num_classes = num_classes
        self.scale = scale
        self._trained: PrefixSRNClassifier | None = None

    def trained_model(self, template: PrefixSRNClassifier, train_tangles) -> PrefixSRNClassifier:
        if self._trained is None:
            template.fit(train_tangles)
            self._trained = template
        else:
            # Reuse the already-trained encoder and classifier weights.
            template.load_state_dict(self._trained.state_dict())
        return template


class _SharedPrefixWrapper(EarlyClassifier):
    """An SRN-Fixed / SRN-Confidence instance backed by a shared trained model."""

    def __init__(self, inner: PrefixSRNClassifier, shared: _SharedPrefixModel) -> None:
        self.inner = inner
        self.shared = shared
        self.name = inner.name

    def fit(self, train_tangles: Sequence[TangledSequence], verbose: bool = False) -> "EarlyClassifier":
        self.shared.trained_model(self.inner, train_tangles)
        return self

    def predict_tangle(self, tangle: TangledSequence) -> List[PredictionRecord]:
        return self.inner.predict_tangle(tangle)


def method_sweeps(
    spec: ValueSpec,
    num_classes: int,
    scale: ExperimentScale,
) -> Dict[str, Tuple[TradeOffFactory, Tuple[float, ...]]]:
    """Return ``{method name: (factory, trade-off sweep values)}``.

    Calling ``factory(value)`` yields a fresh, untrained early classifier
    whose earliness/accuracy trade-off is set to ``value``.
    """
    shared_fixed = _SharedPrefixModel(spec, num_classes, scale)
    shared_confidence = _SharedPrefixModel(spec, num_classes, scale)

    def kvec_factory(beta: float) -> EarlyClassifier:
        config = scale.kvec.with_overrides(beta=float(beta))
        return KVECEstimator(spec, num_classes, config)

    def earliest_factory(lam: float) -> EarlyClassifier:
        config = replace(scale.rl_baseline, lam=float(lam))
        return EARLIEST(spec, num_classes, config)

    def srn_earliest_factory(lam: float) -> EarlyClassifier:
        config = replace(scale.rl_baseline, lam=float(lam))
        return SRNEarliest(spec, num_classes, config)

    def srn_fixed_factory(tau: float) -> EarlyClassifier:
        inner = SRNFixed(spec, num_classes, halt_time=int(round(tau)), config=scale.prefix)
        return _SharedPrefixWrapper(inner, shared_fixed)

    def srn_confidence_factory(mu: float) -> EarlyClassifier:
        inner = SRNConfidence(spec, num_classes, confidence_threshold=float(mu), config=scale.prefix)
        return _SharedPrefixWrapper(inner, shared_confidence)

    return {
        "KVEC": (kvec_factory, scale.kvec_beta_sweep),
        "EARLIEST": (earliest_factory, scale.lambda_sweep),
        "SRN-EARLIEST": (srn_earliest_factory, scale.lambda_sweep),
        "SRN-Fixed": (srn_fixed_factory, tuple(float(v) for v in scale.fixed_tau_sweep)),
        "SRN-Confidence": (srn_confidence_factory, scale.confidence_sweep),
    }
