"""Key-disjoint dataset splits.

The paper splits every dataset into training/validation/test subsets with
proportion 8:1:1 **based on the key field** so that no key appears in two
subsets (Section V-A4), and reports five-fold cross-validation averages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.items import KeyValueSequence


@dataclass
class DatasetSplit:
    """Per-key sequences partitioned into train / validation / test."""

    train: List[KeyValueSequence]
    validation: List[KeyValueSequence]
    test: List[KeyValueSequence]

    def sizes(self) -> Tuple[int, int, int]:
        return len(self.train), len(self.validation), len(self.test)

    def all_keys_disjoint(self) -> bool:
        """True when no key appears in more than one subset."""
        train_keys = {s.key for s in self.train}
        val_keys = {s.key for s in self.validation}
        test_keys = {s.key for s in self.test}
        return not (train_keys & val_keys or train_keys & test_keys or val_keys & test_keys)


def split_by_key(
    sequences: Sequence[KeyValueSequence],
    proportions: Tuple[float, float, float] = (0.8, 0.1, 0.1),
    rng: Optional[np.random.Generator] = None,
    stratify: bool = True,
) -> DatasetSplit:
    """Split sequences into key-disjoint subsets.

    Parameters
    ----------
    sequences:
        Labelled per-key sequences.
    proportions:
        Fractions for (train, validation, test); must sum to 1.
    rng:
        Random generator controlling the shuffle.
    stratify:
        When True the split is performed per class label so every subset has
        (approximately) the original class balance — important for the small
        ``unit`` scale preset where naive splitting can drop a class entirely.
    """
    if abs(sum(proportions) - 1.0) > 1e-9:
        raise ValueError(f"proportions must sum to 1, got {proportions}")
    rng = rng or np.random.default_rng()

    if stratify:
        by_label: dict = {}
        for sequence in sequences:
            by_label.setdefault(sequence.label, []).append(sequence)
        groups = [by_label[label] for label in sorted(by_label, key=str)]
    else:
        groups = [list(sequences)]

    train: List[KeyValueSequence] = []
    validation: List[KeyValueSequence] = []
    test: List[KeyValueSequence] = []
    for group in groups:
        order = list(range(len(group)))
        rng.shuffle(order)
        n = len(group)
        n_val = int(round(proportions[1] * n))
        n_test = int(round(proportions[2] * n))
        # Rounding must not starve a requested subset: with e.g. 7 keys per
        # class and an 8:1:1 split, round(0.1 * 7) = 1 but the remainder for
        # the test subset would be 0.  Guarantee at least one key for every
        # subset with a non-zero proportion whenever the group is big enough.
        if proportions[1] > 0 and n_val == 0 and n >= 3:
            n_val = 1
        if proportions[2] > 0 and n_test == 0 and n >= 3:
            n_test = 1
        n_val = min(n_val, n)
        n_test = min(n_test, n - n_val)
        n_train = n - n_val - n_test
        for position, index in enumerate(order):
            if position < n_train:
                train.append(group[index])
            elif position < n_train + n_val:
                validation.append(group[index])
            else:
                test.append(group[index])
    return DatasetSplit(train=train, validation=validation, test=test)


def kfold_splits(
    sequences: Sequence[KeyValueSequence],
    folds: int = 5,
    validation_fraction: float = 0.1,
    rng: Optional[np.random.Generator] = None,
) -> List[DatasetSplit]:
    """Produce ``folds`` key-disjoint cross-validation splits.

    In each fold, one of ``folds`` equal key partitions is the test subset;
    ``validation_fraction`` of the remaining keys form the validation subset
    and the rest are training keys.
    """
    if folds < 2:
        raise ValueError("folds must be at least 2")
    rng = rng or np.random.default_rng()
    order = list(range(len(sequences)))
    rng.shuffle(order)
    partitions: List[List[int]] = [order[i::folds] for i in range(folds)]

    splits: List[DatasetSplit] = []
    for fold in range(folds):
        test_idx = set(partitions[fold])
        remaining = [i for i in order if i not in test_idx]
        n_val = max(1, int(round(validation_fraction * len(remaining)))) if remaining else 0
        val_idx = set(remaining[:n_val])
        splits.append(
            DatasetSplit(
                train=[sequences[i] for i in remaining if i not in val_idx],
                validation=[sequences[i] for i in sorted(val_idx)],
                test=[sequences[i] for i in sorted(test_idx)],
            )
        )
    return splits


def class_distribution(sequences: Sequence[KeyValueSequence]) -> dict:
    """Return a mapping ``label -> count`` over the given sequences."""
    counts: dict = {}
    for sequence in sequences:
        counts[sequence.label] = counts.get(sequence.label, 0) + 1
    return counts
