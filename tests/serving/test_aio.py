"""AsyncServingGateway: awaitable submission, decision streams, lifecycle.

Runs entirely on stdlib ``asyncio.run`` (no pytest-asyncio — satellite
requirement: the asyncio suite is part of the tier-1 job with zero new
dependencies).  The core contract: per-stream decisions served through the
async gateway — including under *concurrent* submitter tasks — are
decision-for-decision identical to one sequential single-stream engine per
stream, and the pushed ``decisions()`` stream carries exactly the emitted
decisions.
"""

import asyncio

import numpy as np
import pytest

from repro.core.config import KVECConfig
from repro.core.model import KVEC
from repro.data.items import Item, ValueSpec
from repro.data.stream import StreamEvent
from repro.serving import (
    AsyncServingGateway,
    ClusterConfig,
    EngineConfig,
    OnlineClassificationEngine,
    ServingCluster,
)

SPEC = ValueSpec(field_names=("size", "direction"), cardinalities=(8, 2), session_field=1)


def make_model(seed: int = 3) -> KVEC:
    config = KVECConfig(
        d_model=12,
        num_blocks=2,
        num_heads=2,
        ffn_hidden=20,
        d_state=16,
        dropout=0.0,
        encoding="rotary",
        seed=seed,
    )
    return KVEC(SPEC, num_classes=3, config=config)


def engine_config(**overrides) -> EngineConfig:
    kwargs = dict(window_items=7, halt_threshold=0.5, reencode_every=2)
    kwargs.update(overrides)
    return EngineConfig(**kwargs)


def multi_stream_events(seed: int, num_events=200, num_streams=4, num_keys=4):
    rng = np.random.default_rng(seed)
    streams = [f"stream-{i}" for i in range(num_streams)]
    events = []
    clock = 0.0
    for _ in range(num_events):
        clock += 1.0
        stream_id = streams[int(rng.integers(num_streams))]
        item = Item(
            f"k{rng.integers(num_keys)}",
            (int(rng.integers(8)), int(rng.integers(2))),
            clock,
        )
        events.append(StreamEvent(time=clock, item=item, source=stream_id))
    return streams, events


def reference_decisions(model, streams, events):
    engines = {
        stream_id: OnlineClassificationEngine(model, SPEC, engine_config())
        for stream_id in streams
    }
    ordered = {stream_id: [] for stream_id in streams}
    for event in events:
        ordered[event.source].extend(engines[event.source].offer(event))
    for stream_id, engine in engines.items():
        ordered[stream_id].extend(engine.flush())
    return ordered


def assert_per_stream_parity(got_by_stream, expected):
    for stream_id, reference in expected.items():
        got = got_by_stream.get(stream_id, [])
        assert [d.key for d in got] == [d.key for d in reference], stream_id
        for mine, ref in zip(got, reference):
            assert mine.predicted == ref.predicted, (stream_id, mine.key)
            assert mine.confidence == pytest.approx(ref.confidence, abs=1e-9)
            assert mine.observations == ref.observations, (stream_id, mine.key)


class TestAsyncParity:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_concurrent_submitters_match_reference_per_stream(self, executor):
        """One submitter task per stream, all running concurrently: every
        stream's decision sequence equals the sequential single-stream
        reference (the AsyncServingGateway leg of the parity matrix)."""
        model = make_model()
        streams, events = multi_stream_events(seed=42, num_events=240)
        expected = reference_decisions(model, streams, events)
        per_stream_events = {
            stream_id: [e for e in events if e.source == stream_id]
            for stream_id in streams
        }

        async def scenario():
            config = ClusterConfig(
                num_shards=2,
                batch_size=4,
                executor=executor,
                engine=engine_config(),
            )
            pushed = []
            async with AsyncServingGateway(model, SPEC, config) as gateway:

                async def consume():
                    async for decision in gateway.decisions():
                        pushed.append(decision)

                consumer = asyncio.create_task(consume())

                async def submit_stream(stream_id):
                    for event in per_stream_events[stream_id]:
                        result = await gateway.submit(event)
                        assert result.admitted
                    # per-stream flush is not exposed async; the final
                    # close() flushes everything

                await asyncio.gather(*(submit_stream(s) for s in streams))
                await gateway.close()
                await consumer
            return pushed

        pushed = asyncio.run(scenario())
        got_by_stream = {}
        for stream_decision in pushed:
            got_by_stream.setdefault(stream_decision.stream_id, []).append(
                stream_decision.decision
            )
        assert_per_stream_parity(got_by_stream, expected)

    def test_decision_stream_equals_returned_lists_for_sequential_caller(self):
        model = make_model()
        streams, events = multi_stream_events(seed=7, num_events=120)

        async def scenario():
            config = ClusterConfig(num_shards=2, batch_size=4, engine=engine_config())
            gateway = AsyncServingGateway(model, SPEC, config)
            returned = []
            for event in events:
                returned.extend(await gateway.submit(event))
            returned.extend(await gateway.drain())
            returned.extend(await gateway.expire())
            returned.extend(await gateway.close())
            pushed = [d async for d in gateway.decisions()]
            return returned, pushed

        returned, pushed = asyncio.run(scenario())
        # for a sequential caller the push stream is list-identical to the
        # concatenated pull results — same objects, same order
        assert pushed == returned


class TestAsyncFuturesAndBackpressure:
    def test_result_future_resolves_on_emission(self):
        model = make_model()
        streams, events = multi_stream_events(seed=13, num_events=100)

        async def scenario():
            config = ClusterConfig(num_shards=1, batch_size=4, engine=engine_config())
            async with AsyncServingGateway(model, SPEC, config) as gateway:
                target_stream = events[0].source
                target_key = events[0].key
                future = gateway.result(target_stream, target_key)
                assert not future.done()
                for event in events:
                    await gateway.submit(event)
                await gateway.flush()
                decision = await asyncio.wait_for(future, timeout=5)
                assert decision.key == target_key
                assert gateway.decided(target_stream, target_key) is decision
                # already-decided keys resolve immediately
                assert (await gateway.result(target_stream, target_key)) is decision
                never = gateway.result("no-such-stream", "no-such-key")
                return never

        never = asyncio.run(scenario())
        assert never.cancelled()

    def test_bounded_buffer_applies_backpressure_without_loss(self):
        model = make_model()
        streams, events = multi_stream_events(seed=17, num_events=150)

        async def scenario():
            config = ClusterConfig(num_shards=2, batch_size=4, engine=engine_config())
            gateway = AsyncServingGateway(model, SPEC, config, max_buffered=4)
            pushed = []

            async def consume():
                async for decision in gateway.decisions():
                    pushed.append(decision)
                    await asyncio.sleep(0)  # deliberately slow consumer

            consumer = asyncio.create_task(consume())
            returned = []
            for event in events:
                returned.extend(await gateway.submit(event))
            returned.extend(await gateway.close())
            await consumer
            assert gateway.stats()["buffered_decisions"] == 0
            return returned, pushed

        returned, pushed = asyncio.run(scenario())
        assert pushed == returned  # nothing lost, order preserved

    def test_abandoned_decision_iterator_unsubscribes_its_sink(self):
        """A vanished decisions() consumer must not throttle the gateway.

        Regression test: each iterator owns a bounded AsyncQueueSink; if the
        consumer disappears without draining, the sink has to be
        unsubscribed in the generator's teardown — otherwise every later
        submit blocks forever once the abandoned queue fills up.
        """
        model = make_model()
        streams, events = multi_stream_events(seed=19, num_events=120)

        async def scenario():
            config = ClusterConfig(num_shards=2, batch_size=4, engine=engine_config())
            gateway = AsyncServingGateway(model, SPEC, config, max_buffered=2)
            iterator = gateway.decisions()
            for event in events[:40]:
                await gateway.submit(event)
            first = await asyncio.wait_for(iterator.__anext__(), timeout=5)
            assert gateway.stats()["decision_streams"] == 1
            # the consumer vanishes mid-stream with its queue still full
            await iterator.aclose()
            assert gateway.stats()["decision_streams"] == 0
            assert gateway.stats()["buffered_decisions"] == 0
            # far more decisions than the dead iterator's buffer could hold
            # must now flow through without blocking on it
            returned = []
            for event in events[40:]:
                returned.extend(
                    await asyncio.wait_for(gateway.submit(event), timeout=10)
                )
            returned.extend(await asyncio.wait_for(gateway.close(), timeout=10))
            return first, returned

        first, returned = asyncio.run(scenario())
        assert first is not None
        assert len(returned) > 2  # decisions kept flowing after abandonment

    def test_cancelled_consumer_task_unsubscribes_its_sink(self):
        """Task cancellation is the other disconnect path (HTTP teardown)."""
        model = make_model()
        streams, events = multi_stream_events(seed=37, num_events=80)

        async def scenario():
            config = ClusterConfig(num_shards=1, batch_size=4, engine=engine_config())
            gateway = AsyncServingGateway(model, SPEC, config, max_buffered=2)

            async def consume():
                async for _ in gateway.decisions():
                    pass  # drain until the connection handler is cancelled

            consumer = asyncio.create_task(consume())
            for event in events[:30]:
                await gateway.submit(event)
            await asyncio.sleep(0)
            consumer.cancel()
            try:
                await consumer
            except asyncio.CancelledError:
                pass
            assert gateway.stats()["decision_streams"] == 0
            returned = []
            for event in events[30:]:
                returned.extend(
                    await asyncio.wait_for(gateway.submit(event), timeout=10)
                )
            returned.extend(await asyncio.wait_for(gateway.close(), timeout=10))
            return returned

        returned = asyncio.run(scenario())
        assert isinstance(returned, list)


class TestAsyncLifecycle:
    def test_states_and_guards(self):
        model = make_model()
        streams, events = multi_stream_events(seed=23, num_events=60)

        async def scenario():
            config = ClusterConfig(num_shards=1, batch_size=4, engine=engine_config())
            gateway = AsyncServingGateway(model, SPEC, config)
            assert gateway.state == "running"
            for event in events:
                await gateway.submit(event)
            emitted = await gateway.close()
            assert gateway.state == "closed"
            assert gateway.cluster.state == "closed"
            assert (await gateway.close()) == []
            with pytest.raises(RuntimeError, match="closed"):
                await gateway.submit(events[0])
            assert gateway.stats()["gateway_state"] == "closed"
            # post-close result() never hands out a future that cannot fire
            assert gateway.result("no-such-stream", "ghost").cancelled()
            return emitted

        asyncio.run(scenario())

    def test_wrapped_cluster_stays_open(self):
        model = make_model()
        cluster = ServingCluster(
            model, SPEC, ClusterConfig(num_shards=1, batch_size=4, engine=engine_config())
        )
        streams, events = multi_stream_events(seed=29, num_events=40)

        async def scenario():
            async with AsyncServingGateway(cluster=cluster) as gateway:
                for event in events:
                    await gateway.submit(event)
            assert cluster.state == "running"

        asyncio.run(scenario())
        cluster.close()

    def test_constructor_validation(self):
        model = make_model()
        cluster = ServingCluster(model, SPEC, ClusterConfig(num_shards=1))
        with pytest.raises(ValueError, match="either"):
            AsyncServingGateway()
        with pytest.raises(ValueError, match="not both"):
            AsyncServingGateway(model, SPEC, cluster=cluster)
        with pytest.raises(ValueError, match="max_buffered"):
            AsyncServingGateway(cluster=cluster, max_buffered=-1)
        cluster.close()

    def test_rejects_use_from_a_second_loop(self):
        model = make_model()
        gateway = AsyncServingGateway(
            model, SPEC, ClusterConfig(num_shards=1, engine=engine_config())
        )
        streams, events = multi_stream_events(seed=31, num_events=5)

        async def first_use():
            await gateway.submit(events[0])

        asyncio.run(first_use())

        async def second_loop_use():
            await gateway.submit(events[1])

        with pytest.raises(RuntimeError, match="different event loop"):
            asyncio.run(second_loop_use())
        gateway._cluster.close()
