"""Tests for key/value correlations and the dynamic mask matrix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correlation import CorrelationTracker, build_correlation_structure
from repro.data.items import Item, TangledSequence, ValueSpec
from repro.nn.attention import MASK_VALUE

SPEC = ValueSpec(("size", "direction"), (8, 2), session_field=1)


def tangle_from(rows):
    """rows: list of (key, size, direction); times follow list order."""
    items = [Item(key, (size, direction), float(i)) for i, (key, size, direction) in enumerate(rows)]
    labels = {key: 0 for key, _, _ in rows}
    return TangledSequence(items, labels, SPEC)


class TestCorrelationTracker:
    def test_first_item_has_no_correlations(self):
        tracker = CorrelationTracker(session_field=1)
        via_key, via_value = tracker.observe("a", (0, 0))
        assert via_key == [] and via_value == []

    def test_same_key_items_are_key_correlated(self):
        tracker = CorrelationTracker(session_field=1)
        tracker.observe("a", (0, 0))
        tracker.observe("a", (1, 1))
        via_key, _ = tracker.observe("a", (2, 0))
        assert via_key == [0, 1]

    def test_value_correlation_requires_open_session_match(self):
        tracker = CorrelationTracker(session_field=1)
        tracker.observe("a", (0, 0))      # position 0: key a, direction 0 (open session of a)
        _, via_value = tracker.observe("b", (3, 0))  # direction 0 matches a's open session
        assert via_value == [0]

    def test_value_correlation_broken_by_session_change(self):
        tracker = CorrelationTracker(session_field=1)
        tracker.observe("a", (0, 0))      # position 0, direction 0
        tracker.observe("a", (1, 1))      # position 1 closes the direction-0 session
        _, via_value = tracker.observe("b", (3, 0))
        assert via_value == []            # a's open session now has direction 1

    def test_value_correlation_excludes_same_key(self):
        tracker = CorrelationTracker(session_field=1)
        tracker.observe("a", (0, 0))
        via_key, via_value = tracker.observe("a", (1, 0))
        assert via_key == [0]
        assert via_value == []

    def test_disabling_key_correlation(self):
        tracker = CorrelationTracker(session_field=1, use_key_correlation=False)
        tracker.observe("a", (0, 0))
        via_key, _ = tracker.observe("a", (1, 0))
        assert via_key == []

    def test_disabling_value_correlation(self):
        tracker = CorrelationTracker(session_field=1, use_value_correlation=False)
        tracker.observe("a", (0, 0))
        _, via_value = tracker.observe("b", (1, 0))
        assert via_value == []

    def test_count_tracks_observations(self):
        tracker = CorrelationTracker(session_field=1)
        for index in range(5):
            tracker.observe("a", (0, 0))
        assert tracker.count == 5


class TestBuildCorrelationStructure:
    def test_mask_shape_and_diagonal(self):
        tangle = tangle_from([("a", 0, 0), ("b", 1, 1), ("a", 2, 0)])
        structure = build_correlation_structure(tangle)
        assert structure.mask.shape == (3, 3)
        np.testing.assert_allclose(np.diag(structure.mask), np.zeros(3))

    def test_mask_is_causal(self):
        tangle = tangle_from([("a", 0, 0), ("a", 1, 0), ("a", 2, 0), ("b", 3, 0)])
        structure = build_correlation_structure(tangle)
        upper = structure.mask[np.triu_indices(4, k=1)]
        assert np.all(upper == MASK_VALUE)

    def test_key_correlation_matrix_marks_same_key_pairs(self):
        tangle = tangle_from([("a", 0, 0), ("b", 1, 1), ("a", 2, 1), ("b", 3, 0)])
        structure = build_correlation_structure(tangle)
        assert structure.key_correlated[2, 0]
        assert structure.key_correlated[3, 1]
        assert not structure.key_correlated[2, 1]

    def test_value_correlation_matches_paper_example(self):
        # b's open session has direction 0 when the third item (key a,
        # direction 0) arrives, so they are value-correlated.
        tangle = tangle_from([("b", 0, 0), ("b", 1, 0), ("a", 2, 0)])
        structure = build_correlation_structure(tangle)
        assert structure.value_correlated[2, 0]
        assert structure.value_correlated[2, 1]
        assert structure.mask[2, 0] == 0.0

    def test_key_and_value_matrices_are_disjoint(self):
        tangle = tangle_from(
            [("a", 0, 0), ("b", 1, 0), ("a", 2, 0), ("b", 3, 1), ("a", 4, 1), ("b", 5, 1)]
        )
        structure = build_correlation_structure(tangle)
        assert not np.any(structure.key_correlated & structure.value_correlated)

    def test_upto_truncates(self):
        tangle = tangle_from([("a", 0, 0)] * 6)
        structure = build_correlation_structure(tangle, upto=4)
        assert structure.length == 4

    def test_ablation_flags_reduce_visibility(self):
        rows = [("a", 0, 0), ("b", 1, 0), ("a", 2, 0), ("b", 3, 0), ("a", 4, 0)]
        full = build_correlation_structure(tangle_from(rows))
        no_value = build_correlation_structure(tangle_from(rows), use_value_correlation=False)
        no_key = build_correlation_structure(tangle_from(rows), use_key_correlation=False)
        assert full.visible_pairs() > no_value.visible_pairs()
        assert full.visible_pairs() > no_key.visible_pairs()

    def test_without_value_correlation_only_same_key_visible(self):
        rows = [("a", 0, 0), ("b", 1, 0), ("a", 2, 0), ("b", 3, 0)]
        structure = build_correlation_structure(tangle_from(rows), use_value_correlation=False)
        tangle = tangle_from(rows)
        for i in range(4):
            for j in range(i):
                visible = structure.mask[i, j] == 0.0
                assert visible == (tangle[i].key == tangle[j].key)

    @given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 7), st.integers(0, 1)),
                    min_size=1, max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_mask_invariants_on_random_tangles(self, rows):
        tangle = tangle_from([(f"k{key}", size, direction) for key, size, direction in rows])
        structure = build_correlation_structure(tangle)
        mask = structure.mask
        length = len(tangle)
        # Diagonal visible, strictly upper triangle invisible, and visibility
        # implies key- or value-correlation (or the diagonal).
        assert np.all(np.diag(mask) == 0.0)
        assert np.all(mask[np.triu_indices(length, k=1)] == MASK_VALUE)
        visible = mask == 0.0
        np.fill_diagonal(visible, False)
        assert np.all(visible == (structure.key_correlated | structure.value_correlated))
        # Key correlation exactly matches "same key and earlier".
        for i in range(length):
            for j in range(i):
                assert structure.key_correlated[i, j] == (tangle[i].key == tangle[j].key)
