"""Cross-sample batched episode execution for training (one GEMM per step).

The per-sample training reference (:meth:`repro.core.model.KVEC.run_episode`)
processes one tangled sequence at a time: a full causal-masked encode of the
sample, then a per-arrival fusion/policy loop whose graph is a chain of
GEMV-sized nodes.  This module executes a minibatch of B tangles together:

* **Encode** — the encode is action-independent (the strictly causal mask
  means row ``t`` of a full-length pass equals what a streaming system would
  compute after ``t`` arrivals — the PR-1 invariant), so all ``B`` samples
  are padded to a common length and encoded as one ``(B, T, d_model)`` pass:
  every projection, FFN and attention product is a single batched GEMM
  (:meth:`repro.core.kvrl.KVRLEncoder.forward_batch`) instead of ``B``
  per-sample calls.
* **Fusion/policy loop** — actions do matter here, so arrivals are walked
  round by round, but all ``B`` samples advance in lockstep: each round
  gathers the step-``t`` encoded rows of every episode still running, and
  the fusion gate, halting head and log-probabilities run as one batched
  GEMM each (:meth:`~repro.core.fusion.GatedFusion.forward_batch`,
  :meth:`~repro.core.ectl.HaltingPolicy.forward_batch`).  The loop exits as
  soon as every episode has halted — rounds whose arrivals all belong to
  halted keys cost nothing.

Parity contract
---------------
All cross-sample batching is pure math-level stacking of independent
streams, so per-sample numerics match the reference up to BLAS
summation-order noise (~1e-12) — which bounds batched-vs-per-sample loss
and gradient drift at the documented 1e-8 (bit-for-bit where shapes make
the arithmetic identical).  With per-episode sampling RNGs (each episode
draws its Halt/Wait coin flips from its own generator, seeded identically
on both paths) the sampled action sequences match the per-sample reference
exactly.  Exact parity additionally requires ``dropout == 0``: the two
layouts draw dropout masks in different shapes, so with dropout active the
paths are statistically equivalent but not numerically equal.

Ragged episode lengths are handled by an *active-episode mask*: padding
rows of the stacked encode keep a visible diagonal (finite softmax) but are
never gathered by the fusion loop, and a sample whose arrivals are
exhausted — or whose episodes have all halted — simply stops contributing
rounds.  No sample ever waits for another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.correlation import build_correlation_structure
from repro.core.ectl import ACTION_HALT, ACTION_WAIT
from repro.core.model import EpisodeResult, KeyEpisode
from repro.data.items import TangledSequence
from repro.nn.attention import MASK_VALUE, rotary_phases
from repro.nn.functional import softmax_array
from repro.nn.tensor import Tensor

__all__ = ["BatchedStepTail", "run_episodes_batched"]


@dataclass
class BatchedStepTail:
    """Flat, round-major view of a minibatch's episodes for loss assembly.

    The lockstep runner emits its halt-head outputs as one ``(B_r,)`` graph
    tensor per round; here they are concatenated into minibatch-wide vectors
    so the trainer can build the REINFORCE and earliness losses with a
    handful of graph nodes (one stacked log-prob vector dotted against the
    advantage vector) instead of per-step scalar chains.

    Step arrays are parallel (one entry per observed step, round-major);
    episode arrays are parallel (one entry per key-value sequence, ordered
    tangle-major then by first appearance).  ``log_halt`` / ``log_wait`` are
    ``None`` when the batch produced no observed steps (impossible for
    non-empty tangles, kept for defensive symmetry).
    """

    log_halt: Optional[Tensor]
    log_wait: Optional[Tensor]
    step_actions: np.ndarray
    step_episode: np.ndarray
    step_obs_index: np.ndarray
    states_data: np.ndarray
    class_logits: Tensor
    episode_labels: np.ndarray
    episode_tangles: np.ndarray
    episode_predicted: np.ndarray
    episode_num_obs: np.ndarray

    @property
    def num_steps(self) -> int:
        return int(self.step_actions.shape[0])

    @property
    def num_episodes(self) -> int:
        return int(self.episode_labels.shape[0])


def run_episodes_batched(
    model,
    tangles: Sequence[TangledSequence],
    mode: str = "sample",
    halt_threshold: float = 0.5,
    rngs: Optional[Sequence[np.random.Generator]] = None,
    max_items: Optional[int] = None,
) -> Tuple[List[EpisodeResult], BatchedStepTail]:
    """Run one episode per tangle, executing the whole minibatch together.

    Parameters
    ----------
    model:
        The :class:`~repro.core.model.KVEC` model (training or eval mode).
    tangles:
        The minibatch of tangled sequences.
    mode:
        ``"sample"`` draws Halt/Wait per episode from ``rngs`` (training);
        ``"greedy"`` halts at ``halt_threshold`` (evaluation cross-checks).
    rngs:
        One independent generator per tangle (required in ``"sample"``
        mode).  Seeding these identically on the per-sample path makes the
        two paths' action sequences — and therefore losses and gradients —
        comparable at the parity tolerances documented in the module
        docstring.
    max_items:
        Optional per-tangle truncation, as in ``run_episode``.

    Returns
    -------
    (results, tail)
        ``results`` holds one :class:`EpisodeResult` per tangle whose
        episodes carry the same actions/predictions/records as the
        per-sample reference (states and per-step log-probs are stored
        *detached* — the differentiable quantities live in ``tail``).
    """
    if mode not in ("sample", "greedy"):
        raise ValueError(f"unknown mode {mode!r}")
    if not tangles:
        raise ValueError("run_episodes_batched requires at least one tangle")
    if mode == "sample":
        if rngs is None or len(rngs) != len(tangles):
            raise ValueError("sample mode requires one RNG per tangle")

    config = model.config
    batch = len(tangles)
    lengths = [
        len(tangle) if max_items is None else min(max_items, len(tangle))
        for tangle in tangles
    ]
    if any(length == 0 for length in lengths):
        raise ValueError("cannot run an episode on an empty tangled sequence")
    t_max = max(lengths)

    use_coords = config.encoding == "rotary" and config.use_time_embeddings
    embedding = model.input_embedding
    d_head = model.encoder.blocks[0].attention.d_head
    rel_bias = model.encoder.blocks[0].attention.rel_bias
    max_rel = model.encoder.blocks[0].attention.max_relative_positions

    # Per-sample precompute: correlation masks and embedding-table indices.
    structures = [
        build_correlation_structure(
            tangles[i],
            upto=lengths[i],
            use_key_correlation=config.use_key_correlation,
            use_value_correlation=config.use_value_correlation,
        )
        for i in range(batch)
    ]
    coords = [embedding.coordinates(tangles[i], upto=lengths[i]) for i in range(batch)]

    # Stacked, padded embedding-table indices (padding gathers row 0, whose
    # output is never selected) and per-sample additive masks.  Padding rows
    # keep a visible diagonal so their softmax stays finite.
    num_fields = embedding.spec.num_fields
    field_codes = np.zeros((num_fields, batch, t_max), dtype=int)
    membership = np.zeros((batch, t_max), dtype=int)
    positions = np.zeros((batch, t_max), dtype=int)
    times = np.zeros((batch, t_max), dtype=int)
    mask = np.full((batch, t_max, t_max), MASK_VALUE, dtype=np.float64)
    mask[:, np.arange(t_max), np.arange(t_max)] = 0.0
    for i in range(batch):
        length = lengths[i]
        field_codes[:, i, :length] = coords[i][0]
        membership[i, :length] = coords[i][1]
        positions[i, :length] = coords[i][2]
        times[i, :length] = coords[i][3]
        mask[i, :length, :length] = structures[i].mask

    phases = delta = same = None
    if use_coords:
        phases = rotary_phases(np.arange(t_max, dtype=np.float64), d_head)
        if rel_bias is not None:
            delta = np.zeros((batch, t_max, t_max), dtype=int)
            same = np.zeros((batch, t_max, t_max), dtype=np.float64)
            for i in range(batch):
                length = lengths[i]
                rel = model.relative_coords(tangles[i], length)
                delta[i, :length, :length] = np.clip(
                    rel.key_ranks[:, None] - rel.key_ranks[None, :], 0, max_rel - 1
                )
                same[i, :length, :length] = (
                    rel.key_codes[:, None] == rel.key_codes[None, :]
                ).astype(np.float64)

    # One padded batched encode: every projection/FFN/attention product is a
    # single GEMM over the whole minibatch.
    embedded = embedding.embed_rows(
        field_codes.reshape(num_fields, batch * t_max),
        membership.reshape(-1),
        positions.reshape(-1),
        times.reshape(-1),
    ).reshape(batch, t_max, embedding.d_model)
    encoded = model.encoder.forward_batch(
        embedded, mask=mask, phases=phases, delta=delta, same=same
    )

    # Episodes in tangle-major, first-appearance order; each gets a global id.
    episodes_per: List[dict] = []
    episode_index: List[Tuple[int, object, KeyEpisode]] = []
    gid = {}
    undecided = [0] * batch
    for i in range(batch):
        episodes = {}
        for index in range(lengths[i]):
            key = tangles[i][index].key
            if key not in episodes:
                episode = KeyEpisode(
                    key=key,
                    label=tangles[i].label_of(key),
                    sequence_length=tangles[i].sequence_length(key),
                )
                episodes[key] = episode
                gid[(i, key)] = len(episode_index)
                episode_index.append((i, key, episode))
        episodes_per.append(episodes)
        undecided[i] = len(episodes)

    zero_state = model.fusion.initial_state()
    slot_states = {}
    class_refs = {}  # (sample, key) -> (reps tensor, row): rep to classify from

    round_log_halt: List[Tensor] = []
    round_log_wait: List[Tensor] = []
    round_states: List[np.ndarray] = []
    step_actions: List[int] = []
    step_episode: List[int] = []
    step_obs_index: List[int] = []

    for t in range(t_max):
        if not any(undecided[i] and lengths[i] > t for i in range(batch)):
            break  # every remaining arrival belongs to a halted key
        rows: List[int] = []
        sub: List[Tuple[int, object, KeyEpisode]] = []
        for i in range(batch):
            if t >= lengths[i] or not undecided[i]:
                continue
            key = tangles[i][t].key
            episode = episodes_per[i][key]
            if episode.halted:
                continue
            rows.append(i)
            sub.append((i, key, episode))
        if not rows:
            continue

        # One gather per round: the step-t encoded rows of the live episodes.
        xs = encoded[(np.asarray(rows), t)]
        states = [slot_states.get((i, key), zero_state) for i, key, _ in sub]
        reps, stacked_state = model.fusion.forward_batch(states, xs)
        probabilities = model.policy.forward_batch(reps)
        log_halt, log_wait = model.policy.log_probs_batch(probabilities)
        prob_data = probabilities.data
        reps_data = reps.data
        log_halt_data = log_halt.data
        log_wait_data = log_wait.data

        for r, (i, key, episode) in enumerate(sub):
            if mode == "sample":
                action = (
                    ACTION_HALT
                    if rngs[i].random() < float(prob_data[r])
                    else ACTION_WAIT
                )
            else:
                action = (
                    ACTION_HALT if float(prob_data[r]) >= halt_threshold else ACTION_WAIT
                )
            episode.actions.append(action)
            # Detached bookkeeping copies: the differentiable log-probs and
            # states live in the round-level tail tensors.
            episode.states.append(Tensor(reps_data[r]))
            episode.halt_log_probs.append(
                Tensor(log_halt_data[r] if action == ACTION_HALT else log_wait_data[r])
            )
            step_actions.append(action)
            step_episode.append(gid[(i, key)])
            step_obs_index.append(episode.num_observations - 1)
            class_refs[(i, key)] = (reps, r)
            if action == ACTION_HALT:
                episode.halted = True
                episode.halted_by_policy = True
                undecided[i] -= 1
                slot_states.pop((i, key), None)
            else:
                slot_states[(i, key)] = model.fusion.split_state(stacked_state, r)

        round_log_halt.append(log_halt)
        round_log_wait.append(log_wait)
        round_states.append(reps_data)

    # One batched classifier pass over every episode's decision state: the
    # halting representation for policy-halted episodes, the final observed
    # one for the rest — exactly the reference's `_classify` choices.
    class_rows = [
        class_refs[(i, key)][0][class_refs[(i, key)][1]] for i, key, _ in episode_index
    ]
    class_logits = model.classifier(Tensor.stack(class_rows))
    class_probs = softmax_array(class_logits.data)
    episode_labels = np.asarray(
        [episode.label for _, _, episode in episode_index], dtype=np.int64
    )
    episode_tangles = np.asarray([i for i, _, _ in episode_index], dtype=np.int64)
    episode_predicted = np.empty(len(episode_index), dtype=np.int64)
    episode_num_obs = np.empty(len(episode_index), dtype=np.int64)
    for e, (i, key, episode) in enumerate(episode_index):
        probabilities = class_probs[e]
        episode.logits = class_logits[e]
        episode.predicted = int(np.argmax(probabilities))
        episode.confidence = float(np.max(probabilities))
        if not episode.halted:
            episode.halted = True
            episode.halted_by_policy = False
        episode_predicted[e] = episode.predicted
        episode_num_obs[e] = episode.num_observations

    tail = BatchedStepTail(
        log_halt=Tensor.concatenate(round_log_halt) if round_log_halt else None,
        log_wait=Tensor.concatenate(round_log_wait) if round_log_wait else None,
        step_actions=np.asarray(step_actions, dtype=np.int64),
        step_episode=np.asarray(step_episode, dtype=np.int64),
        step_obs_index=np.asarray(step_obs_index, dtype=np.int64),
        states_data=(
            np.concatenate(round_states, axis=0)
            if round_states
            else np.empty((0, model.state_dim))
        ),
        class_logits=class_logits,
        episode_labels=episode_labels,
        episode_tangles=episode_tangles,
        episode_predicted=episode_predicted,
        episode_num_obs=episode_num_obs,
    )
    results = [
        EpisodeResult(episodes=episodes_per[i], correlation=structures[i])
        for i in range(batch)
    ]
    return results, tail
