"""Shared fixtures for the KVEC reproduction test suite.

The expensive fixtures (generated datasets, trained models) are session-scoped
and deliberately tiny so the whole suite runs on CPU in a couple of minutes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import KVECConfig
from repro.core.model import KVEC
from repro.core.trainer import KVECTrainer
from repro.data.items import Item, KeyValueSequence, TangledSequence, ValueSpec
from repro.data.splits import split_by_key
from repro.data.tangle import retangle_by_concurrency
from repro.datasets.synthetic_stop import make_synthetic_traffic
from repro.datasets.traffic import make_ustc_tfc2016


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def simple_spec() -> ValueSpec:
    """A two-field value spec (size bucket, direction) used by hand-built data."""
    return ValueSpec(field_names=("size", "direction"), cardinalities=(8, 2), session_field=1)


@pytest.fixture
def tiny_tangle(simple_spec) -> TangledSequence:
    """A small hand-built tangled sequence with two keys and known structure."""
    items = [
        Item("a", (0, 0), 0.0),
        Item("b", (1, 0), 1.0),
        Item("a", (2, 0), 2.0),
        Item("a", (3, 1), 3.0),
        Item("b", (4, 1), 4.0),
        Item("a", (5, 1), 5.0),
        Item("b", (6, 0), 6.0),
        Item("a", (7, 0), 7.0),
    ]
    return TangledSequence(items, labels={"a": 0, "b": 1}, spec=simple_spec, name="tiny")


@pytest.fixture(scope="session")
def tiny_traffic_dataset():
    """A small synthetic USTC-TFC2016 analogue shared across tests."""
    return make_ustc_tfc2016(num_flows=36, seed=3)


@pytest.fixture(scope="session")
def tiny_stop_dataset():
    """A small Synthetic-Traffic (early-stop) dataset shared across tests."""
    return make_synthetic_traffic(num_flows=24, subset="early", seed=5, flow_length=30)


@pytest.fixture(scope="session")
def tiny_splits(tiny_traffic_dataset):
    """Key-disjoint tangled train/test streams derived from the tiny dataset."""
    split = split_by_key(tiny_traffic_dataset.sequences, rng=np.random.default_rng(0))
    spec = tiny_traffic_dataset.spec
    return {
        "train": retangle_by_concurrency(split.train, spec, 3, rng=np.random.default_rng(1)),
        "test": retangle_by_concurrency(split.test, spec, 3, rng=np.random.default_rng(2)),
        "spec": spec,
        "num_classes": tiny_traffic_dataset.num_classes,
    }


@pytest.fixture
def tiny_kvec_config() -> KVECConfig:
    """A minimal KVEC configuration that trains in well under a second."""
    return KVECConfig(
        d_model=16,
        num_blocks=1,
        num_heads=1,
        ffn_hidden=24,
        d_state=20,
        dropout=0.0,
        epochs=2,
        batch_size=4,
        learning_rate=3e-3,
        seed=0,
    )


@pytest.fixture(scope="session")
def trained_tiny_kvec(tiny_splits):
    """A KVEC model trained for a few epochs on the tiny traffic dataset."""
    config = KVECConfig(
        d_model=16,
        num_blocks=1,
        num_heads=1,
        ffn_hidden=24,
        d_state=20,
        dropout=0.0,
        epochs=6,
        batch_size=4,
        learning_rate=3e-3,
        seed=0,
    )
    model = KVEC(tiny_splits["spec"], tiny_splits["num_classes"], config)
    trainer = KVECTrainer(model)
    history = trainer.train(tiny_splits["train"])
    return {"model": model, "history": history, "splits": tiny_splits, "config": config}


def make_sequence(key, values, label=0, start_time=0.0):
    """Helper used by several test modules to build a key-value sequence."""
    items = [Item(key, tuple(value), start_time + index) for index, value in enumerate(values)]
    return KeyValueSequence(key, items, label)
