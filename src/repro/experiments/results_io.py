"""Persisting experiment results.

Every experiment in :mod:`repro.experiments.registry` returns a small result
dataclass with a ``render()`` method.  This module turns those results into a
stable JSON payload (plus the rendered text) so that

* benchmark runs can archive their scientific output next to the timing data,
* EXPERIMENTS.md can be regenerated from archived results without re-running
  the experiments,
* two runs (e.g. different scales or code revisions) can be diffed.

``to_payload`` knows the concrete result types; unknown results fall back to
their rendered text only.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.experiments import figures, tables

PathLike = Union[str, Path]

PAYLOAD_VERSION = 1


def _curve_payload(curves: Dict[str, Dict[str, Any]], metric: str) -> Dict[str, Any]:
    payload: Dict[str, Any] = {}
    for dataset, method_curves in curves.items():
        payload[dataset] = {
            method: [[float(x), float(y)] for x, y in curve.series(metric)]
            for method, curve in method_curves.items()
        }
    return payload


def to_payload(experiment_id: str, result: Any, scale: str = "") -> Dict[str, Any]:
    """Convert one experiment result into a JSON-serializable payload."""
    payload: Dict[str, Any] = {
        "payload_version": PAYLOAD_VERSION,
        "experiment": experiment_id,
        "scale": scale,
        "rendered": result.render() if hasattr(result, "render") else repr(result),
    }

    if isinstance(result, figures.PerformanceFigureResult):
        payload["metric"] = result.metric
        payload["series"] = _curve_payload(result.curves, result.metric)
    elif isinstance(result, figures.SensitivityResult):
        payload["alpha_series"] = [list(map(float, row)) for row in result.alpha_series]
        payload["beta_series"] = [list(map(float, row)) for row in result.beta_series]
    elif isinstance(result, figures.AblationResult):
        payload["summaries"] = {
            variant: summary.as_dict() for variant, summary in result.summaries.items()
        }
    elif isinstance(result, figures.AttentionFigureResult):
        payload["points"] = [
            {
                "earliness": float(point.earliness),
                "internal": float(point.internal_score),
                "external": float(point.external_score),
                "accuracy": float(point.accuracy),
            }
            for point in result.points
        ]
    elif isinstance(result, figures.HaltingFigureResult):
        payload["distributions"] = {
            subset: {
                label: [[float(x), float(y)] for x, y in distribution.as_series()]
                for label, distribution in per_method.items()
            }
            for subset, per_method in result.distributions.items()
        }
    elif isinstance(result, figures.ConcurrencyFigureResult):
        payload["points"] = {
            str(concurrency): [list(map(float, row)) for row in rows]
            for concurrency, rows in result.points.items()
        }
    elif isinstance(result, tables.Table1Result):
        payload["generated"] = {
            name: dataclasses.asdict(stats) for name, stats in result.generated.items()
        }
        payload["published"] = {
            name: dataclasses.asdict(stats) for name, stats in result.published.items()
        }
    elif isinstance(result, tables.Table2Result):
        payload["rows"] = [
            [method, parameter, description, [float(value) for value in sweep]]
            for method, parameter, description, sweep in result.rows
        ]
    return payload


def save_result(
    experiment_id: str,
    result: Any,
    path: PathLike,
    scale: str = "",
) -> Path:
    """Write one experiment result to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = to_payload(experiment_id, result, scale=scale)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_result(path: PathLike) -> Dict[str, Any]:
    """Load a previously saved result payload."""
    payload = json.loads(Path(path).read_text())
    if "experiment" not in payload:
        raise ValueError(f"{path} is not an experiment result payload")
    return payload


def summarise_payload(payload: Dict[str, Any], max_lines: Optional[int] = None) -> str:
    """Return the rendered text stored in a payload (optionally truncated)."""
    rendered = payload.get("rendered", "")
    if max_lines is None:
        return rendered
    lines = rendered.splitlines()
    if len(lines) <= max_lines:
        return rendered
    return "\n".join(lines[:max_lines] + [f"... ({len(lines) - max_lines} more lines)"])
