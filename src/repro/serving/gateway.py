"""Serving gateway: per-stream handles and per-key decision futures.

The cluster's API is stream-oblivious on the way out: callers get flat
decision lists and demultiplex them by stream and key themselves.  The
gateway inverts that.  It subscribes to the cluster's push-delivery layer
(:mod:`repro.serving.sinks`) and maintains a per-``(stream, key)`` registry
of resolved decisions and pending futures, exposing:

* :meth:`ServingGateway.stream` → a :class:`StreamHandle`, one stream's
  ergonomic front end: ``handle.offer(event)`` submits to the right shard,
  ``handle.result(key)`` is a :class:`concurrent.futures.Future` resolved
  the moment that key's decision is emitted (by any drain, flush or expiry,
  whoever triggered it), and ``handle.close()`` flushes the stream's
  undecided keys.
* gateway-wide ``submit`` / ``drain`` / ``flush`` / ``expire`` passthroughs
  returning the same :class:`~repro.serving.results.SubmitResult` /
  decision-list values as the cluster, so pull- and push-consumers can mix.

Lifecycle mirrors the cluster: ``running`` → (``close()``) ``draining`` —
a final flush that resolves every future it can — → ``closed``, at which
point still-unresolved futures are cancelled (their keys never produced a
decision, e.g. every observation was evicted before a flush).

Restore semantics (pinned by the snapshot/restore suite): decision futures
fire **at most once**, on the first emission of their key's decision.  A
cluster restore does not reset the gateway's registry — replayed decisions
re-delivered after a restore are ignored for future resolution (the future
already fired) while sink subscribers see the re-emissions, exactly as the
returned-list API hands a replaying caller the replayed lists.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.data.items import ValueSpec
from repro.serving.cluster import ClusterConfig, ServingCluster, StreamDecision
from repro.serving.engine import Decision
from repro.serving.results import SubmitResult
from repro.serving.sinks import CallbackSink, DecisionSink

__all__ = ["ServingGateway", "StreamHandle"]


class DecisionRegistry:
    """First-emission registry mapping ``(stream, key)`` to decisions/futures.

    The shared bookkeeping of both gateways (sync and asyncio): records each
    (stream, key)'s *first* emitted decision, keeps per-stream emission
    order, and pairs not-yet-decided keys with futures handed out by
    ``result()``.  Replay re-emissions after a restore are ignored — futures
    fire at most once, which is the pinned restore contract.

    ``future_factory`` supplies the future flavour
    (:class:`concurrent.futures.Future` or ``loop.create_future``); both
    expose ``done`` / ``set_result`` / ``cancel``.  Access is serialized by
    an internal lock for the sync gateway's worker-thread deliveries; the
    asyncio gateway only ever touches it from the loop thread, where the
    uncontended lock is noise.
    """

    def __init__(self, future_factory: Callable[[], "Future"]) -> None:
        self._future_factory = future_factory
        self._lock = threading.Lock()
        self._decided: Dict[Tuple[Hashable, Hashable], Decision] = {}
        self._stream_order: Dict[Hashable, List[Decision]] = {}
        self._futures: Dict[Tuple[Hashable, Hashable], "Future"] = {}

    @staticmethod
    def _resolve(future: "Future", decision: Decision) -> None:
        """Resolve a future, tolerating a caller-side cancel racing us."""
        if future.done():
            return
        try:
            future.set_result(decision)
        except Exception:
            # concurrent.futures raises InvalidStateError when the holder
            # cancelled between our done() check and the set_result; the
            # cancellation wins and the delivery must not crash the round.
            if not future.cancelled():
                raise

    def deliver(self, stream_decision: StreamDecision) -> None:
        """Fold one published decision in; resolves its future if pending."""
        registry_key = (stream_decision.stream_id, stream_decision.decision.key)
        with self._lock:
            if registry_key in self._decided:
                return
            self._decided[registry_key] = stream_decision.decision
            self._stream_order.setdefault(stream_decision.stream_id, []).append(
                stream_decision.decision
            )
            future = self._futures.pop(registry_key, None)
        if future is not None:
            self._resolve(future, stream_decision.decision)

    def future_for(self, stream_id: Hashable, key: Hashable) -> "Future":
        """The (shared) future of one key — already resolved if decided."""
        registry_key = (stream_id, key)
        with self._lock:
            decision = self._decided.get(registry_key)
            if decision is None:
                existing = self._futures.get(registry_key)
                if existing is not None:
                    return existing
                future = self._future_factory()
                self._futures[registry_key] = future
                return future
        future = self._future_factory()
        self._resolve(future, decision)
        return future

    def decided(self, stream_id: Hashable, key: Hashable) -> Optional[Decision]:
        with self._lock:
            return self._decided.get((stream_id, key))

    def stream_decisions(self, stream_id: Hashable) -> List[Decision]:
        with self._lock:
            return list(self._stream_order.get(stream_id, ()))

    def cancel_unresolved(self, stream_id: Optional[Hashable] = None) -> None:
        """Cancel pending futures (of one stream, or all)."""
        with self._lock:
            if stream_id is None:
                doomed = list(self._futures.values())
                self._futures.clear()
            else:
                doomed = [
                    self._futures.pop(registry_key)
                    for registry_key in [k for k in self._futures if k[0] == stream_id]
                ]
        for future in doomed:
            future.cancel()

    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._futures)

    @property
    def resolved_count(self) -> int:
        with self._lock:
            return len(self._decided)


class StreamHandle:
    """One stream's view of a gateway: offer events, await keyed decisions.

    Handles are cheap and cached — :meth:`ServingGateway.stream` returns the
    same handle for the same stream id.  A handle never owns serving state;
    it is an addressing convenience over the gateway's registry.
    """

    def __init__(self, gateway: "ServingGateway", stream_id: Hashable) -> None:
        self._gateway = gateway
        self.stream_id = stream_id

    def offer(self, event, raise_on_reject: bool = True) -> SubmitResult:
        """Submit one arrival for this stream; returns the explicit outcome."""
        return self._gateway.submit(
            event, stream_id=self.stream_id, raise_on_reject=raise_on_reject
        )

    def result(self, key: Hashable) -> "Future[Decision]":
        """A future resolved with ``key``'s decision when it is emitted.

        Already-decided keys return an already-resolved future.  Futures are
        cancelled at gateway close if the key never produced a decision.
        """
        return self._gateway.result(self.stream_id, key)

    def decided(self, key: Hashable) -> Optional[Decision]:
        """The key's decision if already emitted, else ``None`` (no future)."""
        return self._gateway.decided(self.stream_id, key)

    def decisions(self) -> List[Decision]:
        """Every decision emitted for this stream so far, in emission order."""
        return self._gateway.stream_decisions(self.stream_id)

    def close(self) -> List[Decision]:
        """Flush this stream: force-decide its undecided keys.

        Returns the decisions emitted *for this stream* by the flush (the
        shard drain it entails may also emit other streams' decisions —
        those are published to subscribers and resolved into their own
        handles' futures as usual, just not returned here).  Futures of keys
        the flush could not decide (all observations evicted) are cancelled.
        """
        emitted = self._gateway._cluster.flush_stream(self.stream_id)
        self._gateway._cancel_unresolved(self.stream_id)
        return [
            sd.decision for sd in emitted if sd.stream_id == self.stream_id
        ]


class ServingGateway:
    """Push-based front end over a :class:`ServingCluster`.

    Construct from a model/spec/config triple (the gateway then owns the
    cluster and closes it on :meth:`close`) or wrap an existing cluster
    (``ServingGateway(cluster=...)``) to add handles and futures to a
    deployment that also uses the cluster API directly.
    """

    STATES = ServingCluster.STATES

    def __init__(
        self,
        model=None,
        spec: Optional[ValueSpec] = None,
        config: Optional[ClusterConfig] = None,
        *,
        cluster: Optional[ServingCluster] = None,
    ) -> None:
        if cluster is None:
            if model is None or spec is None:
                raise ValueError(
                    "ServingGateway needs either an existing cluster= or a "
                    "model + spec (+ optional config) to build one"
                )
            cluster = ServingCluster(model, spec, config)
            self._owns_cluster = True
        else:
            if model is not None or spec is not None or config is not None:
                raise ValueError(
                    "pass either cluster= or model/spec/config, not both"
                )
            self._owns_cluster = False
        self._cluster = cluster
        self._state = "running"
        self._lock = threading.Lock()
        self._handles: Dict[Hashable, StreamHandle] = {}
        #: First-emission (stream, key) registry + per-key futures; replay
        #: re-emissions after a restore never overwrite or re-fire.
        self._registry = DecisionRegistry(Future)
        self._sink: DecisionSink = self._cluster.subscribe(
            CallbackSink(self._registry.deliver)
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        return self._state

    @property
    def cluster(self) -> ServingCluster:
        """The underlying cluster (for stats, snapshots, direct API use)."""
        return self._cluster

    def close(self) -> List[StreamDecision]:
        """Stop the gateway: ``running`` → ``draining`` → ``closed``.

        An *owned* cluster is flushed (the final flush publishes and
        resolves every future it can) and then closed.  A *wrapped* cluster
        is shared with other users, so the gateway only detaches: no flush
        is forced on streams it may not own — flush explicitly first if you
        want the final decisions — and the cluster stays running.  In both
        cases still-unresolved futures are cancelled and the subscription is
        removed.  Idempotent: repeat calls return an empty list.
        """
        if self._state == "closed":
            return []
        self._state = "draining"
        emitted: List[StreamDecision] = []
        if self._owns_cluster and self._cluster.state != "closed":
            emitted = self._cluster.flush()
        self._cancel_unresolved()
        self._cluster.unsubscribe(self._sink)
        if self._owns_cluster:
            self._cluster.close()
        self._state = "closed"
        return emitted

    def __enter__(self) -> "ServingGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_running(self, operation: str) -> None:
        if self._state != "running":
            raise RuntimeError(f"cannot {operation}: gateway is {self._state}")

    def _cancel_unresolved(self, stream_id: Optional[Hashable] = None) -> None:
        """Cancel pending futures (of one stream, or all) that cannot resolve."""
        self._registry.cancel_unresolved(stream_id)

    # ------------------------------------------------------------------ #
    # stream-keyed API
    # ------------------------------------------------------------------ #
    def stream(self, stream_id: Hashable) -> StreamHandle:
        """The (cached) handle of one stream."""
        with self._lock:
            handle = self._handles.get(stream_id)
            if handle is None:
                handle = self._handles[stream_id] = StreamHandle(self, stream_id)
        return handle

    def result(self, stream_id: Hashable, key: Hashable) -> "Future[Decision]":
        """A future for one ``(stream, key)`` decision; resolves at emission.

        On a closed gateway an already-decided key still resolves from the
        registry; an undecided one returns an already-cancelled future (the
        one-time cancellation sweep ran at close, so a fresh pending future
        could never fire).
        """
        if self._state == "closed":
            decision = self._registry.decided(stream_id, key)
            future: "Future[Decision]" = Future()
            if decision is not None:
                future.set_result(decision)
            else:
                future.cancel()
            return future
        return self._registry.future_for(stream_id, key)

    def decided(self, stream_id: Hashable, key: Hashable) -> Optional[Decision]:
        return self._registry.decided(stream_id, key)

    def stream_decisions(self, stream_id: Hashable) -> List[Decision]:
        return self._registry.stream_decisions(stream_id)

    # ------------------------------------------------------------------ #
    # cluster passthroughs
    # ------------------------------------------------------------------ #
    def submit(
        self,
        event,
        stream_id: Optional[Hashable] = None,
        raise_on_reject: bool = True,
    ) -> SubmitResult:
        self._require_running("submit")
        return self._cluster.submit(
            event, stream_id=stream_id, raise_on_reject=raise_on_reject
        )

    def drain(self) -> List[StreamDecision]:
        return self._cluster.drain()

    def flush(self) -> List[StreamDecision]:
        return self._cluster.flush()

    def expire(self, now: Optional[float] = None) -> List[StreamDecision]:
        return self._cluster.expire(now)

    def subscribe(self, sink: DecisionSink) -> DecisionSink:
        return self._cluster.subscribe(sink)

    def unsubscribe(self, sink: DecisionSink) -> bool:
        return self._cluster.unsubscribe(sink)

    def stats(self) -> Dict[str, object]:
        stats = self._cluster.stats()
        stats["gateway_state"] = self._state
        stats["pending_futures"] = self._registry.pending_count
        stats["resolved_keys"] = self._registry.resolved_count
        return stats

    def health(self) -> Dict[str, object]:
        """The cluster's fault-tolerance view (breakers, restores, sinks).

        A degraded shard shows up here *and* as ``status="degraded"``
        submit results — a handle whose submissions degrade can check which
        shard tripped and whether a recovery already ran.
        """
        return self._cluster.health()
