"""Key/value correlations and the dynamic mask matrix (Section IV-B).

Two items of a tangled sequence are correlated

* through **key correlation** when they share the same key (they belong to
  the same key-value sequence), and
* through **value correlation** when, had they shared a key, they would fall
  into the same *session* — operationally: the earlier item belongs to the
  currently open (most recent, uninterrupted) session of its own sequence and
  that session's value in the session field equals the later item's value in
  the session field.

The dynamic mask matrix ``M`` has ``M[i, j] = 0`` when item ``j`` is visible
to item ``i`` (``j <= i`` and the items are correlated, or ``i == j``) and a
large negative value otherwise; it is added to the attention logits so that
softmax zeroes out the invisible positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.data.items import TangledSequence
from repro.nn.attention import MASK_VALUE


@dataclass
class CorrelationStructure:
    """The correlation structure of (a prefix of) a tangled sequence.

    Attributes
    ----------
    mask:
        Additive attention mask of shape ``(T, T)`` with ``0`` on visible
        pairs and :data:`~repro.nn.attention.MASK_VALUE` on invisible ones.
    key_correlated:
        Boolean matrix; ``key_correlated[i, j]`` is True when ``j < i`` and
        items i and j share a key (intra-sequence visibility).
    value_correlated:
        Boolean matrix; ``value_correlated[i, j]`` is True when ``j <= i``,
        the items have different keys and they are correlated through the
        value/session rule (inter-sequence visibility).
    """

    mask: np.ndarray
    key_correlated: np.ndarray
    value_correlated: np.ndarray

    @property
    def length(self) -> int:
        return self.mask.shape[0]

    def visible_pairs(self) -> int:
        """Number of visible (i, j) pairs excluding the diagonal."""
        off_diagonal = self.mask == 0.0
        np.fill_diagonal(off_diagonal, False)
        return int(off_diagonal.sum())


class CorrelationTracker:
    """Incrementally track correlations as items of a tangled stream arrive.

    The tracker mirrors how a deployed system would compute the mask: items
    are observed one at a time and for each new item the tracker reports
    which earlier positions it is correlated with.  ``build_correlation_structure``
    uses it to produce the full matrices for a (prefix of a) tangled sequence.
    """

    def __init__(
        self,
        session_field: int,
        use_key_correlation: bool = True,
        use_value_correlation: bool = True,
    ) -> None:
        self.session_field = session_field
        self.use_key_correlation = use_key_correlation
        self.use_value_correlation = use_value_correlation
        #: positions of every observed item per key
        self._positions_by_key: Dict[Hashable, List[int]] = {}
        #: per key: (session value, positions of the currently open session)
        self._open_sessions: Dict[Hashable, Tuple[int, List[int]]] = {}
        self._count = 0

    @property
    def count(self) -> int:
        """Number of items observed so far."""
        return self._count

    def observe(self, key: Hashable, value: Tuple[int, ...]) -> Tuple[List[int], List[int]]:
        """Register the next item and return its correlated earlier positions.

        Returns
        -------
        (key_correlated, value_correlated)
            Lists of earlier item positions visible through the key
            correlation and through the value correlation respectively.
            The two lists are disjoint: same-key positions are reported only
            as key correlations.
        """
        index = self._count
        session_value = int(value[self.session_field])

        key_positions = self._positions_by_key.get(key, [])
        key_correlated = list(key_positions) if self.use_key_correlation else []

        value_correlated: List[int] = []
        if self.use_value_correlation:
            own_positions = set(key_positions)
            for other_key, (open_value, open_positions) in self._open_sessions.items():
                if other_key == key:
                    continue
                if open_value == session_value:
                    value_correlated.extend(
                        pos for pos in open_positions if pos not in own_positions
                    )

        # Update the per-key state *after* computing correlations so an item
        # never correlates with itself through these lists.
        self._positions_by_key.setdefault(key, []).append(index)
        open_value, open_positions = self._open_sessions.get(key, (None, []))
        if open_value == session_value:
            open_positions.append(index)
            self._open_sessions[key] = (session_value, open_positions)
        else:
            self._open_sessions[key] = (session_value, [index])

        self._count += 1
        return key_correlated, sorted(value_correlated)

    def forget_oldest(self, key: Hashable, position: int) -> None:
        """Drop the globally oldest observed item from the tracker's memory.

        Streaming ring-buffer callers evict items strictly in arrival order,
        so the evicted item's position is always at the *front* of its key's
        position lists — forgetting is a front-pop (O(W) worst case, within
        the per-arrival budget).  Entries whose position lists empty out are
        deleted so the tracker's memory — and the per-arrival scan of open
        sessions in :meth:`observe` — stays proportional to the live window
        rather than to every key ever seen.  Dropping an emptied open-session
        entry is exact: whether the next same-value item of that key extends
        an empty open session or starts a fresh one, the resulting state is
        ``(value, [index])`` either way, and an empty position list
        contributes nothing to other keys' value correlations.
        """
        positions = self._positions_by_key.get(key)
        if positions and positions[0] == position:
            positions.pop(0)
            if not positions:
                del self._positions_by_key[key]
        open_entry = self._open_sessions.get(key)
        if open_entry is not None:
            open_value, open_positions = open_entry
            if open_positions and open_positions[0] == position:
                open_positions.pop(0)
            if not open_positions:
                del self._open_sessions[key]


def build_correlation_structure(
    tangle: TangledSequence,
    upto: Optional[int] = None,
    use_key_correlation: bool = True,
    use_value_correlation: bool = True,
) -> CorrelationStructure:
    """Build the mask and correlation matrices for ``tangle[:upto]``.

    The diagonal is always visible (``M[i, i] = 0``) regardless of the
    ablation switches, matching the paper's mask definition.
    """
    length = len(tangle) if upto is None else min(upto, len(tangle))
    session_field = tangle.spec.session_field

    # Vectorised equivalent of replaying a CorrelationTracker over the prefix
    # (the incremental tracker stays the streaming reference; the property
    # tests pin the two constructions against each other).  Extract per-item
    # key codes and session values, then derive for every item the position
    # of the *next same-key item with a different session value* — item j is
    # still part of its key's open session at time i exactly when that value
    # change happens at or after i.
    key_codes = np.empty(length, dtype=np.int64)
    session_values = np.empty(length, dtype=np.int64)
    code_by_key: Dict[Hashable, int] = {}
    for index in range(length):
        item = tangle[index]
        code = code_by_key.get(item.key)
        if code is None:
            code = len(code_by_key)
            code_by_key[item.key] = code
        key_codes[index] = code
        session_values[index] = int(item.value[session_field])

    next_change = np.full(length, length, dtype=np.int64)
    next_position: Dict[int, int] = {}
    for index in range(length - 1, -1, -1):
        code = int(key_codes[index])
        upcoming = next_position.get(code)
        if upcoming is not None:
            if session_values[upcoming] != session_values[index]:
                next_change[index] = upcoming
            else:
                next_change[index] = next_change[upcoming]
        next_position[code] = index

    order = np.arange(length)
    earlier = order[None, :] < order[:, None]
    same_key = key_codes[:, None] == key_codes[None, :]
    if use_key_correlation:
        key_correlated = same_key & earlier
    else:
        key_correlated = np.zeros((length, length), dtype=bool)
    if use_value_correlation:
        value_correlated = (
            ~same_key
            & earlier
            & (session_values[:, None] == session_values[None, :])
            & (next_change[None, :] > order[:, None])
        )
    else:
        value_correlated = np.zeros((length, length), dtype=bool)

    mask = np.where(key_correlated | value_correlated, 0.0, MASK_VALUE)
    np.fill_diagonal(mask, 0.0)
    return CorrelationStructure(mask=mask, key_correlated=key_correlated, value_correlated=value_correlated)
