"""Five-fold cross-validation, the paper's actual evaluation protocol.

Section V-A4 states that every reported number is the average of five-fold
cross-validation over key-disjoint folds.  The figure benchmarks use a single
8:1:1 split to stay affordable on CPU; this module provides the full
protocol so that `paper`-scale runs (and users with more compute) can
reproduce the averaging exactly:

* :func:`cross_validate` — train and evaluate one method factory on every
  fold, returning per-fold metric summaries,
* :class:`CrossValidationResult` — mean / standard deviation per metric and
  an ASCII rendering,
* :func:`compare_cross_validated` — run several method factories over the
  same folds (same keys, same tangles) for a paired comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.common import EarlyClassifier
from repro.data.items import ValueSpec
from repro.data.splits import DatasetSplit, kfold_splits
from repro.data.tangle import retangle_by_concurrency
from repro.datasets.base import GeneratedDataset
from repro.eval.evaluator import TangledSplits, evaluate_method
from repro.eval.metrics import MetricSummary

#: A factory building a fresh, untrained early classifier for one fold.
MethodBuilder = Callable[[ValueSpec, int], EarlyClassifier]

METRIC_NAMES = ("accuracy", "precision", "recall", "f1", "earliness", "harmonic_mean")


@dataclass
class CrossValidationResult:
    """Per-fold summaries of one method plus their mean / standard deviation."""

    method: str
    fold_summaries: List[MetricSummary] = field(default_factory=list)

    @property
    def num_folds(self) -> int:
        return len(self.fold_summaries)

    def values(self, metric: str) -> List[float]:
        return [summary.metric(metric) for summary in self.fold_summaries]

    def mean(self, metric: str) -> float:
        values = self.values(metric)
        return float(np.mean(values)) if values else 0.0

    def std(self, metric: str) -> float:
        values = self.values(metric)
        return float(np.std(values)) if values else 0.0

    def as_dict(self) -> Dict[str, Tuple[float, float]]:
        """``metric -> (mean, std)`` over folds."""
        return {name: (self.mean(name), self.std(name)) for name in METRIC_NAMES}

    def render(self) -> str:
        lines = [f"{self.method}: {self.num_folds}-fold cross-validation"]
        for name in METRIC_NAMES:
            lines.append(f"  {name:<14} {self.mean(name):.4f} ± {self.std(name):.4f}")
        return "\n".join(lines)


def _fold_to_tangles(
    fold: DatasetSplit,
    dataset: GeneratedDataset,
    concurrency: int,
    seed: int,
) -> TangledSplits:
    """Interleave one fold's key-disjoint subsets into tangled streams."""
    return TangledSplits(
        train=retangle_by_concurrency(
            fold.train, dataset.spec, concurrency, rng=np.random.default_rng(seed + 1), name_prefix="train"
        ),
        validation=retangle_by_concurrency(
            fold.validation, dataset.spec, concurrency, rng=np.random.default_rng(seed + 2), name_prefix="val"
        ),
        test=retangle_by_concurrency(
            fold.test, dataset.spec, concurrency, rng=np.random.default_rng(seed + 3), name_prefix="test"
        ),
        spec=dataset.spec,
        num_classes=dataset.num_classes,
    )


def fold_tangles(
    dataset: GeneratedDataset,
    folds: int = 5,
    concurrency: int = 4,
    seed: int = 0,
) -> List[TangledSplits]:
    """Key-disjoint k-fold tangled splits of a dataset (shared across methods)."""
    if folds < 2:
        raise ValueError("folds must be at least 2")
    if concurrency <= 0:
        raise ValueError("concurrency must be positive")
    splits = kfold_splits(dataset.sequences, folds=folds, rng=np.random.default_rng(seed))
    return [
        _fold_to_tangles(fold, dataset, concurrency, seed + index)
        for index, fold in enumerate(splits)
    ]


def cross_validate(
    builder: MethodBuilder,
    dataset: GeneratedDataset,
    folds: int = 5,
    concurrency: int = 4,
    seed: int = 0,
    method_name: str = "",
    prepared_folds: Optional[Sequence[TangledSplits]] = None,
    verbose: bool = False,
) -> CrossValidationResult:
    """Run the paper's k-fold protocol for one method on one dataset.

    ``prepared_folds`` lets callers (and :func:`compare_cross_validated`)
    reuse the exact same fold tangles across methods so the comparison is
    paired.
    """
    tangled_folds = list(prepared_folds) if prepared_folds is not None else fold_tangles(
        dataset, folds=folds, concurrency=concurrency, seed=seed
    )
    result = CrossValidationResult(method=method_name or "method")
    for index, fold in enumerate(tangled_folds):
        method = builder(fold.spec, fold.num_classes)
        if not result.method or result.method == "method":
            result.method = getattr(method, "name", "method")
        evaluation = evaluate_method(method, fold, verbose=verbose)
        result.fold_summaries.append(evaluation.summary)
        if verbose:
            print(f"[{result.method}] fold {index + 1}/{len(tangled_folds)}: "
                  f"accuracy={evaluation.summary.accuracy:.3f}")
    return result


def compare_cross_validated(
    builders: Dict[str, MethodBuilder],
    dataset: GeneratedDataset,
    folds: int = 5,
    concurrency: int = 4,
    seed: int = 0,
    verbose: bool = False,
) -> Dict[str, CrossValidationResult]:
    """Run several methods over the *same* folds and return their results."""
    if not builders:
        raise ValueError("builders must not be empty")
    shared_folds = fold_tangles(dataset, folds=folds, concurrency=concurrency, seed=seed)
    results: Dict[str, CrossValidationResult] = {}
    for name, builder in builders.items():
        results[name] = cross_validate(
            builder,
            dataset,
            prepared_folds=shared_folds,
            method_name=name,
            verbose=verbose,
        )
    return results


def render_comparison(results: Dict[str, CrossValidationResult], metric: str = "accuracy") -> str:
    """One row per method: mean ± std of ``metric`` over the shared folds."""
    lines = [f"{'method':<20}{metric + ' (mean ± std over folds)':>36}"]
    for name in sorted(results):
        result = results[name]
        lines.append(f"{name:<20}{result.mean(metric):>20.4f} ± {result.std(metric):.4f}")
    return "\n".join(lines)
