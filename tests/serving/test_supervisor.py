"""Deterministic fault-tolerance suite: injector, breaker, supervision.

Three layers, bottom up:

* unit tests of :class:`FaultInjector` / :class:`FaultSpec` scheduling and of
  the :class:`CircuitBreaker` state machine under an injected clock,
* executor-level tests of :meth:`ThreadExecutor.abandon` (wedged-worker
  replacement) and leak counting in :meth:`ThreadExecutor.close`,
* cluster-level supervision: crash recovery restores the last checkpoint and
  replays the admission journal so per-stream decisions for every non-lost
  arrival exactly match a reference cluster that never saw the lost arrivals
  (the recovery-parity leg of the parity matrix — fast deterministic shapes
  here, the randomized sweep lives in ``test_chaos.py`` under ``stress``),
  graceful degradation (``status="degraded"`` / :class:`ShardDegradedError`)
  while a breaker is open, half-open probes closing it again, round
  deadlines abandoning wedged workers instead of hanging ``drain()``, and
  the ``stats()["health"]`` view tying it together.
"""

import os
import pickle
import signal
import threading
import time

import numpy as np
import pytest

from repro.core.config import KVECConfig
from repro.core.model import KVEC
from repro.data.items import Item, ValueSpec
from repro.data.stream import StreamEvent
from repro.serving.cluster import (
    ClusterConfig,
    ServingCluster,
    ShardDegradedError,
    ShardOverloadError,
)
from repro.serving.engine import EngineConfig
from repro.serving.faults import (
    FaultInjectingSink,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    ShardKilled,
)
from repro.serving.parallel import AbandonedJobError, ThreadExecutor
from repro.serving.sinks import BufferedSink
from repro.serving.supervisor import (
    CheckpointConfig,
    CircuitBreaker,
    SupervisorConfig,
)

SPEC = ValueSpec(field_names=("size", "direction"), cardinalities=(8, 2), session_field=1)

TOLERANCE = 1e-9


def make_model(seed: int = 3) -> KVEC:
    config = KVECConfig(
        d_model=12,
        num_blocks=2,
        num_heads=2,
        ffn_hidden=20,
        d_state=16,
        dropout=0.0,
        encoding="rotary",
        seed=seed,
    )
    return KVEC(SPEC, num_classes=3, config=config)


def multi_stream_events(seed: int, num_events: int = 120, num_streams: int = 6, num_keys: int = 4):
    # 6 streams cover both shards of a 2-shard cluster (stable_key_slot puts
    # stream-0..3 on shard 1 and stream-4..5 on shard 0).
    rng = np.random.default_rng(seed)
    streams = [f"stream-{i}" for i in range(num_streams)]
    events = []
    clock = 0.0
    for _ in range(num_events):
        clock += 1.0
        stream_id = streams[int(rng.integers(num_streams))]
        item = Item(
            f"k{rng.integers(num_keys)}",
            (int(rng.integers(8)), int(rng.integers(2))),
            clock,
        )
        events.append(StreamEvent(time=clock, item=item, source=stream_id))
    return streams, events


def engine_config(**overrides) -> EngineConfig:
    kwargs = dict(window_items=7, halt_threshold=0.5, reencode_every=2)
    kwargs.update(overrides)
    return EngineConfig(**kwargs)


def run_cluster(model, events, config) -> tuple:
    """Submit every event, flush, return (cluster, all emitted decisions)."""
    cluster = ServingCluster(model, SPEC, config)
    emitted = []
    for event in events:
        emitted.extend(cluster.submit(event))
    emitted.extend(cluster.flush())
    return cluster, emitted


def remove_lost(events, lost):
    """The reference workload: ``events`` minus each lost entry (once each)."""
    remaining = list(events)
    for stream_id, lost_event in lost:
        for index, event in enumerate(remaining):
            if event == lost_event and event.source == stream_id:
                del remaining[index]
                break
    return remaining


def first_emissions(decisions):
    """First emitted decision per (stream, key) — the at-least-once view."""
    firsts = {}
    for stream_decision in decisions:
        key = (stream_decision.stream_id, stream_decision.decision.key)
        if key not in firsts:
            firsts[key] = stream_decision.decision
    return firsts


def assert_recovery_parity(got, reference):
    """First emissions must match the lost-free reference bit-for-bit."""
    got_firsts = first_emissions(got)
    ref_firsts = first_emissions(reference)
    assert set(got_firsts) == set(ref_firsts)
    for key, ref in ref_firsts.items():
        mine = got_firsts[key]
        assert mine.predicted == ref.predicted, key
        assert mine.confidence == pytest.approx(ref.confidence, abs=TOLERANCE)
        assert mine.observations == ref.observations, key
        assert mine.decision_time == ref.decision_time, key


class FakeClock:
    """A hand-advanced monotonic clock for breaker backoff tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# --------------------------------------------------------------------- #
# fault injector
# --------------------------------------------------------------------- #
class TestFaultInjector:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="nope")
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec(site="shard-round", action="explode")
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(site="shard-round", probability=1.5)
        with pytest.raises(ValueError, match="delay_s > 0"):
            FaultSpec(site="shard-round", action="delay")
        with pytest.raises(ValueError, match="after"):
            FaultSpec(site="shard-round", after=-1)
        with pytest.raises(ValueError, match="limit"):
            FaultSpec(site="shard-round", limit=0)

    def test_fire_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultInjector().fire("not-a-site")

    def test_unarmed_injector_is_inert(self):
        injector = FaultInjector(seed=1)
        for _ in range(10):
            injector.fire("shard-round", 0)
        assert injector.fired() == 0
        assert injector.stats() == {}

    def test_after_and_limit(self):
        injector = FaultInjector(
            specs=[FaultSpec(site="shard-round", after=2, limit=2)]
        )
        outcomes = []
        for _ in range(6):
            try:
                injector.fire("shard-round", 0)
                outcomes.append("ok")
            except InjectedFault:
                outcomes.append("fault")
        # Hits 1-2 skipped (after), 3-4 fire (limit), 5-6 exhausted.
        assert outcomes == ["ok", "ok", "fault", "fault", "ok", "ok"]
        assert injector.fired("shard-round") == 2

    def test_shard_scoping(self):
        injector = FaultInjector(specs=[FaultSpec(site="shard-round", shard_id=1)])
        injector.fire("shard-round", 0)  # other shard: no fault
        with pytest.raises(InjectedFault):
            injector.fire("shard-round", 1)

    def test_kill_raises_shard_killed(self):
        injector = FaultInjector(specs=[FaultSpec(site="executor-job", action="kill")])
        with pytest.raises(ShardKilled, match="injected kill fault"):
            injector.fire("executor-job", 3)

    def test_delay_sleeps_and_continues(self):
        injector = FaultInjector(
            specs=[FaultSpec(site="sink-publish", action="delay", delay_s=0.05, limit=1)]
        )
        start = time.perf_counter()
        injector.fire("sink-publish")
        assert time.perf_counter() - start >= 0.04
        assert injector.fired() == 1

    def test_probabilistic_firing_is_seed_deterministic(self):
        def firing_pattern(seed):
            injector = FaultInjector(
                seed=seed, specs=[FaultSpec(site="shard-round", probability=0.5)]
            )
            pattern = []
            for _ in range(32):
                try:
                    injector.fire("shard-round", 0)
                    pattern.append(0)
                except InjectedFault:
                    pattern.append(1)
            return pattern

        assert firing_pattern(7) == firing_pattern(7)
        assert firing_pattern(7) != firing_pattern(8)
        assert 0 < sum(firing_pattern(7)) < 32


# --------------------------------------------------------------------- #
# circuit breaker
# --------------------------------------------------------------------- #
class TestCircuitBreaker:
    def make(self, **overrides):
        clock = FakeClock()
        kwargs = dict(
            failure_threshold=3,
            backoff_base_s=1.0,
            backoff_factor=2.0,
            backoff_max_s=8.0,
            clock=clock,
        )
        kwargs.update(overrides)
        return CircuitBreaker(SupervisorConfig(**kwargs)), clock

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_success_resets_the_streak(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_backoff_elapse_half_opens_and_probe_closes(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()  # backoff elapsed: half-open probe
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.current_backoff_s == 1.0  # backoff reset

    def test_failed_probe_reopens_with_doubled_backoff(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()  # probe fails: reopen, backoff doubled to 4
        assert breaker.state == "open"
        clock.advance(2.0)  # the second backoff (2s) has now elapsed...
        assert breaker.allow()
        breaker.record_failure()
        clock.advance(3.9)  # ...but the third (4s) has not
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()

    def test_backoff_caps_at_max(self):
        breaker, clock = self.make(backoff_max_s=4.0)
        for round_index in range(6):
            for _ in range(3):
                breaker.record_failure()
            clock.advance(100.0)
            assert breaker.allow()
        assert breaker.current_backoff_s <= 4.0

    def test_config_validation(self):
        with pytest.raises(ValueError, match="round_deadline_s"):
            SupervisorConfig(round_deadline_s=0)
        with pytest.raises(ValueError, match="failure_threshold"):
            SupervisorConfig(failure_threshold=0)
        with pytest.raises(ValueError, match="backoff_factor"):
            SupervisorConfig(backoff_factor=0.5)
        with pytest.raises(ValueError, match="backoff_max_s"):
            SupervisorConfig(backoff_base_s=2.0, backoff_max_s=1.0)
        with pytest.raises(ValueError, match="degraded"):
            SupervisorConfig(degraded="panic")
        with pytest.raises(ValueError, match="sink_quarantine_after"):
            SupervisorConfig(sink_quarantine_after=0)
        with pytest.raises(ValueError, match="every_rounds"):
            CheckpointConfig(every_rounds=-1)


# --------------------------------------------------------------------- #
# executor: abandon + leak accounting
# --------------------------------------------------------------------- #
class TestThreadExecutorFaults:
    def test_abandon_replaces_wedged_worker_and_drops_queued_jobs(self):
        executor = ThreadExecutor(num_shards=2, num_workers=1)
        try:
            release = threading.Event()
            wedged = executor.submit(0, release.wait)
            follower = executor.submit(1, lambda: "ran")  # queued behind the wedge
            assert not follower.done.wait(0.05)
            assert executor.abandon(0)
            assert executor.abandoned_workers == 1
            # The queued job is dropped unrun — never forwarded to run with
            # no one awaiting it — and its waiter is told to resubmit.
            assert not follower.started.is_set()
            with pytest.raises(AbandonedJobError):
                follower.wait()
            # New submissions (and run(), which retries through the drop
            # transparently) keep working on the replacement worker.
            assert executor.submit(1, lambda: "ran").wait() == "ran"
            assert executor.run(0, lambda: 41 + 1) == 42
            release.set()
            assert wedged.done.wait(1.0)  # old thread finishes, then exits
        finally:
            release.set()
            executor.close()
        assert executor.leaked_workers == 0

    def test_abandoned_thread_sees_cancellation_signal(self):
        """A job on the old thread observes current_context_abandoned() —
        the loop-exit signal zombie drains use for containment."""
        executor = ThreadExecutor(num_shards=1, num_workers=1)
        try:
            release = threading.Event()
            flags = []

            def wedge_then_check():
                release.wait()
                flags.append(executor.current_context_abandoned())

            wedged = executor.submit(0, wedge_then_check)
            assert wedged.started.wait(1.0)
            assert not executor.current_context_abandoned()  # caller thread
            assert executor.abandon(0)
            release.set()
            assert wedged.done.wait(1.0)
            assert flags == [True]
            # The replacement worker is not abandoned.
            assert executor.run(0, executor.current_context_abandoned) is False
        finally:
            release.set()
            executor.close()

    def test_abandon_after_close_is_refused(self):
        executor = ThreadExecutor(num_shards=1)
        executor.close()
        assert not executor.abandon(0)

    def test_close_counts_and_warns_about_leaked_workers(self):
        executor = ThreadExecutor(num_shards=1, join_timeout=0.1)
        release = threading.Event()
        executor.submit(0, release.wait)
        with pytest.warns(RuntimeWarning, match="leaked 1 worker"):
            executor.close()
        assert executor.leaked_workers == 1
        release.set()

    def test_clean_close_leaks_nothing(self):
        executor = ThreadExecutor(num_shards=3, join_timeout=0.5)
        assert executor.map_shards([lambda: 1, lambda: 2, lambda: 3]) == [1, 2, 3]
        executor.close()
        assert executor.leaked_workers == 0

    def test_join_timeout_validation(self):
        with pytest.raises(ValueError, match="join_timeout"):
            ThreadExecutor(num_shards=1, join_timeout=0.0)


# --------------------------------------------------------------------- #
# crash recovery parity (the fast deterministic chaos-gate leg)
# --------------------------------------------------------------------- #
class TestCrashRecoveryParity:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    @pytest.mark.parametrize("action", ["kill", "raise"])
    def test_mid_encode_crash_recovers_with_parity(self, executor, action):
        """A shard killed mid-encode rewinds to its checkpoint; decisions for
        every non-lost arrival match a cluster that never saw the lost ones."""
        model = make_model()
        _, events = multi_stream_events(seed=11)
        injector = FaultInjector(
            specs=[FaultSpec(site="session-encode", action=action, shard_id=0, after=3, limit=1)]
        )
        config = ClusterConfig(
            num_shards=2,
            batch_size=4,
            executor=executor,
            supervision=SupervisorConfig(checkpoint=CheckpointConfig(every_rounds=2)),
            faults=injector,
            engine=engine_config(),
        )
        cluster, got = run_cluster(model, events, config)
        lost = [
            entry for shard in cluster.shards for entry in shard.supervisor.lost_entries
        ]
        health = cluster.health()
        cluster.close()

        assert injector.fired("session-encode") == 1
        if executor == "process" and action == "kill":
            # The kill is a real SIGKILL of the worker process.  On hosts
            # where the sibling shard shares that process
            # (num_workers < num_shards), its replica dies too and it
            # recovers via ReplicaLostError — so failures may exceed one,
            # but every failure is restored and the worker respawned.
            assert health["failures"] >= 1
            assert health["restores"] == health["failures"]
            assert health["worker_respawns"] >= 1
        else:
            assert health["failures"] == 1 and health["restores"] == 1
        assert health["lost_arrivals"] == len(lost) > 0

        reference_cluster, reference = run_cluster(
            model,
            remove_lost(events, lost),
            ClusterConfig(num_shards=2, batch_size=4, engine=engine_config()),
        )
        reference_cluster.close()
        assert_recovery_parity(got, reference)

    @pytest.mark.parametrize("site", ["shard-round", "executor-job"])
    def test_pre_dequeue_crash_loses_nothing(self, site):
        """Faults before any arrival is consumed recover with an empty lost
        set — the full workload replays to exact parity."""
        model = make_model()
        _, events = multi_stream_events(seed=12)
        injector = FaultInjector(specs=[FaultSpec(site=site, shard_id=0, after=2, limit=1)])
        config = ClusterConfig(
            num_shards=2,
            batch_size=4,
            auto_drain=(site == "shard-round"),
            supervision=SupervisorConfig(checkpoint=CheckpointConfig(every_rounds=2)),
            faults=injector,
            engine=engine_config(),
        )
        cluster = ServingCluster(model, SPEC, config)
        got = []
        for event in events:
            got.extend(cluster.submit(event))
            if site == "executor-job" and cluster.shards[0].queue_depth >= 4:
                got.extend(cluster.drain())
        got.extend(cluster.flush())
        health = cluster.health()
        assert injector.fired(site) == 1
        assert health["restores"] == 1
        assert health["lost_arrivals"] == 0
        assert all(not shard.supervisor.lost_entries for shard in cluster.shards)
        cluster.close()

        reference_cluster, reference = run_cluster(
            model,
            events,
            ClusterConfig(num_shards=2, batch_size=4, engine=engine_config()),
        )
        reference_cluster.close()
        assert_recovery_parity(got, reference)

    def test_unfaulted_supervised_cluster_matches_unsupervised(self):
        """Supervision at default cadence is pure bookkeeping: identical
        decision lists with and without it."""
        model = make_model()
        _, events = multi_stream_events(seed=13)
        supervised_cluster, supervised = run_cluster(
            model,
            events,
            ClusterConfig(num_shards=2, batch_size=4, engine=engine_config()),
        )
        health = supervised_cluster.health()
        assert health["failures"] == 0
        assert health["checkpoints"] >= len(supervised_cluster.shards)
        supervised_cluster.close()

        baseline_cluster, baseline = run_cluster(
            model,
            events,
            ClusterConfig(
                num_shards=2,
                batch_size=4,
                supervision=SupervisorConfig(checkpoint=CheckpointConfig(every_rounds=0)),
                engine=engine_config(),
            ),
        )
        baseline_cluster.close()
        assert [
            (d.stream_id, d.decision.key, d.decision.predicted, d.decision.confidence)
            for d in supervised
        ] == [
            (d.stream_id, d.decision.key, d.decision.predicted, d.decision.confidence)
            for d in baseline
        ]

    def test_checkpoint_cadence_is_observed(self):
        model = make_model()
        _, events = multi_stream_events(seed=14, num_events=60)
        config = ClusterConfig(
            num_shards=1,
            batch_size=2,
            supervision=SupervisorConfig(checkpoint=CheckpointConfig(every_rounds=5)),
            engine=engine_config(),
        )
        cluster, _ = run_cluster(model, events, config)
        supervisor = cluster.shards[0].supervisor
        rounds = supervisor.rounds_completed
        # Initial checkpoint + one per full cadence window.
        assert supervisor.checkpoints == 1 + rounds // 5
        assert cluster.health()["shards"][0]["rounds_since_checkpoint"] == rounds % 5
        cluster.close()


# --------------------------------------------------------------------- #
# graceful degradation
# --------------------------------------------------------------------- #
def _breaker_open_cluster(degraded: str, clock=None):
    """A 1-shard cluster whose breaker has been opened by injected faults."""
    model = make_model()
    # limit=2 exactly trips the threshold-2 breaker, then exhausts, so a
    # later half-open probe is able to succeed.
    injector = FaultInjector(specs=[FaultSpec(site="shard-round", shard_id=0, limit=2)])
    supervision = SupervisorConfig(
        failure_threshold=2,
        backoff_base_s=10.0,
        backoff_max_s=40.0,
        degraded=degraded,
        checkpoint=CheckpointConfig(every_rounds=2),
        clock=clock or time.monotonic,
    )
    config = ClusterConfig(
        num_shards=1,
        batch_size=2,
        auto_drain=False,
        supervision=supervision,
        faults=injector,
        engine=engine_config(),
    )
    cluster = ServingCluster(model, SPEC, config)
    _, events = multi_stream_events(seed=15, num_events=8)
    for event in events[:4]:
        cluster.submit(event)
    for _ in range(2):  # two failing rounds trip the threshold-2 breaker
        cluster.drain()
    assert cluster.health()["breaker_open"] == [0]
    return cluster, injector, events[4:]


class TestGracefulDegradation:
    def test_shed_policy_returns_degraded_status(self):
        cluster, _, events = _breaker_open_cluster("shed")
        result = cluster.submit(events[0])
        assert result.status == "degraded"
        assert result.dropped and not result.admitted
        assert list(result) == []
        assert cluster.health()["degraded_submits"] == 1
        cluster.close()

    def test_reject_policy_raises_unless_opted_out(self):
        cluster, _, events = _breaker_open_cluster("reject")
        with pytest.raises(ShardDegradedError, match="shard 0 is degraded"):
            cluster.submit(events[0])
        result = cluster.submit(events[1], raise_on_reject=False)
        assert result.status == "degraded"
        assert cluster.health()["degraded_submits"] == 2
        cluster.close()

    def test_probe_after_backoff_closes_breaker_and_serves_backlog(self):
        clock = FakeClock()
        cluster, injector, events = _breaker_open_cluster("shed", clock=clock)
        backlog = sum(shard.queue_depth for shard in cluster.shards)
        assert backlog > 0
        # The injected fault is exhausted (limit=2); let the backoff elapse
        # on the injected clock so the next round is a half-open probe.
        clock.advance(1000.0)
        cluster.drain()  # half-open probe round succeeds and closes
        flushed = cluster.flush()
        health = cluster.health()
        assert health["breaker_open"] == []
        assert health["shards"][0]["breaker"] == "closed"
        assert sum(shard.queue_depth for shard in cluster.shards) == 0
        # The backlog survived the open window and was served after recovery.
        assert flushed
        cluster.close()

    def test_open_breaker_skips_fan_out_rounds(self):
        cluster, _, _ = _breaker_open_cluster("shed")
        failures_before = cluster.health()["failures"]
        assert cluster.drain() == []  # skipped, not attempted-and-failed
        assert cluster.health()["failures"] == failures_before
        cluster.close()


# --------------------------------------------------------------------- #
# round deadlines (wedged workers)
# --------------------------------------------------------------------- #
class TestRoundDeadlines:
    def test_wedged_round_is_abandoned_not_waited_for(self):
        """A drain round sleeping far past the deadline must not block
        ``drain()``: the worker is abandoned, the shard recovered."""
        model = make_model()
        _, events = multi_stream_events(seed=16, num_events=20)
        injector = FaultInjector(
            specs=[FaultSpec(site="session-encode", action="delay", delay_s=30.0, shard_id=0, limit=1)]
        )
        config = ClusterConfig(
            num_shards=2,
            batch_size=4,
            auto_drain=False,
            executor="thread",
            supervision=SupervisorConfig(
                round_deadline_s=0.2,
                checkpoint=CheckpointConfig(every_rounds=2),
            ),
            faults=injector,
            engine=engine_config(),
        )
        cluster = ServingCluster(model, SPEC, config)
        for event in events:
            cluster.submit(event)
        start = time.perf_counter()
        cluster.drain()
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0  # returned long before the 30s wedge resolves
        health = cluster.health()
        assert health["deadline_abandons"] == 1
        assert health["restores"] >= 1
        assert health["abandoned_workers"] == 1
        # The shard keeps serving on its replacement worker.
        cluster.flush()
        assert cluster.shards[0].queue_depth == 0
        # The wedged (daemonic) thread is still asleep at close: a short join
        # timeout makes the leak visible — counted and warned, not hidden.
        cluster._executor.join_timeout = 0.1
        with pytest.warns(RuntimeWarning, match="leaked"):
            cluster.close()
        assert health["shards"][0]["last_error"].startswith("TimeoutError")

    def test_busy_shard_making_progress_is_not_abandoned(self):
        """The deadline is progress-aware: many fast rounds under a deadline
        shorter than the whole drain must not trigger abandonment."""
        model = make_model()
        _, events = multi_stream_events(seed=17, num_events=80)
        config = ClusterConfig(
            num_shards=1,
            batch_size=1,  # many rounds per drain
            auto_drain=False,
            executor="thread",
            supervision=SupervisorConfig(round_deadline_s=0.5),
            engine=engine_config(),
        )
        cluster = ServingCluster(model, SPEC, config)
        for event in events:
            cluster.submit(event)
        cluster.drain()
        health = cluster.health()
        assert health["deadline_abandons"] == 0
        assert health["failures"] == 0
        cluster.close()

    def test_abandoned_drain_loop_never_touches_recovered_state(self):
        """Zombie containment: the abandoned worker's drain loop must exit
        when its wedge resolves — not re-enter the requeued backlog and
        drain the shard concurrently with the replacement worker."""
        model = make_model()
        _, events = multi_stream_events(seed=21, num_events=24)
        injector = FaultInjector(
            specs=[FaultSpec(site="session-encode", action="delay", delay_s=1.0, shard_id=0, limit=1)]
        )
        config = ClusterConfig(
            num_shards=2,
            batch_size=2,
            auto_drain=False,
            executor="thread",
            supervision=SupervisorConfig(
                round_deadline_s=0.1,
                checkpoint=CheckpointConfig(every_rounds=1),
            ),
            faults=injector,
            engine=engine_config(),
        )
        cluster = ServingCluster(model, SPEC, config)
        for event in events:
            cluster.submit(event)
        cluster.drain()  # shard 0 wedges mid-encode: abandoned + recovered
        shard = cluster.shards[0]
        health = cluster.health()["shards"][0]
        assert health["deadline_abandons"] == 1
        requeued = shard.queue_depth
        assert requeued > 0  # recovery requeued the surviving arrivals
        drained_before = shard.drained
        rounds_before = shard.monitor.rounds
        # Let the zombie's 1s wedge resolve and its loop body run to its
        # containment checks.
        time.sleep(1.5)
        assert shard.queue_depth == requeued  # backlog untouched
        assert shard.drained == drained_before  # stale tail was gated
        assert shard.monitor.rounds == rounds_before
        assert shard.supervisor.stale_reports >= 1  # report dropped, counted
        # The replacement worker serves the backlog normally.
        cluster.flush()
        assert shard.queue_depth == 0
        cluster.close()  # zombie already exited: no leak warning expected
        assert cluster._executor.leaked_workers == 0

    def test_shared_worker_sibling_survives_abandonment(self):
        """``num_workers < num_shards``: a sibling shard's job queued behind
        the wedged one is dropped unrun at abandonment and transparently
        resubmitted to the replacement — its arrivals are neither lost nor
        consumed unobserved, and the sibling is never spuriously abandoned
        or recovered."""
        model = make_model()
        _, events = multi_stream_events(seed=22, num_events=30)
        injector = FaultInjector(
            specs=[FaultSpec(site="session-encode", action="delay", delay_s=1.0, shard_id=0, limit=1)]
        )
        config = ClusterConfig(
            num_shards=2,
            batch_size=4,
            auto_drain=False,
            executor="thread",
            num_workers=1,  # both shards pinned to one worker
            supervision=SupervisorConfig(
                round_deadline_s=0.15,
                checkpoint=CheckpointConfig(every_rounds=2),
            ),
            faults=injector,
            engine=engine_config(),
        )
        cluster = ServingCluster(model, SPEC, config)
        for event in events:
            cluster.submit(event)
        sibling_depth = cluster.shards[1].queue_depth
        assert sibling_depth > 0
        cluster.drain()
        health = cluster.health()
        assert health["shards"][0]["deadline_abandons"] == 1
        assert health["shards"][1]["deadline_abandons"] == 0
        assert health["shards"][1]["failures"] == 0
        assert health["shards"][1]["restores"] == 0
        # The sibling's backlog was served by the resubmitted job, with the
        # fan-out awaiting it (not consumed unobserved, not lost with the
        # drop).
        assert cluster.shards[1].queue_depth == 0
        assert cluster.shards[1].drained == sibling_depth
        time.sleep(1.2)  # wedge resolves; zombie exits
        cluster.flush()
        assert cluster.shards[0].queue_depth == 0
        cluster.close()
        assert cluster._executor.leaked_workers == 0


# --------------------------------------------------------------------- #
# process-backend crash recovery (real worker death, not simulated)
# --------------------------------------------------------------------- #
class TestProcessBackendRecovery:
    def test_external_sigkill_mid_round_recovers_with_parity(self):
        """A worker process SIGKILLed out-of-band (no injector involved):
        the next pipe operation fails mid-round with WorkerCrashedError,
        recovery respawns the worker seeded from the shard's checkpoint, and
        decisions for every non-lost arrival match a reference cluster that
        never saw the lost ones."""
        model = make_model()
        _, events = multi_stream_events(seed=31)
        config = ClusterConfig(
            num_shards=2,
            batch_size=4,
            executor="process",
            supervision=SupervisorConfig(checkpoint=CheckpointConfig(every_rounds=2)),
            engine=engine_config(),
        )
        cluster = ServingCluster(model, SPEC, config)
        got = []
        half = len(events) // 2
        for event in events[:half]:
            got.extend(cluster.submit(event))
        got.extend(cluster.drain())
        victim_pid = cluster._executor.worker_pid(0)
        os.kill(victim_pid, signal.SIGKILL)
        for event in events[half:]:
            got.extend(cluster.submit(event))
        got.extend(cluster.flush())
        lost = [
            entry for shard in cluster.shards for entry in shard.supervisor.lost_entries
        ]
        health = cluster.health()
        assert health["failures"] >= 1
        assert health["restores"] == health["failures"]
        assert health["worker_respawns"] >= 1
        assert cluster._executor.worker_pid(0) != victim_pid
        assert all(shard.queue_depth == 0 for shard in cluster.shards)
        cluster.close()

        reference_cluster, reference = run_cluster(
            model,
            remove_lost(events, lost),
            ClusterConfig(num_shards=2, batch_size=4, engine=engine_config()),
        )
        reference_cluster.close()
        assert_recovery_parity(got, reference)

    def test_abandoned_round_resubmits_dropped_sibling_job(self):
        """``num_workers < num_shards`` on the process backend: abandoning a
        wedged round kills the whole worker *process* and respawns it, so

        * the sibling shard's job queued behind the wedge is dropped unrun
          (``AbandonedJobError``) and transparently resubmitted — the drop
          itself loses nothing,
        * the sibling's replica died with the killed process, so unlike the
          thread backend it recovers once via ``ReplicaLostError`` before
          serving again, losing at most the one round that was in flight
          when the crash surfaced (accounted in ``lost_entries``),
        * the wedged zombie thread's late pipe call is fenced off from the
          respawned worker.
        """
        model = make_model()
        _, events = multi_stream_events(seed=32, num_events=30)
        injector = FaultInjector(
            specs=[FaultSpec(site="session-encode", action="delay", delay_s=1.0, shard_id=0, limit=1)]
        )
        config = ClusterConfig(
            num_shards=2,
            batch_size=4,
            auto_drain=False,
            executor="process",
            num_workers=1,  # both shards pinned to one worker process
            supervision=SupervisorConfig(
                round_deadline_s=0.15,
                checkpoint=CheckpointConfig(every_rounds=2),
            ),
            faults=injector,
            engine=engine_config(),
        )
        cluster = ServingCluster(model, SPEC, config)
        victim_pid = cluster._executor.worker_pid(0)
        for event in events:
            cluster.submit(event)
        sibling_depth = cluster.shards[1].queue_depth
        assert sibling_depth > 0
        cluster.drain()
        health = cluster.health()
        assert health["shards"][0]["deadline_abandons"] == 1
        assert health["abandoned_workers"] == 1
        # Abandonment was a real process death + respawn.
        assert health["worker_respawns"] >= 1
        assert cluster._executor.worker_pid(0) != victim_pid
        assert cluster._executor.worker_alive(0)
        time.sleep(1.2)  # wedge resolves; the fenced zombie exits
        cluster.flush()
        assert cluster.shards[0].queue_depth == 0
        assert cluster.shards[1].queue_depth == 0
        # Every sibling arrival is accounted for: served by the resubmitted
        # job, or lost to the single in-flight round of its ReplicaLostError
        # recovery — never silently dropped.
        health = cluster.health()
        sibling_lost = list(cluster.shards[1].supervisor.lost_entries)
        assert cluster.shards[1].drained + len(sibling_lost) == sibling_depth
        assert health["shards"][1]["deadline_abandons"] == 0
        assert health["shards"][1]["failures"] <= 1
        assert health["shards"][1]["restores"] == health["shards"][1]["failures"]
        cluster.close()
        assert cluster._executor.leaked_workers == 0


# --------------------------------------------------------------------- #
# sink fault isolation
# --------------------------------------------------------------------- #
class TestSinkFaultIsolation:
    def test_permanently_failing_sink_never_affects_decisions(self):
        model = make_model()
        _, events = multi_stream_events(seed=18)
        baseline_cluster, baseline = run_cluster(
            model, events, ClusterConfig(num_shards=2, batch_size=4, engine=engine_config())
        )
        baseline_cluster.close()

        injector = FaultInjector(specs=[FaultSpec(site="sink-publish")])
        config = ClusterConfig(num_shards=2, batch_size=4, engine=engine_config())
        cluster = ServingCluster(model, SPEC, config)
        broken = cluster.subscribe(FaultInjectingSink(injector))
        healthy = cluster.subscribe(BufferedSink())
        got = []
        for event in events:
            got.extend(cluster.submit(event))
        got.extend(cluster.flush())
        health = cluster.health()
        cluster.close()

        # Returned decisions are identical to the sink-free run...
        assert [
            (d.stream_id, d.decision.key, d.decision.confidence) for d in got
        ] == [
            (d.stream_id, d.decision.key, d.decision.confidence) for d in baseline
        ]
        # ...the healthy sibling received every decision...
        assert len(healthy.take()) == len(got)
        # ...and the broken sink was quarantined after K consecutive errors.
        assert health["quarantined_sinks"] == 1
        assert health["sink_publish_errors"] == cluster.config.supervision.sink_quarantine_after
        assert injector.fired("sink-publish") > 0

    def test_quarantine_surfaced_in_stats(self):
        model = make_model()
        _, events = multi_stream_events(seed=19, num_events=40)
        cluster = ServingCluster(
            model, SPEC, ClusterConfig(num_shards=1, batch_size=4, engine=engine_config())
        )
        injector = FaultInjector(specs=[FaultSpec(site="sink-publish")])
        cluster.subscribe(FaultInjectingSink(injector))
        for event in events:
            cluster.submit(event)
        cluster.flush()
        stats = cluster.stats()
        assert stats["health"]["quarantined_sinks"] == 1
        assert stats["health"]["sink_publish_errors"] >= 1
        cluster.close()


# --------------------------------------------------------------------- #
# rejected-submit idempotence
# --------------------------------------------------------------------- #
class TestRejectedSubmitIdempotence:
    def _full_cluster(self):
        """A reject-overflow cluster with its single queue exactly full."""
        model = make_model()
        _, events = multi_stream_events(seed=20, num_events=8, num_streams=1)
        cluster = ServingCluster(
            model,
            SPEC,
            ClusterConfig(
                num_shards=1,
                max_queue=3,
                overflow="reject",
                auto_drain=False,
                engine=engine_config(),
            ),
        )
        for event in events[:3]:
            assert cluster.submit(event).admitted
        return cluster, events[3:]

    @staticmethod
    def _state_bytes(cluster):
        """Serialized sessions + queue of every shard (not counters: the
        ``rejected`` tally legitimately moves on a rejected submit)."""
        snapshot = cluster.snapshot()
        return pickle.dumps(
            [
                {"sessions": state["sessions"], "queue": state["queue"]}
                for state in snapshot.shard_states
            ]
        )

    def test_raising_reject_leaves_state_bit_for_bit_untouched(self):
        cluster, overflow = self._full_cluster()
        before = self._state_bytes(cluster)
        with pytest.raises(ShardOverloadError):
            cluster.submit(overflow[0])
        assert self._state_bytes(cluster) == before
        assert cluster.stats()["rejected"] == 1
        cluster.close()

    def test_non_raising_reject_is_equally_idempotent(self):
        cluster, overflow = self._full_cluster()
        before = self._state_bytes(cluster)
        for event in overflow[:2]:
            result = cluster.submit(event, raise_on_reject=False)
            assert result.status == "rejected" and result.dropped
            assert list(result) == []
        assert self._state_bytes(cluster) == before
        assert cluster.stats()["rejected"] == 2
        # The admitted backlog is fully servable after the rejections.
        assert cluster.flush()
        cluster.close()


# --------------------------------------------------------------------- #
# lifecycle edges
# --------------------------------------------------------------------- #
class TestLifecycleEdges:
    def test_cluster_double_close_and_shutdown_are_idempotent(self):
        model = make_model()
        cluster = ServingCluster(
            model, SPEC, ClusterConfig(num_shards=2, executor="thread", engine=engine_config())
        )
        _, events = multi_stream_events(seed=21, num_events=10)
        for event in events:
            cluster.submit(event)
        assert cluster.shutdown() is not None
        assert cluster.state == "closed"
        assert cluster.shutdown() == []  # idempotent
        cluster.close()  # also idempotent after shutdown
        cluster.close()
        assert cluster.state == "closed"

    def test_submit_after_close_error_names_the_state(self):
        model = make_model()
        cluster = ServingCluster(model, SPEC, ClusterConfig(num_shards=1, engine=engine_config()))
        cluster.close()
        _, events = multi_stream_events(seed=22, num_events=1)
        with pytest.raises(RuntimeError, match="cannot submit: cluster is closed"):
            cluster.submit(events[0])
        with pytest.raises(RuntimeError, match="cannot drain: cluster is closed"):
            cluster.drain()

    def test_gateway_double_close_and_submit_after_close(self):
        from repro.serving.gateway import ServingGateway

        gateway = ServingGateway(
            make_model(), SPEC, ClusterConfig(num_shards=1, engine=engine_config())
        )
        _, events = multi_stream_events(seed=23, num_events=6)
        for event in events:
            gateway.submit(event)
        gateway.close()
        assert gateway.close() == []  # idempotent
        with pytest.raises(RuntimeError, match="cannot submit: gateway is closed"):
            gateway.submit(events[0])

    def test_async_gateway_double_close_and_submit_after_close(self):
        import asyncio

        from repro.serving.aio import AsyncServingGateway

        async def scenario():
            gateway = AsyncServingGateway(
                make_model(), SPEC, ClusterConfig(num_shards=1, engine=engine_config())
            )
            _, events = multi_stream_events(seed=24, num_events=6)
            for event in events:
                await gateway.submit(event)
            await gateway.close()
            assert (await gateway.close()) == []  # idempotent
            with pytest.raises(RuntimeError, match="cannot submit: gateway is"):
                await gateway.submit(events[0])

        asyncio.run(scenario())

    def test_shutdown_racing_inflight_thread_drain_never_hangs(self):
        """A background submitter racing ``shutdown()`` must end cleanly:
        either its submits land before the final flush or they hit the
        lifecycle guard — never a hang or an unexpected error."""
        model = make_model()
        cluster = ServingCluster(
            model,
            SPEC,
            ClusterConfig(num_shards=2, executor="thread", batch_size=2, engine=engine_config()),
        )
        _, events = multi_stream_events(seed=25, num_events=60)
        started = threading.Event()
        outcomes = []

        def submitter():
            started.set()
            for event in events:
                try:
                    cluster.submit(event)
                except RuntimeError as error:
                    assert "cannot submit" in str(error)
                    outcomes.append("guarded")
                    return
            outcomes.append("finished")

        thread = threading.Thread(target=submitter)
        thread.start()
        started.wait()
        cluster.shutdown()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert outcomes in (["guarded"], ["finished"])
        assert cluster.state == "closed"
