"""Exactness tests: the incremental KV-cached engine vs full re-encode.

The incremental engine must be a pure optimisation: across random streams —
including streams long enough to trigger window evictions and cache rebuilds
— its decisions (predicted label, confidence, halt step, decision kind) must
match the ``mode="full"`` reference engine up to float tolerance.
"""

import numpy as np
import pytest

from repro.core.config import KVECConfig
from repro.core.model import KVEC
from repro.data.items import Item, ValueSpec
from repro.data.stream import StreamEvent
from repro.serving.engine import EngineConfig, OnlineClassificationEngine

SPEC = ValueSpec(field_names=("size", "direction"), cardinalities=(8, 2), session_field=1)

TOLERANCE = 1e-9


def make_model(fusion: str = "gated", seed: int = 0) -> KVEC:
    config = KVECConfig(
        d_model=16,
        num_blocks=2,
        num_heads=2,
        ffn_hidden=24,
        d_state=20,
        dropout=0.0,
        fusion=fusion,
        seed=seed,
    )
    return KVEC(SPEC, num_classes=3, config=config)


def random_stream(num_items: int, num_keys: int, seed: int):
    rng = np.random.default_rng(seed)
    events = []
    for index in range(num_items):
        key = f"k{rng.integers(num_keys)}"
        value = (int(rng.integers(8)), int(rng.integers(2)))
        item = Item(key, value, float(index))
        events.append(StreamEvent(time=float(index), item=item))
    return events


def run_engine(model, events, mode: str, **config_kwargs):
    engine = OnlineClassificationEngine(
        model, SPEC, EngineConfig(mode=mode, **config_kwargs)
    )
    for event in events:
        engine.offer(event)
    engine.flush()
    return engine


def assert_decisions_match(incremental, full):
    assert set(incremental.decisions) == set(full.decisions)
    for key, expected in full.decisions.items():
        actual = incremental.decisions[key]
        assert actual.predicted == expected.predicted, key
        assert actual.confidence == pytest.approx(expected.confidence, abs=TOLERANCE), key
        assert actual.observations == expected.observations, key
        assert actual.decision_time == expected.decision_time, key
        assert actual.halted_by_policy == expected.halted_by_policy, key
        assert actual.window_truncated == expected.window_truncated, key


class TestIncrementalParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_no_eviction_stream(self, seed):
        """Window larger than the stream: pure append-only regime."""
        model = make_model(seed=seed)
        events = random_stream(48, num_keys=5, seed=seed + 100)
        incremental = run_engine(model, events, "incremental", window_items=128)
        full = run_engine(model, events, "full", window_items=128)
        assert incremental._incremental is not None
        assert full._incremental is None
        assert_decisions_match(incremental, full)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_stream_with_evictions(self, seed):
        """Window much smaller than the stream: rebuilds on every slide."""
        model = make_model(seed=seed)
        events = random_stream(90, num_keys=6, seed=seed + 200)
        incremental = run_engine(model, events, "incremental", window_items=24)
        full = run_engine(model, events, "full", window_items=24)
        assert incremental.window.evicted > 0
        assert_decisions_match(incremental, full)

    def test_reencode_every_respected(self):
        """Sparse evaluation: decisions only emitted on due arrivals."""
        model = make_model(seed=7)
        events = random_stream(60, num_keys=4, seed=11)
        incremental = run_engine(
            model, events, "incremental", window_items=32, reencode_every=5
        )
        full = run_engine(model, events, "full", window_items=32, reencode_every=5)
        assert_decisions_match(incremental, full)

    def test_eager_mode(self):
        model = make_model(seed=3)
        events = random_stream(50, num_keys=4, seed=17)
        incremental = run_engine(
            model, events, "incremental", window_items=20, reencode_every=4, eager=True
        )
        full = run_engine(
            model, events, "full", window_items=20, reencode_every=4, eager=True
        )
        assert_decisions_match(incremental, full)

    @pytest.mark.parametrize("fusion", ["gated", "mean", "last"])
    def test_all_fusion_kinds(self, fusion):
        model = make_model(fusion=fusion, seed=5)
        events = random_stream(60, num_keys=5, seed=23)
        incremental = run_engine(model, events, "incremental", window_items=24)
        full = run_engine(model, events, "full", window_items=24)
        assert_decisions_match(incremental, full)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_expire_interleaved(self, seed):
        """Idle-timeout expiry interleaved with arrivals must force-decide the
        same keys from the same representations in both modes — including
        when the incremental cache is dirty at expiry time."""
        model = make_model(seed=seed)
        events = random_stream(60, num_keys=5, seed=seed + 700)
        engines = {
            mode: OnlineClassificationEngine(
                model,
                SPEC,
                EngineConfig(mode=mode, window_items=20, idle_timeout=4.0),
            )
            for mode in ("incremental", "full")
        }
        for position, event in enumerate(events):
            expired = {}
            for mode, engine in engines.items():
                engine.offer(event)
                if position % 10 == 9:
                    expired[mode] = [d.key for d in engine.expire()]
            if expired:
                assert expired["incremental"] == expired["full"], position
        for engine in engines.values():
            engine.flush()
        assert_decisions_match(engines["incremental"], engines["full"])

    def test_lazy_rebuild_after_all_keys_decided(self):
        """Maintenance suspends once every window key is decided; a late new
        key must trigger a lazy rebuild and still match the reference."""
        model = make_model(seed=8)
        events = random_stream(200, num_keys=8, seed=61)
        events = events + [
            StreamEvent(time=200.0 + i, item=Item("late", (1, i % 2), 200.0 + i))
            for i in range(30)
        ]
        incremental = run_engine(model, events, "incremental", window_items=64)
        full = run_engine(model, events, "full", window_items=64)
        assert "late" in full.decisions
        assert_decisions_match(incremental, full)

    def test_flush_skips_key_evicted_during_suspension(self):
        """A key fully evicted while cache maintenance was suspended must not
        be flush-decided from its stale representation (full mode, whose
        flush tangle no longer contains the key, emits nothing for it)."""
        model = make_model(seed=1)
        events = [StreamEvent(0.0, Item("A", (0, 0), 0.0))] + [
            StreamEvent(1.0 + i, Item("B", (int(i % 8), i % 2), 1.0 + i))
            for i in range(20)
        ]
        incremental = run_engine(model, events, "incremental", window_items=6)
        full = run_engine(model, events, "full", window_items=6)
        # The scenario only bites if A stayed undecided while B was decided
        # and A's item left the window; seed 1 produces exactly that.
        assert "B" in full.decisions
        assert "A" not in full.decisions
        assert_decisions_match(incremental, full)

    @pytest.mark.parametrize("seed", range(8))
    def test_suspension_with_sparse_evaluations(self, seed):
        """Tiny window + sparse evaluations + aggressive halting: rows cached
        before a maintenance suspension must not survive as stale halting
        candidates once their items leave the window."""
        model = make_model(seed=seed)
        events = random_stream(40, num_keys=3, seed=seed + 300)
        config = dict(window_items=2, reencode_every=3, halt_threshold=0.1)
        incremental = run_engine(model, events, "incremental", **config)
        full = run_engine(model, events, "full", **config)
        assert_decisions_match(incremental, full)

    def test_decision_stream_identical_per_arrival(self):
        """Decisions must fire on the same arrival in both modes."""
        model = make_model(seed=9)
        events = random_stream(70, num_keys=5, seed=31)
        inc_engine = OnlineClassificationEngine(
            model, SPEC, EngineConfig(mode="incremental", window_items=28)
        )
        full_engine = OnlineClassificationEngine(
            model, SPEC, EngineConfig(mode="full", window_items=28)
        )
        for event in events:
            inc_decided = [d.key for d in inc_engine.offer(event)]
            full_decided = [d.key for d in full_engine.offer(event)]
            assert inc_decided == full_decided, event.time
        assert [d.key for d in inc_engine.flush()] == [d.key for d in full_engine.flush()]


class TestCacheInvalidation:
    def test_cache_rebuilt_after_eviction(self):
        """Property: after any eviction the cache mirrors the window exactly.

        ``halt_threshold=1.0`` keeps every key pending so cache maintenance is
        never suspended (with no undecided keys the engine intentionally lets
        the cache go stale and rebuilds lazily).
        """
        model = make_model(seed=1)
        engine = OnlineClassificationEngine(
            model, SPEC, EngineConfig(mode="incremental", window_items=16, halt_threshold=1.0)
        )
        events = random_stream(40, num_keys=4, seed=41)
        for event in events:
            engine.offer(event)
            state = engine._incremental
            window_items = engine.window.items
            assert len(state) == len(window_items)
            assert [state.row_key(i) for i in range(len(state))] == [
                item.key for item in window_items
            ]

    def test_rebuilt_cache_matches_fresh_encode(self):
        """After evictions, cached K/V must equal a from-scratch re-encode."""
        model = make_model(seed=2)
        engine = OnlineClassificationEngine(
            model, SPEC, EngineConfig(mode="incremental", window_items=12, halt_threshold=1.0)
        )
        events = random_stream(30, num_keys=3, seed=43)
        for event in events:
            engine.offer(event)
        assert engine.window.evicted > 0

        fresh = model.make_incremental_state(capacity=12)
        fresh.rebuild(engine.window.items)
        state = engine._incremental
        for block_index in range(len(model.encoder.blocks)):
            cached_k, cached_v = state.kv_cache_view(block_index)
            fresh_k, fresh_v = fresh.kv_cache_view(block_index)
            np.testing.assert_allclose(cached_k, fresh_k, atol=TOLERANCE)
            np.testing.assert_allclose(cached_v, fresh_v, atol=TOLERANCE)
        for index in range(len(state)):
            np.testing.assert_allclose(
                state.fused_row(index), fresh.fused_row(index), atol=TOLERANCE
            )

    def test_append_matches_batched_encode(self):
        """Row-by-row appends must reproduce the batched no-grad encode."""
        model = make_model(seed=4)
        events = random_stream(25, num_keys=4, seed=47)
        streamed = model.make_incremental_state(capacity=32)
        for event in events:
            streamed.append(event.item)
        batched = model.make_incremental_state(capacity=32)
        batched.rebuild([event.item for event in events])
        for index in range(len(streamed)):
            np.testing.assert_allclose(
                streamed.fused_row(index), batched.fused_row(index), atol=TOLERANCE
            )
        for block_index in range(len(model.encoder.blocks)):
            streamed_k, _ = streamed.kv_cache_view(block_index)
            batched_k, _ = batched.kv_cache_view(block_index)
            np.testing.assert_allclose(streamed_k, batched_k, atol=TOLERANCE)

    def test_cache_grows_past_initial_capacity(self):
        model = make_model(seed=6)
        state = model.make_incremental_state(capacity=4)
        events = random_stream(19, num_keys=3, seed=53)
        for event in events:
            state.append(event.item)
        assert len(state) == 19
        assert state.capacity >= 19
        batched = model.make_incremental_state(capacity=32)
        batched.rebuild([event.item for event in events])
        np.testing.assert_allclose(
            state.fused_row(18), batched.fused_row(18), atol=TOLERANCE
        )


class TestFastPathParity:
    def test_predict_tangle_fast_matches_reference(self, trained_tiny_kvec):
        """The raw-numpy inference path must reproduce the autograd route."""
        model = trained_tiny_kvec["model"]
        for tangle in trained_tiny_kvec["splits"]["test"]:
            fast = {r.key: r for r in model.predict_tangle(tangle, fast=True)}
            slow = {r.key: r for r in model.predict_tangle(tangle, fast=False)}
            assert set(fast) == set(slow)
            for key, reference in slow.items():
                record = fast[key]
                assert record.predicted == reference.predicted
                assert record.confidence == pytest.approx(reference.confidence, abs=TOLERANCE)
                assert record.halt_observation == reference.halt_observation
                assert record.halted_by_policy == reference.halted_by_policy
                assert record.sequence_length == reference.sequence_length
