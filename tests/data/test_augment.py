"""Tests for the data-augmentation transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.augment import (
    augment_pool,
    drop_items,
    local_swap,
    perturb_values,
    reassign_keys,
    time_jitter,
    truncate,
)
from repro.data.items import Item, KeyValueSequence, ValueSpec

SPEC = ValueSpec(("size", "direction"), (8, 2), 1)


def make_sequence(key="k", length=10, label=1):
    items = [Item(key, (i % 8, i % 2), float(i)) for i in range(length)]
    return KeyValueSequence(key, items, label)


class TestDropItems:
    def test_label_and_key_preserved(self):
        augmented = drop_items(make_sequence(), 0.3, rng=np.random.default_rng(0))
        assert augmented.key == "k"
        assert augmented.label == 1

    def test_zero_probability_is_identity(self):
        original = make_sequence()
        augmented = drop_items(original, 0.0, rng=np.random.default_rng(0))
        assert [item.value for item in augmented] == [item.value for item in original]

    def test_min_remaining_enforced(self):
        augmented = drop_items(make_sequence(length=5), 0.99, rng=np.random.default_rng(0), min_remaining=2)
        assert len(augmented) >= 2

    def test_never_mutates_input(self):
        original = make_sequence()
        before = len(original)
        drop_items(original, 0.5, rng=np.random.default_rng(0))
        assert len(original) == before

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            drop_items(make_sequence(), 1.0)


class TestTimeJitter:
    def test_order_preserved(self):
        augmented = time_jitter(make_sequence(), 0.5, rng=np.random.default_rng(0))
        times = [item.time for item in augmented]
        assert times == sorted(times)

    def test_times_never_decrease(self):
        original = make_sequence()
        augmented = time_jitter(original, 0.5, rng=np.random.default_rng(0))
        for before, after in zip(original, augmented):
            assert after.time >= before.time

    def test_zero_scale_is_identity(self):
        original = make_sequence()
        augmented = time_jitter(original, 0.0)
        assert [item.time for item in augmented] == [item.time for item in original]


class TestTruncate:
    def test_truncates_to_length(self):
        assert len(truncate(make_sequence(length=10), 4)) == 4

    def test_longer_than_sequence_keeps_all(self):
        assert len(truncate(make_sequence(length=3), 10)) == 3

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            truncate(make_sequence(), 0)


class TestPerturbValues:
    def test_values_stay_in_range(self):
        augmented = perturb_values(make_sequence(), SPEC, 0.9, rng=np.random.default_rng(0))
        for item in augmented:
            SPEC.validate_value(item.value)

    def test_protected_field_untouched(self):
        original = make_sequence()
        augmented = perturb_values(
            original, SPEC, 0.9, rng=np.random.default_rng(0), protected_fields=[1]
        )
        assert [item.field(1) for item in augmented] == [item.field(1) for item in original]

    def test_zero_probability_is_identity(self):
        original = make_sequence()
        augmented = perturb_values(original, SPEC, 0.0)
        assert [item.value for item in augmented] == [item.value for item in original]


class TestLocalSwap:
    def test_multiset_of_values_preserved(self):
        original = make_sequence()
        augmented = local_swap(original, 0.5, rng=np.random.default_rng(0))
        assert sorted(item.value for item in augmented) == sorted(item.value for item in original)

    def test_times_unchanged(self):
        original = make_sequence()
        augmented = local_swap(original, 0.5, rng=np.random.default_rng(0))
        assert [item.time for item in augmented] == [item.time for item in original]


class TestPools:
    def test_reassign_keys_makes_keys_unique(self):
        sequences = [make_sequence("a"), make_sequence("a"), make_sequence("b")]
        reassigned = reassign_keys(sequences)
        keys = [sequence.key for sequence in reassigned]
        assert len(set(keys)) == len(keys)

    def test_augment_pool_size_and_disjoint_keys(self):
        sequences = [make_sequence(f"k{i}", label=i % 2) for i in range(4)]
        rng = np.random.default_rng(0)
        augmented = augment_pool(
            sequences,
            transforms=[
                lambda s: drop_items(s, 0.2, rng=rng),
                lambda s: time_jitter(s, 0.1, rng=rng),
            ],
            copies=3,
        )
        assert len(augmented) == 12
        original_keys = {sequence.key for sequence in sequences}
        assert not original_keys & {sequence.key for sequence in augmented}

    def test_augment_pool_preserves_labels(self):
        sequences = [make_sequence(f"k{i}", label=i % 2) for i in range(4)]
        augmented = augment_pool(sequences, transforms=[lambda s: truncate(s, 5)], copies=1)
        assert [sequence.label for sequence in augmented] == [0, 1, 0, 1]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 4), st.integers(2, 6))
    def test_pool_size_property(self, copies, num_sequences):
        sequences = [make_sequence(f"k{i}") for i in range(num_sequences)]
        augmented = augment_pool(sequences, transforms=[], copies=copies)
        assert len(augmented) == copies * num_sequences
