"""Halting-position distributions on Synthetic-Traffic (Fig. 11, RQ2).

The Synthetic-Traffic dataset has ground-truth halting positions: the item at
which the discriminative stop signal ends.  The analysis compares the
distribution of halting positions chosen by a trained model against the true
distribution, for both the early-stop and late-stop subdatasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.common import EarlyClassifier
from repro.data.items import TangledSequence
from repro.datasets.base import GeneratedDataset


@dataclass
class HaltingDistribution:
    """A histogram of halting positions expressed as earliness fractions."""

    label: str
    bin_edges: np.ndarray
    proportions: np.ndarray

    def as_series(self) -> List[tuple]:
        """Return ``[(bin_centre_percent, proportion), ...]``."""
        centres = (self.bin_edges[:-1] + self.bin_edges[1:]) / 2.0
        return [(float(c) * 100.0, float(p)) for c, p in zip(centres, self.proportions)]

    def mean_earliness(self) -> float:
        centres = (self.bin_edges[:-1] + self.bin_edges[1:]) / 2.0
        total = self.proportions.sum()
        if total == 0:
            return 0.0
        return float((centres * self.proportions).sum() / total)


def _histogram(fractions: Sequence[float], num_bins: int) -> HaltingDistribution:
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    counts, _ = np.histogram(np.clip(fractions, 0.0, 1.0), bins=edges)
    total = counts.sum()
    proportions = counts / total if total else counts.astype(float)
    return HaltingDistribution(label="", bin_edges=edges, proportions=proportions)


def true_halting_distribution(
    dataset: GeneratedDataset,
    tangles: Sequence[TangledSequence],
    num_bins: int = 10,
) -> HaltingDistribution:
    """Distribution of the ground-truth stop positions over the test tangles."""
    fractions: List[float] = []
    for tangle in tangles:
        for key, sequence in tangle.per_key_sequences().items():
            if key not in dataset.true_stop_positions or not len(sequence):
                continue
            fractions.append(dataset.true_stop_positions[key] / len(sequence))
    histogram = _histogram(fractions, num_bins)
    histogram.label = "True Halting Positions"
    return histogram


def halting_position_distribution(
    method: EarlyClassifier,
    tangles: Sequence[TangledSequence],
    num_bins: int = 10,
    label: Optional[str] = None,
) -> HaltingDistribution:
    """Distribution of the halting positions predicted by ``method``."""
    fractions: List[float] = []
    for tangle in tangles:
        for record in method.predict_tangle(tangle):
            fractions.append(record.earliness)
    histogram = _histogram(fractions, num_bins)
    histogram.label = label or f"Predicted by {method.name}"
    return histogram


def distribution_distance(first: HaltingDistribution, second: HaltingDistribution) -> float:
    """Total-variation distance between two halting distributions.

    Used to check quantitatively that KVEC's predicted halting positions are
    closer to the truth than its ablated variant's (the paper's Fig. 11 makes
    the comparison visually).
    """
    if first.proportions.shape != second.proportions.shape:
        raise ValueError("distributions must use the same binning")
    return float(0.5 * np.abs(first.proportions - second.proportions).sum())
