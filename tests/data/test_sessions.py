"""Tests for session segmentation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.items import Item, KeyValueSequence
from repro.data.sessions import average_session_length, segment_sessions, session_lengths


def sequence_from_directions(directions, key="k"):
    items = [Item(key, (0, direction), float(i)) for i, direction in enumerate(directions)]
    return KeyValueSequence(key, items, label=0)


class TestSegmentSessions:
    def test_single_session_when_value_constant(self):
        sessions = segment_sessions(sequence_from_directions([1, 1, 1, 1]), session_field=1)
        assert len(sessions) == 1
        assert len(sessions[0]) == 4

    def test_splits_on_value_change(self):
        sessions = segment_sessions(sequence_from_directions([0, 0, 1, 1, 0]), session_field=1)
        assert [len(s) for s in sessions] == [2, 2, 1]
        assert [s.session_value for s in sessions] == [0, 1, 0]

    def test_start_and_end_indices(self):
        sessions = segment_sessions(sequence_from_directions([0, 1, 1]), session_field=1)
        assert sessions[0].start_index == 0
        assert sessions[1].start_index == 1
        assert sessions[1].end_index == 3

    def test_empty_sequence_yields_no_sessions(self):
        assert segment_sessions(KeyValueSequence("k", [], 0), session_field=1) == []

    def test_max_gap_splits_in_time(self):
        items = [
            Item("k", (0, 1), 0.0),
            Item("k", (0, 1), 1.0),
            Item("k", (0, 1), 100.0),
        ]
        sequence = KeyValueSequence("k", items, 0)
        assert len(segment_sessions(sequence, session_field=1, max_gap=10.0)) == 2
        assert len(segment_sessions(sequence, session_field=1)) == 1

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_session_lengths_partition_the_sequence(self, directions):
        sequence = sequence_from_directions(directions)
        sessions = segment_sessions(sequence, session_field=1)
        assert sum(len(s) for s in sessions) == len(sequence)
        # Sessions alternate values: adjacent sessions never share a value.
        for earlier, later in zip(sessions, sessions[1:]):
            assert earlier.session_value != later.session_value

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_items_within_a_session_share_the_value(self, directions):
        sequence = sequence_from_directions(directions)
        for session in segment_sessions(sequence, session_field=1):
            assert {item.field(1) for item in session.items} == {session.session_value}


class TestAggregates:
    def test_session_lengths_across_sequences(self):
        sequences = [
            sequence_from_directions([0, 0, 1], key="a"),
            sequence_from_directions([1], key="b"),
        ]
        assert sorted(session_lengths(sequences, session_field=1)) == [1, 1, 2]

    def test_average_session_length(self):
        sequences = [sequence_from_directions([0, 0, 1, 1], key="a")]
        assert average_session_length(sequences, session_field=1) == pytest.approx(2.0)

    def test_average_of_empty_input_is_zero(self):
        assert average_session_length([], session_field=1) == 0.0
