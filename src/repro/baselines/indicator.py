"""A non-neural feature-based early classifier (discriminative indicators).

This is the reproduction's representative of the related-work *feature based*
family (shapelets / interpretable patterns [24-26]): it mines short value
n-grams that are highly class-discriminative on the training data and, at
prediction time, halts a sequence as soon as one of those indicators is
observed — the hallmark behaviour of shapelet-style early classifiers.

The miner operates on the discrete value codes of key-value items (there is
no numerical sub-series to extract real shapelets from), so an "indicator"
is a contiguous n-gram of value tuples.  Two quality gates control mining:

* ``min_support`` — minimum number of training sequences containing the
  n-gram,
* ``min_precision`` — minimum empirical precision P(class | n-gram seen).

``min_precision`` doubles as the earliness/accuracy trade-off hyperparameter:
strict indicators fire later but more reliably.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.common import EarlyClassifier, tangles_to_sequences
from repro.core.model import PredictionRecord
from repro.data.items import KeyValueSequence, TangledSequence, ValueSpec

NGram = Tuple[Tuple[int, ...], ...]


@dataclass
class IndicatorConfig:
    """Hyperparameters of the indicator miner."""

    #: n-gram lengths to mine.
    ngram_lengths: Tuple[int, ...] = (1, 2, 3)
    #: minimum number of training sequences an n-gram must appear in.
    min_support: int = 3
    #: minimum class precision required to accept an n-gram as an indicator.
    min_precision: float = 0.8
    #: cap on the number of indicators kept per class (highest precision first).
    max_indicators_per_class: int = 50

    def __post_init__(self) -> None:
        if not self.ngram_lengths or any(length <= 0 for length in self.ngram_lengths):
            raise ValueError("ngram_lengths must be positive integers")
        if self.min_support < 1:
            raise ValueError("min_support must be at least 1")
        if not 0.0 < self.min_precision <= 1.0:
            raise ValueError("min_precision must be in (0, 1]")
        if self.max_indicators_per_class < 1:
            raise ValueError("max_indicators_per_class must be at least 1")


@dataclass
class Indicator:
    """One mined discriminative n-gram."""

    ngram: NGram
    label: int
    precision: float
    support: int


class IndicatorClassifier(EarlyClassifier):
    """Feature-based early classifier built on mined discriminative n-grams."""

    name = "Indicator"

    def __init__(
        self,
        spec: ValueSpec,
        num_classes: int,
        config: Optional[IndicatorConfig] = None,
    ) -> None:
        if num_classes < 2:
            raise ValueError("need at least two classes")
        self.spec = spec
        self.num_classes = num_classes
        self.config = config or IndicatorConfig()
        self.indicators: Dict[NGram, Indicator] = {}
        self._majority_class = 0
        self._fitted = False

    # ------------------------------------------------------------------ #
    # mining
    # ------------------------------------------------------------------ #
    @staticmethod
    def _sequence_ngrams(sequence: KeyValueSequence, length: int) -> List[NGram]:
        values = [item.value for item in sequence.items]
        if len(values) < length:
            return []
        return [tuple(values[start : start + length]) for start in range(len(values) - length + 1)]

    def fit(self, train_tangles: Sequence[TangledSequence], verbose: bool = False) -> "IndicatorClassifier":
        sequences = tangles_to_sequences(train_tangles)
        if not sequences:
            raise ValueError("cannot fit on an empty training set")
        label_counts = Counter(int(sequence.label) for sequence in sequences)
        self._majority_class = label_counts.most_common(1)[0][0]

        #: n-gram -> per-class count of sequences containing it (set semantics)
        containment: Dict[NGram, Counter] = defaultdict(Counter)
        for sequence in sequences:
            label = int(sequence.label)
            seen: set = set()
            for length in self.config.ngram_lengths:
                seen.update(self._sequence_ngrams(sequence, length))
            for ngram in seen:
                containment[ngram][label] += 1

        candidates: Dict[int, List[Indicator]] = defaultdict(list)
        for ngram, per_class in containment.items():
            support = sum(per_class.values())
            if support < self.config.min_support:
                continue
            label, count = per_class.most_common(1)[0]
            precision = count / support
            if precision < self.config.min_precision:
                continue
            candidates[label].append(
                Indicator(ngram=ngram, label=label, precision=precision, support=support)
            )

        self.indicators = {}
        for label, indicator_list in candidates.items():
            indicator_list.sort(key=lambda ind: (ind.precision, ind.support), reverse=True)
            for indicator in indicator_list[: self.config.max_indicators_per_class]:
                self.indicators[indicator.ngram] = indicator
        self._fitted = True
        if verbose:
            print(f"[{self.name}] mined {len(self.indicators)} indicators")
        return self

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #
    def _match_at(self, values: List[Tuple[int, ...]], end: int) -> Optional[Indicator]:
        """Return the best indicator whose n-gram ends exactly at item ``end-1``."""
        best: Optional[Indicator] = None
        for length in self.config.ngram_lengths:
            if end < length:
                continue
            ngram = tuple(values[end - length : end])
            indicator = self.indicators.get(ngram)
            if indicator and (best is None or indicator.precision > best.precision):
                best = indicator
        return best

    def predict_tangle(self, tangle: TangledSequence) -> List[PredictionRecord]:
        if not self._fitted:
            raise RuntimeError(f"{self.name} must be fitted before prediction")
        records: List[PredictionRecord] = []
        for key, sequence in tangle.per_key_sequences().items():
            label = int(tangle.label_of(key))
            records.append(self._predict_sequence(key, sequence, label))
        return records

    def _predict_sequence(self, key, sequence: KeyValueSequence, label: int) -> PredictionRecord:
        values = [item.value for item in sequence.items]
        length = len(values)
        for end in range(1, length + 1):
            indicator = self._match_at(values, end)
            if indicator is not None:
                return PredictionRecord(
                    key=key,
                    predicted=indicator.label,
                    label=label,
                    halt_observation=end,
                    sequence_length=length,
                    confidence=indicator.precision,
                    halted_by_policy=end < length,
                )
        # No indicator ever fired: fall back to the training majority class.
        return PredictionRecord(
            key=key,
            predicted=self._majority_class,
            label=label,
            halt_observation=length,
            sequence_length=length,
            confidence=0.0,
            halted_by_policy=False,
        )
