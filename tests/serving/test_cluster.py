"""Lockstep parity and behaviour suite for the sharded serving cluster.

The contract under test: a :class:`ServingCluster` — any shard count, with or
without cross-stream batched encoding — must produce decision-for-decision
identical output to one sequential :class:`OnlineClassificationEngine` per
stream, including window evictions, mid-stream drains, idle expiry, flush and
snapshot/restore round trips.  On top of parity, the suite covers the
cluster-only machinery: hash routing, bounded-queue admission control
(drain / reject / shed) and the batching counters.
"""

import numpy as np
import pytest

from repro.core.config import KVECConfig
from repro.core.embeddings import stable_key_slot
from repro.core.model import KVEC
from repro.data.items import Item, ValueSpec
from repro.data.stream import StreamEvent
from repro.serving.cluster import (
    ClusterConfig,
    ServingCluster,
    ShardOverloadError,
)
from repro.serving.engine import EngineConfig, OnlineClassificationEngine, StreamSession
from repro.serving.sinks import BufferedSink
from repro.serving.transport import shm_available

SPEC = ValueSpec(field_names=("size", "direction"), cardinalities=(8, 2), session_field=1)

TOLERANCE = 1e-9

ENCODINGS = ("absolute", "rotary")


def make_model(encoding: str = "rotary", seed: int = 3) -> KVEC:
    config = KVECConfig(
        d_model=12,
        num_blocks=2,
        num_heads=2,
        ffn_hidden=20,
        d_state=16,
        dropout=0.0,
        encoding=encoding,
        seed=seed,
    )
    return KVEC(SPEC, num_classes=3, config=config)


def multi_stream_events(seed: int, num_events: int = 300, num_streams: int = 6, num_keys: int = 4):
    """A random source-tagged multi-stream event sequence."""
    rng = np.random.default_rng(seed)
    streams = [f"stream-{i}" for i in range(num_streams)]
    events = []
    clock = 0.0
    for _ in range(num_events):
        clock += 1.0
        stream_id = streams[int(rng.integers(num_streams))]
        item = Item(
            f"k{rng.integers(num_keys)}",
            (int(rng.integers(8)), int(rng.integers(2))),
            clock,
        )
        events.append(StreamEvent(time=clock, item=item, source=stream_id))
    return streams, events


def engine_config(**overrides) -> EngineConfig:
    kwargs = dict(window_items=7, halt_threshold=0.5, reencode_every=2)
    kwargs.update(overrides)
    return EngineConfig(**kwargs)


def reference_decisions(model, streams, events, expire_positions=(), **overrides):
    """Per-stream ordered decision lists from one sequential engine each."""
    engines = {
        stream_id: OnlineClassificationEngine(model, SPEC, engine_config(**overrides))
        for stream_id in streams
    }
    ordered = {stream_id: [] for stream_id in streams}
    for position, event in enumerate(events):
        ordered[event.source].extend(engines[event.source].offer(event))
        if position in expire_positions:
            for stream_id, engine in engines.items():
                ordered[stream_id].extend(engine.expire())
    for stream_id, engine in engines.items():
        ordered[stream_id].extend(engine.flush())
    return engines, ordered


def by_stream(stream_decisions, streams):
    grouped = {stream_id: [] for stream_id in streams}
    for stream_decision in stream_decisions:
        grouped[stream_decision.stream_id].append(stream_decision.decision)
    return grouped


def assert_stream_parity(actual, expected):
    """Per-stream decision sequences must match the sequential reference."""
    assert set(actual) == set(expected)
    for stream_id, reference in expected.items():
        got = actual[stream_id]
        assert [d.key for d in got] == [d.key for d in reference], stream_id
        for mine, ref in zip(got, reference):
            assert mine.predicted == ref.predicted, (stream_id, mine.key)
            assert mine.confidence == pytest.approx(ref.confidence, abs=TOLERANCE)
            assert mine.observations == ref.observations, (stream_id, mine.key)
            assert mine.decision_time == ref.decision_time, (stream_id, mine.key)
            assert mine.halted_by_policy == ref.halted_by_policy, (stream_id, mine.key)
            assert mine.window_truncated == ref.window_truncated, (stream_id, mine.key)


class TestClusterParity:
    """Cluster output == one sequential single-stream engine per stream."""

    @pytest.mark.parametrize("encoding", ENCODINGS)
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_batched_parity_with_evictions_and_flush(self, encoding, num_shards):
        model = make_model(encoding)
        streams, events = multi_stream_events(seed=42)
        _, expected = reference_decisions(model, streams, events)

        cluster = ServingCluster(
            model,
            SPEC,
            ClusterConfig(
                num_shards=num_shards,
                batch_size=4,
                batched=True,
                engine=engine_config(),
            ),
        )
        emitted = cluster.consume(events)
        emitted.extend(cluster.flush())
        assert_stream_parity(by_stream(emitted, streams), expected)
        # The tiny window guarantees the parity run actually covered
        # evictions (and, for rotary, the zero-rebuild ring).
        evicted = [session.window.evicted for _, session in cluster.sessions()]
        assert sum(evicted) > 0
        if encoding == "rotary":
            assert all(
                session._incremental.rebuilds == 0 for _, session in cluster.sessions()
            )

    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_serial_encoding_parity(self, encoding):
        """batched=False must serve identically (it forfeits BLAS only)."""
        model = make_model(encoding)
        streams, events = multi_stream_events(seed=7)
        _, expected = reference_decisions(model, streams, events)
        cluster = ServingCluster(
            model,
            SPEC,
            ClusterConfig(num_shards=2, batch_size=4, batched=False, engine=engine_config()),
        )
        emitted = cluster.consume(events)
        emitted.extend(cluster.flush())
        assert_stream_parity(by_stream(emitted, streams), expected)
        assert cluster.stats()["batch_rounds"] == 0

    def test_mid_stream_drain_matches_reference_prefix(self):
        """After an explicit drain the per-session decisions equal the
        reference decisions at the same stream positions."""
        model = make_model("rotary")
        streams, events = multi_stream_events(seed=11, num_events=200)
        cut = 120
        engines = {
            stream_id: OnlineClassificationEngine(model, SPEC, engine_config())
            for stream_id in streams
        }
        for event in events[:cut]:
            engines[event.source].offer(event)

        cluster = ServingCluster(
            model,
            SPEC,
            ClusterConfig(num_shards=2, batch_size=8, engine=engine_config()),
        )
        cluster.consume(events[:cut])
        cluster.drain()
        for stream_id in streams:
            session = cluster.session(stream_id)
            reference = engines[stream_id]
            got = {} if session is None else session.decisions
            assert set(got) == set(reference.decisions), stream_id
            for key, decision in reference.decisions.items():
                assert got[key].predicted == decision.predicted

    def test_expire_parity_with_idle_timeout(self):
        """cluster.expire() (drain + per-session expiry) matches engines."""
        model = make_model("rotary")
        rng = np.random.default_rng(5)
        streams = [f"stream-{i}" for i in range(4)]
        events = []
        clock = 0.0
        for _ in range(160):
            clock += float(rng.integers(1, 8)) if rng.random() < 0.2 else 1.0
            stream_id = streams[int(rng.integers(len(streams)))]
            item = Item(
                f"k{rng.integers(3)}", (int(rng.integers(8)), int(rng.integers(2))), clock
            )
            events.append(StreamEvent(time=clock, item=item, source=stream_id))
        expire_positions = {40, 90, 130}
        overrides = dict(idle_timeout=6.0)
        _, expected = reference_decisions(
            model, streams, events, expire_positions=expire_positions, **overrides
        )
        cluster = ServingCluster(
            model,
            SPEC,
            ClusterConfig(num_shards=2, batch_size=4, engine=engine_config(**overrides)),
        )
        emitted = []
        for position, event in enumerate(events):
            emitted.extend(cluster.submit(event))
            if position in expire_positions:
                emitted.extend(cluster.expire())
        emitted.extend(cluster.flush())
        assert_stream_parity(by_stream(emitted, streams), expected)


class TestSnapshotRestore:
    def test_restore_replays_identically(self):
        model = make_model("rotary")
        streams, events = multi_stream_events(seed=23, num_events=240)
        cut = 140
        cluster = ServingCluster(
            model,
            SPEC,
            ClusterConfig(num_shards=2, batch_size=4, engine=engine_config()),
        )
        cluster.consume(events[:cut])
        snapshot = cluster.snapshot()

        first = cluster.consume(events[cut:])
        first.extend(cluster.flush())

        cluster.restore(snapshot)
        second = cluster.consume(events[cut:])
        second.extend(cluster.flush())

        assert [(d.stream_id, d.decision.key) for d in first] == [
            (d.stream_id, d.decision.key) for d in second
        ]
        for a, b in zip(first, second):
            assert a.decision.predicted == b.decision.predicted
            assert a.decision.confidence == b.decision.confidence
            assert a.decision.observations == b.decision.observations

    def test_snapshot_does_not_disturb_serving(self):
        model = make_model("absolute")
        streams, events = multi_stream_events(seed=29, num_events=160)

        def serve(with_snapshot):
            cluster = ServingCluster(
                model, SPEC, ClusterConfig(num_shards=2, batch_size=4, engine=engine_config())
            )
            emitted = []
            for position, event in enumerate(events):
                emitted.extend(cluster.submit(event))
                if with_snapshot and position == 80:
                    cluster.snapshot()
            emitted.extend(cluster.flush())
            return [(d.stream_id, d.decision.key, d.decision.predicted) for d in emitted]

        assert serve(False) == serve(True)

    def test_snapshot_reusable_twice(self):
        model = make_model("rotary")
        streams, events = multi_stream_events(seed=31, num_events=120)
        cluster = ServingCluster(
            model, SPEC, ClusterConfig(num_shards=2, engine=engine_config())
        )
        cluster.consume(events[:60])
        snapshot = cluster.snapshot()
        results = []
        for _ in range(2):
            cluster.restore(snapshot)
            emitted = cluster.consume(events[60:])
            emitted.extend(cluster.flush())
            results.append([(d.stream_id, d.decision.key) for d in emitted])
        assert results[0] == results[1]

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_pickled_snapshot_restore_shares_live_weights(self, executor):
        """restore() after a pickle round-trip (serialized failover) must
        re-attach the cluster's live model/spec/config to every session —
        pickle severs the deepcopy memo sharing, and without the re-attach
        each session would own a private weight copy — and the replay must
        be bytes-identical to restoring the in-memory snapshot."""
        import pickle

        model = make_model("rotary")
        streams, events = multi_stream_events(seed=47, num_events=200)
        cut = 120
        with ServingCluster(
            model,
            SPEC,
            executor_config(
                executor, num_shards=2, batch_size=4, engine=engine_config()
            ),
        ) as cluster:
            cluster.consume(events[:cut])
            snapshot = cluster.snapshot()
            wire_snapshot = pickle.loads(pickle.dumps(snapshot))

            cluster.restore(snapshot)
            first = cluster.consume(events[cut:])
            first.extend(cluster.flush())

            cluster.restore(wire_snapshot)
            # every restored session shares the cluster's live objects
            count = 0
            for _, session in cluster.sessions():
                count += 1
                assert session.model is cluster.model
                assert session.spec is cluster.spec
                assert session.config is cluster.config.engine
                if session._incremental is not None:
                    assert session._incremental.model is cluster.model
            assert count > 0

            second = cluster.consume(events[cut:])
            second.extend(cluster.flush())

        def decision_bytes(emitted):
            return pickle.dumps(
                [
                    (d.stream_id, d.shard_id, d.decision.key,
                     d.decision.predicted, d.decision.confidence,
                     d.decision.observations, d.decision.decision_time,
                     d.decision.halted_by_policy)
                    for d in emitted
                ]
            )

        assert decision_bytes(first) == decision_bytes(second)

    def test_restore_rejects_shard_mismatch(self):
        model = make_model("rotary")
        cluster2 = ServingCluster(model, SPEC, ClusterConfig(num_shards=2))
        cluster4 = ServingCluster(model, SPEC, ClusterConfig(num_shards=4))
        with pytest.raises(ValueError, match="shards"):
            cluster4.restore(cluster2.snapshot())


class TestAdmissionControl:
    def _event(self, position):
        return StreamEvent(
            time=float(position),
            item=Item(f"k{position % 3}", (position % 8, position % 2), float(position)),
            source=f"stream-{position % 5}",
        )

    def test_reject_policy_raises_when_full(self):
        cluster = ServingCluster(
            make_model("rotary"),
            SPEC,
            ClusterConfig(
                num_shards=1, max_queue=3, overflow="reject", auto_drain=False
            ),
        )
        for position in range(3):
            cluster.submit(self._event(position))
        with pytest.raises(ShardOverloadError):
            cluster.submit(self._event(3))
        assert cluster.stats()["rejected"] == 1

    def test_shed_policy_drops_newest(self):
        cluster = ServingCluster(
            make_model("rotary"),
            SPEC,
            ClusterConfig(num_shards=1, max_queue=3, overflow="shed", auto_drain=False),
        )
        for position in range(10):
            cluster.submit(self._event(position))
        stats = cluster.stats()
        assert stats["shed"] == 7
        assert stats["queue_depths"] == [3]
        cluster.drain()
        assert cluster.stats()["drained"] == 3

    def test_drain_policy_applies_backpressure(self):
        cluster = ServingCluster(
            make_model("rotary"),
            SPEC,
            ClusterConfig(
                num_shards=1,
                max_queue=3,
                batch_size=2,
                overflow="drain",
                auto_drain=False,
            ),
        )
        for position in range(12):
            cluster.submit(self._event(position))
        stats = cluster.stats()
        assert stats["shed"] == 0 and stats["rejected"] == 0
        assert stats["queue_depths"][0] <= 3
        cluster.drain()
        assert cluster.stats()["drained"] == 12

    def test_auto_drain_keeps_queues_below_batch_size(self):
        cluster = ServingCluster(
            make_model("rotary"),
            SPEC,
            ClusterConfig(num_shards=2, batch_size=4, engine=engine_config()),
        )
        streams, events = multi_stream_events(seed=3, num_events=100)
        for event in events:
            cluster.submit(event)
            assert all(depth < 4 for depth in cluster.stats()["queue_depths"])


#: Parity-matrix executor labels.  ``process-pipe`` / ``process-shm`` pin the
#: process backend's round transport so both wire formats earn the same
#: decision-for-decision guarantees.
PARALLEL_EXECUTORS = ("thread", "process-pipe", "process-shm")


def executor_config(label, **kwargs):
    """Build a :class:`ClusterConfig` from a parity-matrix executor label."""
    executor, _, transport = label.partition("-")
    if transport:
        kwargs["transport"] = transport
    return ClusterConfig(executor=executor, **kwargs)


class TestParallelExecutorParity:
    """The thread and process worker backends must be indistinguishable,
    decision for decision, from the serial backend — and all must match one
    sequential engine per stream (the ``executor="thread"`` /
    ``executor="process"`` axes of the parity matrix, the latter under both
    round transports)."""

    @pytest.mark.parametrize("executor", PARALLEL_EXECUTORS)
    @pytest.mark.parametrize("encoding", ENCODINGS)
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_parallel_backend_matches_reference_with_evictions(
        self, executor, encoding, num_shards
    ):
        model = make_model(encoding)
        streams, events = multi_stream_events(seed=42)
        _, expected = reference_decisions(model, streams, events)
        with ServingCluster(
            model,
            SPEC,
            executor_config(
                executor,
                num_shards=num_shards,
                batch_size=4,
                batched=True,
                engine=engine_config(),
            ),
        ) as cluster:
            emitted = cluster.consume(events)
            emitted.extend(cluster.flush())
        assert_stream_parity(by_stream(emitted, streams), expected)

    @pytest.mark.parametrize("executor", PARALLEL_EXECUTORS)
    @pytest.mark.parametrize("encoding", ENCODINGS)
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_parallel_backend_is_list_identical_to_serial(
        self, executor, encoding, num_shards
    ):
        """Same fixed round width => the emitted StreamDecision sequence is
        bit-identical across backends, global interleaving included (the
        stable shard-index / round / intra-round merge order)."""
        model = make_model(encoding)
        streams, events = multi_stream_events(seed=19)

        def serve(executor):
            config = executor_config(
                executor,
                num_shards=num_shards,
                batch_size=4,
                auto_drain=False,
                max_queue=len(events) + 1,
                engine=engine_config(),
            )
            with ServingCluster(model, SPEC, config) as cluster:
                for event in events:
                    cluster.submit(event)
                emitted = cluster.drain()
                emitted.extend(cluster.expire())
                emitted.extend(cluster.flush())
            return [
                (d.stream_id, d.shard_id, d.decision.key, d.decision.predicted,
                 d.decision.confidence, d.decision.observations,
                 d.decision.decision_time, d.decision.halted_by_policy)
                for d in emitted
            ]

        assert serve("serial") == serve(executor)

    @pytest.mark.skipif(
        not shm_available(), reason="shared memory unavailable on this platform"
    )
    def test_shm_ring_overflow_falls_back_to_pipe_with_identical_decisions(self):
        """A ring too small for any real round forces every payload onto the
        pickle-over-pipe fallback path; decisions stay bit-identical to the
        pipe leg and the configured transport is still reported as ``shm``."""
        model = make_model("rotary")
        streams, events = multi_stream_events(seed=19)

        def serve(config):
            with ServingCluster(model, SPEC, config) as cluster:
                for event in events:
                    cluster.submit(event)
                emitted = cluster.drain()
                emitted.extend(cluster.expire())
                emitted.extend(cluster.flush())
                stats = cluster.stats()
            return stats, [
                (d.stream_id, d.shard_id, d.decision.key, d.decision.predicted,
                 d.decision.confidence, d.decision.observations,
                 d.decision.decision_time, d.decision.halted_by_policy)
                for d in emitted
            ]

        common = dict(
            executor="process",
            num_shards=2,
            batch_size=4,
            auto_drain=False,
            max_queue=len(events) + 1,
            engine=engine_config(),
        )
        tiny_stats, tiny_decisions = serve(
            ClusterConfig(transport="shm", transport_ring_bytes=96, **common)
        )
        _, pipe_decisions = serve(ClusterConfig(transport="pipe", **common))
        assert tiny_stats["transport"] == "shm"
        assert tiny_decisions == pipe_decisions

    @pytest.mark.parametrize("executor", PARALLEL_EXECUTORS)
    def test_parallel_backend_expire_parity(self, executor):
        model = make_model("rotary")
        rng = np.random.default_rng(5)
        streams = [f"stream-{i}" for i in range(4)]
        events = []
        clock = 0.0
        for _ in range(160):
            clock += float(rng.integers(1, 8)) if rng.random() < 0.2 else 1.0
            stream_id = streams[int(rng.integers(len(streams)))]
            item = Item(
                f"k{rng.integers(3)}", (int(rng.integers(8)), int(rng.integers(2))), clock
            )
            events.append(StreamEvent(time=clock, item=item, source=stream_id))
        expire_positions = {40, 90, 130}
        overrides = dict(idle_timeout=6.0)
        _, expected = reference_decisions(
            model, streams, events, expire_positions=expire_positions, **overrides
        )
        with ServingCluster(
            model,
            SPEC,
            executor_config(
                executor,
                num_shards=2,
                batch_size=4,
                engine=engine_config(**overrides),
            ),
        ) as cluster:
            emitted = []
            for position, event in enumerate(events):
                emitted.extend(cluster.submit(event))
                if position in expire_positions:
                    emitted.extend(cluster.expire())
            emitted.extend(cluster.flush())
        assert_stream_parity(by_stream(emitted, streams), expected)

    @pytest.mark.parametrize("executor", PARALLEL_EXECUTORS)
    def test_parallel_backend_snapshot_restore_replays_identically(self, executor):
        model = make_model("rotary")
        streams, events = multi_stream_events(seed=23, num_events=240)
        cut = 140
        with ServingCluster(
            model,
            SPEC,
            executor_config(
                executor, num_shards=2, batch_size=4, engine=engine_config()
            ),
        ) as cluster:
            cluster.consume(events[:cut])
            snapshot = cluster.snapshot()
            first = cluster.consume(events[cut:])
            first.extend(cluster.flush())
            cluster.restore(snapshot)
            second = cluster.consume(events[cut:])
            second.extend(cluster.flush())
        assert [(d.stream_id, d.decision.key, d.decision.confidence) for d in first] == [
            (d.stream_id, d.decision.key, d.decision.confidence) for d in second
        ]

    @pytest.mark.parametrize("executor", PARALLEL_EXECUTORS)
    def test_cluster_close_is_idempotent_and_context_managed(self, executor):
        model = make_model("rotary")
        cluster = ServingCluster(
            model, SPEC, executor_config(executor, num_shards=2)
        )
        cluster.close()
        cluster.close()
        with ServingCluster(
            model, SPEC, executor_config(executor, num_shards=2)
        ) as managed:
            assert managed.stats()["executor"] == executor.partition("-")[0]

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="executor"):
            ClusterConfig(executor="fiber")


class TestAdaptiveBatchingParity:
    """``batch_size="auto"`` never changes any stream's decision sequence —
    the controller only re-schedules rounds (the ``batch_size="auto"`` axis
    of the parity matrix)."""

    @pytest.mark.parametrize("encoding", ENCODINGS)
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    @pytest.mark.parametrize(
        "executor", ["serial", "thread", "process-pipe", "process-shm"]
    )
    def test_auto_batch_matches_reference(self, encoding, num_shards, executor):
        model = make_model(encoding)
        streams, events = multi_stream_events(seed=42)
        _, expected = reference_decisions(model, streams, events)
        with ServingCluster(
            model,
            SPEC,
            executor_config(
                executor,
                num_shards=num_shards,
                batch_size="auto",
                auto_drain=False,
                max_queue=len(events) + 1,
                engine=engine_config(),
            ),
        ) as cluster:
            emitted = []
            for position, event in enumerate(events):
                emitted.extend(cluster.submit(event))
                if position % 25 == 24:  # scheduled drains let backlogs form
                    emitted.extend(cluster.drain())
            emitted.extend(cluster.flush())
        assert_stream_parity(by_stream(emitted, streams), expected)

    def test_auto_batch_expire_and_drain_pattern_parity(self):
        """Backlogged drain scheduling (the pattern that actually exercises
        wide adaptive rounds) with interleaved expiry, against the
        sequential reference."""
        model = make_model("rotary")
        streams, events = multi_stream_events(seed=61, num_events=240)
        expire_positions = {80, 160}
        overrides = dict(idle_timeout=6.0)
        _, expected = reference_decisions(
            model, streams, events, expire_positions=expire_positions, **overrides
        )
        with ServingCluster(
            model,
            SPEC,
            ClusterConfig(
                num_shards=2,
                batch_size="auto",
                auto_drain=False,
                max_queue=len(events) + 1,
                executor="thread",
                engine=engine_config(**overrides),
            ),
        ) as cluster:
            emitted = []
            for position, event in enumerate(events):
                emitted.extend(cluster.submit(event))
                if position in expire_positions:
                    emitted.extend(cluster.expire())
                elif position % 40 == 39:
                    emitted.extend(cluster.drain())
            emitted.extend(cluster.flush())
        assert_stream_parity(by_stream(emitted, streams), expected)

    def test_auto_batch_snapshot_restore_replays_per_stream(self):
        """Replays after a restore serve identical per-stream decisions;
        global interleaving may differ because adaptive widths are
        wall-clock-driven (controller state intentionally resets)."""
        model = make_model("rotary")
        streams, events = multi_stream_events(seed=31, num_events=160)
        with ServingCluster(
            model,
            SPEC,
            ClusterConfig(
                num_shards=2,
                batch_size="auto",
                auto_drain=False,
                max_queue=len(events) + 1,
                engine=engine_config(),
            ),
        ) as cluster:
            cluster.consume(events[:80])
            cluster.drain()
            snapshot = cluster.snapshot()
            runs = []
            for _ in range(2):
                cluster.restore(snapshot)
                emitted = cluster.consume(events[80:])
                emitted.extend(cluster.drain())
                emitted.extend(cluster.flush())
                runs.append(by_stream(emitted, streams))
        for stream_id in streams:
            first = [(d.key, d.predicted, d.confidence) for d in runs[0][stream_id]]
            second = [(d.key, d.predicted, d.confidence) for d in runs[1][stream_id]]
            assert first == second, stream_id

    def test_hot_shard_widens_while_cold_shard_stays_narrow(self):
        """Under a backlogged Zipf-skewed queue the hot shard's controller
        must have chosen wider rounds than an idle shard's (which stays at
        the width floor)."""
        model = make_model("rotary")
        rng = np.random.default_rng(3)
        events = []
        clock = 0.0
        for position in range(300):
            clock += 1.0
            # ~90% of traffic on 8 hot streams, the rest on 16 cold ones.
            if rng.random() < 0.9:
                stream_id = f"hot-{rng.integers(8)}"
            else:
                stream_id = f"cold-{rng.integers(16)}"
            item = Item(
                f"k{rng.integers(4)}", (int(rng.integers(8)), int(rng.integers(2))), clock
            )
            events.append(StreamEvent(time=clock, item=item, source=stream_id))
        with ServingCluster(
            model,
            SPEC,
            ClusterConfig(
                num_shards=4,
                batch_size="auto",
                auto_drain=False,
                max_queue=len(events) + 1,
                engine=engine_config(),
            ),
        ) as cluster:
            for event in events:
                cluster.submit(event)
            backlogs = [shard.queue_depth for shard in cluster.shards]
            cluster.drain()
            observed_rounds = [
                shard.controller.rounds_observed for shard in cluster.shards
            ]
        # wide rounds actually happened on the loaded shards: mean round
        # width above the floor of 1 requires the controller to have widened.
        hot = max(range(4), key=lambda index: backlogs[index])
        assert cluster.shards[hot].monitor.rounds > 0
        hot_mean_width = cluster.shards[hot].monitor.rows / max(
            1, cluster.shards[hot].monitor.rounds
        )
        assert hot_mean_width > 1.5
        # a shard that saw no traffic at all never leaves the width floor
        for index, rounds in enumerate(observed_rounds):
            if rounds == 0:
                assert cluster.shards[index].controller.width == 1

    def test_rejects_invalid_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            ClusterConfig(batch_size="adaptive")
        with pytest.raises(ValueError, match="batch_size"):
            ClusterConfig(batch_size=0)

    def test_rejects_auto_batch_with_auto_drain(self):
        """Synchronous auto-drain never lets a backlog form, pinning the
        controller at its width floor — per-arrival serving that is strictly
        worse than the fixed default.  Fail at construction instead of
        degrading silently."""
        with pytest.raises(ValueError, match="auto_drain=False"):
            ClusterConfig(batch_size="auto")
        # the drain-scheduling combination is the supported one
        config = ClusterConfig(batch_size="auto", auto_drain=False)
        assert config.adaptive_batching


class TestRoutingAndBatching:
    def test_routing_is_stable_and_deterministic(self):
        cluster = ServingCluster(make_model("rotary"), SPEC, ClusterConfig(num_shards=4))
        for stream_id in (f"stream-{i}" for i in range(20)):
            expected = stable_key_slot(stream_id, 4)
            assert cluster.shard_index(stream_id) == expected
            assert cluster.shard_of(stream_id) is cluster.shards[expected]

    def test_sessions_live_on_their_routed_shard(self):
        cluster = ServingCluster(
            make_model("rotary"), SPEC, ClusterConfig(num_shards=4, engine=engine_config())
        )
        streams, events = multi_stream_events(seed=13, num_events=80)
        cluster.consume(events)
        cluster.drain()
        for stream_id, _ in cluster.sessions():
            shard = cluster.shard_of(stream_id)
            assert stream_id in shard.sessions

    def test_batching_counters_track_cross_stream_rounds(self):
        streams, events = multi_stream_events(seed=17, num_events=200)
        batched = ServingCluster(
            make_model("rotary"),
            SPEC,
            ClusterConfig(num_shards=1, batch_size=4, batched=True, engine=engine_config()),
        )
        batched.consume(events)
        batched.flush()
        stats = batched.stats()
        assert stats["batch_rounds"] > 0
        assert stats["batched_rows"] >= 2 * stats["batch_rounds"]
        assert stats["drained"] == len(events)

    def test_engine_facade_is_a_stream_session(self):
        engine = OnlineClassificationEngine(make_model("rotary"), SPEC, engine_config())
        assert isinstance(engine, StreamSession)

    def test_hot_stream_backlog_drains_in_fifo_parity(self):
        """A queue dominated by one hot stream (only one arrival of it can
        encode per round) must still drain every arrival in per-stream FIFO
        order and match the sequential reference engines."""
        model = make_model("rotary")
        rng = np.random.default_rng(37)
        events = []
        clock = 0.0
        for position in range(120):
            clock += 1.0
            # ~80% of traffic on the hot stream, the rest on three cold ones.
            stream_id = "hot" if rng.random() < 0.8 else f"cold-{rng.integers(3)}"
            item = Item(
                f"k{rng.integers(3)}", (int(rng.integers(8)), int(rng.integers(2))), clock
            )
            events.append(StreamEvent(time=clock, item=item, source=stream_id))
        streams = sorted({event.source for event in events})
        _, expected = reference_decisions(model, streams, events)

        cluster = ServingCluster(
            model,
            SPEC,
            ClusterConfig(
                num_shards=1,
                batch_size=4,
                max_queue=500,
                auto_drain=False,
                engine=engine_config(),
            ),
        )
        for event in events:
            cluster.submit(event)
        emitted = cluster.drain()
        emitted.extend(cluster.flush())
        assert_stream_parity(by_stream(emitted, streams), expected)
        assert cluster.stats()["drained"] == len(events)


class TestSinkDeliveryParity:
    """Push delivery is decision-for-decision and order-identical to the
    returned-list API: across executors, shard counts and batch policies a
    subscribed sink receives exactly the concatenation of every returned
    list, same objects, same order (the sink leg of the parity matrix)."""

    @pytest.mark.parametrize(
        "executor", ["serial", "thread", "process-pipe", "process-shm"]
    )
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_sink_matches_returned_lists_fixed_batch(self, executor, num_shards):
        model = make_model("rotary")
        streams, events = multi_stream_events(seed=42)
        with ServingCluster(
            model,
            SPEC,
            executor_config(
                executor,
                num_shards=num_shards,
                batch_size=4,
                engine=engine_config(),
            ),
        ) as cluster:
            sink = cluster.subscribe(BufferedSink())
            returned = []
            for event in events:
                returned.extend(cluster.submit(event))
            returned.extend(cluster.drain())
            returned.extend(cluster.expire())
            returned.extend(cluster.flush())
            delivered = sink.take()
        assert delivered == returned

    @pytest.mark.parametrize(
        "executor", ["serial", "thread", "process-pipe", "process-shm"]
    )
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_sink_matches_returned_lists_auto_batch(self, executor, num_shards):
        model = make_model("rotary")
        streams, events = multi_stream_events(seed=19)
        with ServingCluster(
            model,
            SPEC,
            executor_config(
                executor,
                num_shards=num_shards,
                batch_size="auto",
                auto_drain=False,
                max_queue=len(events) + 1,
                engine=engine_config(),
            ),
        ) as cluster:
            sink = cluster.subscribe(BufferedSink())
            returned = []
            for position, event in enumerate(events):
                returned.extend(cluster.submit(event))
                if position % 25 == 24:
                    returned.extend(cluster.drain())
            returned.extend(cluster.flush())
            delivered = sink.take()
        assert delivered == returned

    def test_sink_delivery_is_backend_deterministic(self):
        """The delivered sequence (not just the returned one) is identical
        across serial and thread executors for fixed-width rounds."""
        model = make_model("absolute")
        streams, events = multi_stream_events(seed=23)

        def serve(executor):
            with ServingCluster(
                model,
                SPEC,
                ClusterConfig(
                    num_shards=2,
                    batch_size=4,
                    auto_drain=False,
                    max_queue=len(events) + 1,
                    executor=executor,
                    engine=engine_config(),
                ),
            ) as cluster:
                sink = cluster.subscribe(BufferedSink())
                for event in events:
                    cluster.submit(event)
                cluster.drain()
                cluster.flush()
                return [
                    (d.stream_id, d.shard_id, d.decision.key, d.decision.predicted)
                    for d in sink.take()
                ]

        assert serve("serial") == serve("thread")

    @pytest.mark.stress
    @pytest.mark.parametrize(
        "executor", ["serial", "thread", "process-pipe", "process-shm"]
    )
    @pytest.mark.parametrize("seed", range(8))
    def test_sink_vs_returned_list_fuzz(self, seed, executor):
        """Weekly randomized sweep: any mix of submits, drains, expiries and
        flushes over a random cluster shape must deliver, through the sink,
        exactly the concatenated returned lists."""
        rng = np.random.default_rng(4000 + seed)
        model = make_model(
            str(rng.choice(ENCODINGS)), seed=int(rng.integers(100))
        )
        streams, events = multi_stream_events(
            seed=5000 + seed,
            num_events=int(rng.integers(120, 320)),
            num_streams=int(rng.integers(2, 8)),
            num_keys=int(rng.integers(2, 6)),
        )
        adaptive = bool(rng.random() < 0.5)
        overrides = dict(
            window_items=int(rng.integers(4, 12)),
            reencode_every=int(rng.integers(1, 4)),
            idle_timeout=float(rng.choice([0.0, 5.0])),
        )
        config = executor_config(
            executor,
            num_shards=int(rng.choice([1, 2, 4])),
            batch_size="auto" if adaptive else int(rng.integers(1, 9)),
            auto_drain=False if adaptive else bool(rng.random() < 0.7),
            max_queue=len(events) + 1,
            batched=bool(rng.random() < 0.8),
            engine=engine_config(**overrides),
        )
        drain_every = int(rng.integers(10, 60))
        with ServingCluster(model, SPEC, config) as cluster:
            sink = cluster.subscribe(BufferedSink())
            returned = []
            for position, event in enumerate(events):
                returned.extend(cluster.submit(event))
                if position % drain_every == drain_every - 1:
                    if rng.random() < 0.3:
                        returned.extend(cluster.expire())
                    else:
                        returned.extend(cluster.drain())
            returned.extend(cluster.flush())
            delivered = sink.take()
        assert delivered == returned


class TestClusterLockstepStress:
    """Long randomized cluster-vs-reference sweeps (weekly CI stress job).

    Each case draws a fresh seeded multi-stream event sequence and a random
    serving schedule (interleaved expiries and explicit drains), serves it
    through a randomly-shaped cluster (shards, executor, fixed or adaptive
    batching, both encodings), and demands per-stream decision-for-decision
    parity with one sequential engine per stream.
    """

    @pytest.mark.stress
    @pytest.mark.parametrize("encoding", ENCODINGS)
    @pytest.mark.parametrize("seed", range(12))
    def test_cluster_parity_fuzz(self, seed, encoding):
        rng = np.random.default_rng(1000 + seed)
        model = make_model(encoding, seed=int(rng.integers(100)))
        streams, events = multi_stream_events(
            seed=2000 + seed,
            num_events=int(rng.integers(150, 400)),
            num_streams=int(rng.integers(2, 8)),
            num_keys=int(rng.integers(2, 6)),
        )
        expire_positions = set(
            int(position)
            for position in rng.integers(0, len(events), size=rng.integers(0, 4))
        )
        overrides = dict(
            window_items=int(rng.integers(4, 12)),
            reencode_every=int(rng.integers(1, 4)),
            idle_timeout=float(rng.choice([0.0, 5.0, 9.0])),
        )
        _, expected = reference_decisions(
            model, streams, events, expire_positions=expire_positions, **overrides
        )

        adaptive = bool(rng.random() < 0.5)
        config = executor_config(
            str(
                rng.choice(["serial", "thread", "process-pipe", "process-shm"])
            ),
            num_shards=int(rng.choice([1, 2, 4])),
            batch_size="auto" if adaptive else int(rng.integers(1, 9)),
            auto_drain=False if adaptive else bool(rng.random() < 0.7),
            max_queue=len(events) + 1,
            batched=bool(rng.random() < 0.8),
            engine=engine_config(**overrides),
        )
        drain_every = int(rng.integers(10, 60))
        with ServingCluster(model, SPEC, config) as cluster:
            emitted = []
            for position, event in enumerate(events):
                emitted.extend(cluster.submit(event))
                if position in expire_positions:
                    emitted.extend(cluster.expire())
                elif position % drain_every == drain_every - 1:
                    emitted.extend(cluster.drain())
            emitted.extend(cluster.flush())
        assert_stream_parity(by_stream(emitted, streams), expected)
