"""Tests for the four baseline early classifiers."""

import numpy as np
import pytest

from repro.baselines.earliest import EARLIEST
from repro.baselines.prefix import PrefixSRNConfig
from repro.baselines.rl_policy import RLBaselineConfig
from repro.baselines.srn_confidence import SRNConfidence
from repro.baselines.srn_earliest import SRNEarliest
from repro.baselines.srn_fixed import SRNFixed


@pytest.fixture(scope="module")
def rl_config():
    return RLBaselineConfig(d_model=16, num_blocks=1, epochs=2, batch_size=8, seed=0)


@pytest.fixture(scope="module")
def prefix_config():
    return PrefixSRNConfig(d_model=16, num_blocks=1, epochs=2, batch_size=8, seed=0)


class TestRLBaselines:
    @pytest.mark.parametrize("method_class", [EARLIEST, SRNEarliest])
    def test_fit_and_predict(self, method_class, tiny_splits, rl_config):
        method = method_class(tiny_splits["spec"], tiny_splits["num_classes"], rl_config)
        method.fit(tiny_splits["train"])
        records = method.predict_all(tiny_splits["test"])
        assert records
        for record in records:
            assert 0 <= record.predicted < tiny_splits["num_classes"]
            assert 1 <= record.halt_observation <= record.sequence_length

    def test_run_sequence_outcome_structure(self, tiny_splits, rl_config):
        method = SRNEarliest(tiny_splits["spec"], tiny_splits["num_classes"], rl_config)
        sequence = list(tiny_splits["train"][0].per_key_sequences().values())[0]
        outcome = method.run_sequence(sequence, mode="greedy")
        assert outcome["halt_step"] <= len(sequence)
        assert len(outcome["states"]) == len(outcome["actions"])
        assert 0.0 <= outcome["confidence"] <= 1.0

    def test_greedy_prediction_deterministic(self, tiny_splits, rl_config):
        method = SRNEarliest(tiny_splits["spec"], tiny_splits["num_classes"], rl_config)
        tangle = tiny_splits["test"][0]
        first = method.predict_tangle(tangle)
        second = method.predict_tangle(tangle)
        assert [(r.key, r.predicted, r.halt_observation) for r in first] == [
            (r.key, r.predicted, r.halt_observation) for r in second
        ]

    def test_empty_training_rejected(self, tiny_splits, rl_config):
        method = EARLIEST(tiny_splits["spec"], tiny_splits["num_classes"], rl_config)
        with pytest.raises(ValueError):
            method.fit([])

    def test_names(self, tiny_splits, rl_config):
        assert EARLIEST(tiny_splits["spec"], 9, rl_config).name == "EARLIEST"
        assert SRNEarliest(tiny_splits["spec"], 9, rl_config).name == "SRN-EARLIEST"


class TestSRNFixed:
    def test_halts_exactly_at_tau(self, tiny_splits, prefix_config):
        method = SRNFixed(tiny_splits["spec"], tiny_splits["num_classes"], halt_time=4, config=prefix_config)
        method.fit(tiny_splits["train"])
        for record in method.predict_all(tiny_splits["test"]):
            assert record.halt_observation == min(4, record.sequence_length)

    def test_invalid_halt_time_rejected(self, tiny_splits, prefix_config):
        with pytest.raises(ValueError):
            SRNFixed(tiny_splits["spec"], 9, halt_time=0, config=prefix_config)

    def test_larger_tau_means_later_halting(self, tiny_splits, prefix_config):
        early = SRNFixed(tiny_splits["spec"], tiny_splits["num_classes"], halt_time=2, config=prefix_config)
        late = SRNFixed(tiny_splits["spec"], tiny_splits["num_classes"], halt_time=15, config=prefix_config)
        early.fit(tiny_splits["train"])
        late.fit(tiny_splits["train"])
        early_mean = np.mean([r.earliness for r in early.predict_all(tiny_splits["test"])])
        late_mean = np.mean([r.earliness for r in late.predict_all(tiny_splits["test"])])
        assert early_mean < late_mean


class TestSRNConfidence:
    def test_confidence_rule_halts_at_first_exceedance(self, tiny_splits, prefix_config):
        method = SRNConfidence(
            tiny_splits["spec"], tiny_splits["num_classes"], confidence_threshold=0.0001, config=prefix_config
        )
        method.fit(tiny_splits["train"])
        for record in method.predict_all(tiny_splits["test"]):
            assert record.halt_observation == 1  # any confidence exceeds 0.0001

    def test_threshold_one_requires_certainty_or_full_sequence(self, tiny_splits, prefix_config):
        method = SRNConfidence(
            tiny_splits["spec"], tiny_splits["num_classes"], confidence_threshold=1.0, config=prefix_config
        )
        method.fit(tiny_splits["train"])
        for record in method.predict_all(tiny_splits["test"]):
            assert record.halt_observation == record.sequence_length or record.confidence >= 1.0

    def test_invalid_threshold_rejected(self, tiny_splits, prefix_config):
        with pytest.raises(ValueError):
            SRNConfidence(tiny_splits["spec"], 9, confidence_threshold=0.0, config=prefix_config)

    def test_prefix_probabilities_shape(self, tiny_splits, prefix_config):
        method = SRNConfidence(tiny_splits["spec"], tiny_splits["num_classes"], config=prefix_config)
        sequence = list(tiny_splits["train"][0].per_key_sequences().values())[0]
        probabilities = method.prefix_probabilities(sequence)
        assert probabilities.shape == (len(sequence), tiny_splits["num_classes"])
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(len(sequence)), atol=1e-9)
