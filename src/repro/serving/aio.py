"""Asyncio serving gateway: awaitable submission and async decision streams.

The cluster and sync gateway are thread-blocking by design — every call
returns with its work complete.  An event-loop application must never block
the loop on a drain round, so :class:`AsyncServingGateway` wraps the cluster
the asyncio-native way:

* ``await gateway.submit(event)`` — admission, and any drain round the
  submission triggers, runs *off-loop*: the call is dispatched to a thread
  (``loop.run_in_executor``) and the heavy shard work still executes on the
  cluster's own execution backend — with ``executor="thread"`` every round
  runs on its shard's pinned pool worker exactly as in synchronous serving.
  The event loop only ever awaits; backpressure (``overflow="drain"``
  synchronous rounds, bounded decision buffering) becomes awaitable instead
  of loop-blocking.
* ``async for decision in gateway.decisions()`` — every emitted decision,
  pushed through an :class:`~repro.serving.sinks.AsyncQueueSink` onto the
  loop.  With ``max_buffered=n`` the queue is bounded and a full buffer
  blocks the *publishing worker* until the consumer catches up — end-to-end
  backpressure from the consumer into the serving layer (a concurrently
  running consumer task is then required, including across ``close()``).
* ``gateway.result(stream_id, key)`` — an :class:`asyncio.Future` resolved
  on the loop when that key's decision is emitted; the asyncio counterpart
  of :meth:`repro.serving.gateway.StreamHandle.result`.

Concurrency: submissions from many tasks run concurrently when the cluster
uses the thread backend (admission is lock-guarded, rounds are shard-pinned,
and per-stream delivery order is exact as long as each stream's events are
submitted in order — one task per stream is the natural shape).  Cluster-wide
operations (``drain`` / ``flush`` / ``expire`` / ``close``) take an exclusive
gate so their merge-point publication cannot interleave with submission-path
publication.  With the serial backend *every* operation is exclusive (the
serial cluster is single-threaded by contract).

Lifecycle: ``running`` → ``draining`` (``close()`` flushes, resolves what
resolves) → ``closed`` (unresolved futures cancelled, the decision stream
terminates).  Like the sync gateway, decision futures fire at most once;
replays after a cluster restore re-feed ``decisions()`` but never re-fire a
future.

No third-party dependencies: everything is stdlib ``asyncio`` (tests drive
it with ``asyncio.run``).
"""

from __future__ import annotations

import asyncio
import threading
from contextlib import asynccontextmanager
from functools import partial
from typing import AsyncIterator, Dict, Hashable, List, Optional, Tuple

from repro.data.items import ValueSpec
from repro.serving.cluster import ClusterConfig, ServingCluster, StreamDecision
from repro.serving.engine import Decision
from repro.serving.gateway import DecisionRegistry
from repro.serving.results import SubmitResult
from repro.serving.sinks import AsyncQueueSink, DecisionSink

__all__ = ["AsyncServingGateway"]


class _OpGate:
    """Shared/exclusive async gate (submissions shared, cluster ops exclusive).

    Writer-preferring: once an exclusive waiter queues up, new shared
    entrants wait, so a ``drain``/``close`` cannot be starved by a steady
    stream of submissions.  With ``exclusive_only=True`` (serial execution
    backend) shared entry degrades to exclusive entry.
    """

    def __init__(self, exclusive_only: bool = False) -> None:
        self._cond = asyncio.Condition()
        self._shared = 0
        self._exclusive = False
        self._exclusive_waiting = 0
        self._exclusive_only = exclusive_only

    @asynccontextmanager
    async def shared(self):
        if self._exclusive_only:
            async with self.exclusive():
                yield
            return
        async with self._cond:
            while self._exclusive or self._exclusive_waiting:
                await self._cond.wait()
            self._shared += 1
        try:
            yield
        finally:
            async with self._cond:
                self._shared -= 1
                self._cond.notify_all()

    @asynccontextmanager
    async def exclusive(self):
        async with self._cond:
            self._exclusive_waiting += 1
            try:
                while self._exclusive or self._shared:
                    await self._cond.wait()
                self._exclusive = True
            finally:
                self._exclusive_waiting -= 1
        try:
            yield
        finally:
            async with self._cond:
                self._exclusive = False
                self._cond.notify_all()


class _RegistrySink(DecisionSink):
    """Loop-side :class:`DecisionRegistry` delivery (future resolution).

    Decision *streams* get their own per-iterator :class:`AsyncQueueSink`
    (see :meth:`AsyncServingGateway.decisions`); this sink carries only the
    registry half of delivery, so futures resolve whether or not anyone is
    iterating.
    """

    def __init__(
        self,
        loop,
        registry: DecisionRegistry,
        history: List[StreamDecision],
        history_lock: threading.Lock,
    ) -> None:
        self._loop = loop
        self._registry = registry
        self._history = history
        self._history_lock = history_lock
        self._closed = False

    def publish(self, decision: StreamDecision) -> None:
        if self._closed or self._loop.is_closed():
            # Drop-don't-crash guard: an abandoned gateway whose loop is
            # gone must not break the serving layer.
            return
        # Record on the publishing thread, *before* the loop callback: the
        # history is what late ``decisions()`` subscribers replay, and it
        # must be complete by the time any future resolved by this decision
        # can be observed.
        with self._history_lock:
            self._history.append(decision)
        # Registry mutation and asyncio-future resolution belong on the loop.
        self._loop.call_soon_threadsafe(self._registry.deliver, decision)

    def close(self) -> None:
        self._closed = True


class AsyncServingGateway:
    """Awaitable push-based serving over a :class:`ServingCluster`.

    Construct with a model/spec/config (the gateway owns and closes the
    cluster) or wrap an existing cluster.  The gateway binds to the event
    loop of the first awaited call; all later calls must come from the same
    loop.  Usable as an async context manager (``async with`` closes it).
    """

    _SENTINEL = object()

    def __init__(
        self,
        model=None,
        spec: Optional[ValueSpec] = None,
        config: Optional[ClusterConfig] = None,
        *,
        cluster: Optional[ServingCluster] = None,
        max_buffered: int = 0,
    ) -> None:
        if cluster is None:
            if model is None or spec is None:
                raise ValueError(
                    "AsyncServingGateway needs either an existing cluster= or "
                    "a model + spec (+ optional config) to build one"
                )
            cluster = ServingCluster(model, spec, config)
            self._owns_cluster = True
        else:
            if model is not None or spec is not None or config is not None:
                raise ValueError(
                    "pass either cluster= or model/spec/config, not both"
                )
            self._owns_cluster = False
        if max_buffered < 0:
            raise ValueError("max_buffered must be >= 0 (0 = unbounded)")
        self._cluster = cluster
        self._max_buffered = max_buffered
        self._state = "running"
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._sink: Optional[_RegistrySink] = None
        #: Active ``decisions()`` iterators: sink → its bounded queue.  Each
        #: iterator owns a private subscription, added when iteration starts
        #: and removed in the generator's ``finally`` — so a consumer that
        #: vanishes mid-stream (task cancelled, iterator garbage-collected,
        #: HTTP client disconnected) tears its bounded buffer down instead
        #: of exerting backpressure forever.
        self._iterators: Dict[AsyncQueueSink, asyncio.Queue] = {}
        #: Every decision delivered through this gateway, in delivery order.
        #: ``decisions()`` iterators replay it before going live, so a
        #: consumer that starts late (or after close) still sees the full
        #: stream — the sequential-caller parity contract.  Appended on the
        #: publishing thread, snapshotted on the loop, hence the lock.
        self._delivered: List[StreamDecision] = []
        self._delivered_lock = threading.Lock()
        self._gate: Optional[_OpGate] = None
        #: Shared first-emission bookkeeping (see DecisionRegistry): the
        #: asyncio flavour only ever mutates it on the bound loop, via
        #: call_soon_threadsafe deliveries.  Created at loop binding so the
        #: future factory can target the loop.
        self._registry: Optional[DecisionRegistry] = None

    # ------------------------------------------------------------------ #
    # loop binding / lifecycle
    # ------------------------------------------------------------------ #
    def _bind(self) -> None:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
            self._gate = _OpGate(
                exclusive_only=self._cluster.config.executor == "serial"
            )
            self._registry = DecisionRegistry(loop.create_future)
            self._sink = _RegistrySink(
                loop, self._registry, self._delivered, self._delivered_lock
            )
            self._cluster.subscribe(self._sink)
        elif loop is not self._loop:
            raise RuntimeError(
                "AsyncServingGateway is bound to a different event loop"
            )

    async def _run(self, fn, *args, **kwargs):
        """Run a blocking cluster call off-loop and await its result."""
        return await self._loop.run_in_executor(
            None, partial(fn, *args, **kwargs)
        )

    @property
    def state(self) -> str:
        return self._state

    @property
    def cluster(self) -> ServingCluster:
        return self._cluster

    def _require_running(self, operation: str) -> None:
        if self._state != "running":
            raise RuntimeError(f"cannot {operation}: gateway is {self._state}")

    async def close(self) -> List[StreamDecision]:
        """Stop the gateway: ``running`` → ``draining`` → ``closed``.

        An *owned* cluster is flushed (resolving every future the final
        decisions can) and closed; a *wrapped* cluster is shared with other
        users, so the gateway only detaches — flush explicitly first if you
        want the final decisions.  Unresolved futures are cancelled and the
        ``decisions()`` iterator terminates.  Idempotent (repeat calls
        return an empty list).
        """
        if self._state == "closed":
            return []
        self._bind()
        self._state = "draining"
        async with self._gate.exclusive():
            if self._owns_cluster and self._cluster.state != "closed":
                emitted = await self._run(self._cluster.flush)
            else:
                emitted = []
        # Deliveries issued by the flush were scheduled with
        # call_soon_threadsafe before it returned; yield once so they run
        # before we decide which futures are unresolvable.
        await asyncio.sleep(0)
        self._registry.cancel_unresolved()
        self._cluster.unsubscribe(self._sink)
        self._sink.close()
        if self._owns_cluster:
            self._cluster.close()
        self._state = "closed"
        # Terminate every active decision stream: close the sinks first (no
        # further publishes can land or block), then wake each consumer.  A
        # full bounded queue skips the sentinel — its consumer drains the
        # backlog and observes state "closed" on an empty queue instead.
        for sink, queue in list(self._iterators.items()):
            self._cluster.unsubscribe(sink)
            sink.close()
            try:
                queue.put_nowait(self._SENTINEL)
            except asyncio.QueueFull:
                pass
        return emitted

    async def __aenter__(self) -> "AsyncServingGateway":
        self._bind()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # serving API
    # ------------------------------------------------------------------ #
    async def submit(
        self,
        event,
        stream_id: Optional[Hashable] = None,
        raise_on_reject: bool = True,
    ) -> SubmitResult:
        """Awaitable arrival submission (admission + any triggered rounds).

        Runs off-loop; concurrent submit tasks overlap under the thread
        backend.  Per-stream decision order is exact as long as each
        stream's events are submitted in order (e.g. one task per stream).
        """
        self._require_running("submit")
        self._bind()
        async with self._gate.shared():
            return await self._run(
                self._cluster.submit,
                event,
                stream_id=stream_id,
                raise_on_reject=raise_on_reject,
            )

    async def drain(self) -> List[StreamDecision]:
        """Awaitable cluster drain (exclusive; shards overlap off-loop)."""
        self._bind()
        async with self._gate.exclusive():
            return await self._run(self._cluster.drain)

    async def flush(self) -> List[StreamDecision]:
        """Awaitable cluster flush (exclusive)."""
        self._bind()
        async with self._gate.exclusive():
            return await self._run(self._cluster.flush)

    async def expire(self, now: Optional[float] = None) -> List[StreamDecision]:
        """Awaitable idle-key expiry (exclusive)."""
        self._bind()
        async with self._gate.exclusive():
            return await self._run(self._cluster.expire, now)

    async def flush_stream(self, stream_id: Hashable) -> List[StreamDecision]:
        """Awaitable per-stream flush (exclusive; the HTTP per-stream verb)."""
        self._bind()
        async with self._gate.exclusive():
            return await self._run(self._cluster.flush_stream, stream_id)

    async def snapshot(self):
        """Awaitable cluster snapshot (exclusive — no round interleaves)."""
        self._bind()
        async with self._gate.exclusive():
            return await self._run(self._cluster.snapshot)

    async def restore(self, snapshot) -> None:
        """Awaitable cluster restore (exclusive)."""
        self._bind()
        async with self._gate.exclusive():
            await self._run(self._cluster.restore, snapshot)

    def result(
        self, stream_id: Hashable, key: Hashable
    ) -> "asyncio.Future[Decision]":
        """A loop-side future resolved when the key's decision is emitted.

        Call from the bound loop.  Already-decided keys resolve immediately;
        futures still pending at :meth:`close` are cancelled, and a request
        made *after* close for an undecided key comes back already cancelled
        (the one-time cancellation sweep cannot fire again).
        """
        self._bind()
        if self._state == "closed":
            decision = self._registry.decided(stream_id, key)
            future: "asyncio.Future[Decision]" = self._loop.create_future()
            if decision is not None:
                future.set_result(decision)
            else:
                future.cancel()
            return future
        return self._registry.future_for(stream_id, key)

    def decided(self, stream_id: Hashable, key: Hashable) -> Optional[Decision]:
        return None if self._registry is None else self._registry.decided(stream_id, key)

    def stream_decisions(self, stream_id: Hashable) -> List[Decision]:
        """One stream's decisions so far, in emission order (loop-side view)."""
        return [] if self._registry is None else self._registry.stream_decisions(stream_id)

    async def decisions(self) -> AsyncIterator[StreamDecision]:
        """Async-iterate every emitted decision until the gateway closes.

        Each call owns a private :class:`AsyncQueueSink` subscription, so
        concurrent iterators each see the full decision stream (broadcast,
        not work-stealing) — one per HTTP decision-stream connection is the
        intended shape.  An iterator started late first *replays* the
        decisions already delivered (in delivery order, same objects) and
        then goes live, so a sequential caller that iterates after
        ``close()`` still sees the exact concatenated pull-API stream.

        With ``max_buffered`` set each iterator's live queue is bounded and
        a stalled consumer blocks the publishing worker (that is the
        backpressure); a consumer that stops iterating — task cancelled,
        iterator dropped and garbage-collected, client disconnected — is
        unsubscribed in the generator's ``finally``, so an abandoned stream
        never throttles the serving layer.
        """
        self._bind()
        # Snapshot the replay backlog *before* subscribing live: a decision
        # recorded before the snapshot cannot also reach the new sink (its
        # publish fan-out predates the subscription), so replay + live never
        # duplicates.
        with self._delivered_lock:
            backlog = list(self._delivered)
        live = self._state != "closed"
        if live:
            queue: asyncio.Queue = asyncio.Queue(maxsize=self._max_buffered)
            sink = AsyncQueueSink(queue, self._loop)
            self._iterators[sink] = queue
            self._cluster.subscribe(sink)
        try:
            for item in backlog:
                yield item
            if not live:
                return
            while True:
                if self._state == "closed" and queue.empty():
                    return
                item = await queue.get()
                if item is self._SENTINEL:
                    return
                yield item
        finally:
            if live:
                self._detach_iterator(sink)

    def _detach_iterator(self, sink: AsyncQueueSink) -> None:
        """Tear one decision iterator's subscription down (idempotent)."""
        if self._iterators.pop(sink, None) is not None:
            self._cluster.unsubscribe(sink)
            sink.close()

    def stats(self) -> Dict[str, object]:
        stats = self._cluster.stats()
        stats["gateway_state"] = self._state
        stats["pending_futures"] = 0 if self._registry is None else self._registry.pending_count
        stats["resolved_keys"] = 0 if self._registry is None else self._registry.resolved_count
        stats["decision_streams"] = len(self._iterators)
        stats["buffered_decisions"] = sum(
            queue.qsize() for queue in self._iterators.values()
        )
        return stats

    def health(self) -> Dict[str, object]:
        """The cluster's fault-tolerance view (breakers, restores, sinks).

        Safe to call from the loop thread: reading health never touches
        serving state, so it cannot block behind a drain.  An ``await
        gateway.submit(...)`` returning ``status="degraded"`` means the
        stream's shard has its breaker open — this view says why and
        whether a checkpoint recovery already ran.
        """
        return self._cluster.health()
