"""Tests for the learning-rate schedulers."""

import math

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD
from repro.nn.schedulers import (
    ConstantLR,
    CosineAnnealingLR,
    ExponentialLR,
    LinearWarmup,
    MultiStepLR,
    StepLR,
)


def make_optimizer(lr=0.1):
    return SGD([Parameter(np.zeros(3))], lr=lr)


class TestConstantLR:
    def test_rate_never_changes(self):
        optimizer = make_optimizer(0.05)
        scheduler = ConstantLR(optimizer)
        for _ in range(10):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.05)

    def test_history_records_every_step(self):
        scheduler = ConstantLR(make_optimizer())
        scheduler.step()
        scheduler.step()
        assert len(scheduler.history) == 3  # initial + 2 steps


class TestStepLR:
    def test_decays_every_step_size(self):
        optimizer = make_optimizer(1.0)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
        rates = [scheduler.step() for _ in range(6)]
        assert rates[0] == pytest.approx(1.0)  # step 1
        assert rates[1] == pytest.approx(0.5)  # step 2 crosses the first boundary
        assert rates[3] == pytest.approx(0.25)
        assert rates[5] == pytest.approx(0.125)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            StepLR(make_optimizer(), step_size=0)
        with pytest.raises(ValueError):
            StepLR(make_optimizer(), step_size=2, gamma=-1.0)


class TestExponentialLR:
    def test_geometric_decay(self):
        optimizer = make_optimizer(1.0)
        scheduler = ExponentialLR(optimizer, gamma=0.9)
        for step in range(1, 5):
            rate = scheduler.step()
            assert rate == pytest.approx(0.9**step)


class TestCosineAnnealingLR:
    def test_starts_near_base_and_ends_at_min(self):
        optimizer = make_optimizer(1.0)
        scheduler = CosineAnnealingLR(optimizer, total_steps=10, min_lr=0.1)
        first = scheduler.step()
        assert 0.9 < first <= 1.0
        for _ in range(9):
            last = scheduler.step()
        assert last == pytest.approx(0.1)

    def test_monotonically_decreasing(self):
        scheduler = CosineAnnealingLR(make_optimizer(1.0), total_steps=20)
        rates = [scheduler.step() for _ in range(20)]
        assert all(a >= b - 1e-12 for a, b in zip(rates, rates[1:]))

    def test_clamps_beyond_total_steps(self):
        scheduler = CosineAnnealingLR(make_optimizer(1.0), total_steps=5, min_lr=0.2)
        for _ in range(8):
            rate = scheduler.step()
        assert rate == pytest.approx(0.2)


class TestLinearWarmup:
    def test_linear_ramp(self):
        optimizer = make_optimizer(1.0)
        scheduler = LinearWarmup(optimizer, warmup_steps=4)
        rates = [scheduler.step() for _ in range(4)]
        assert rates == pytest.approx([0.25, 0.5, 0.75, 1.0])

    def test_holds_base_rate_after_warmup_without_inner(self):
        scheduler = LinearWarmup(make_optimizer(0.3), warmup_steps=2)
        scheduler.step()
        scheduler.step()
        assert scheduler.step() == pytest.approx(0.3)

    def test_delegates_to_inner_schedule(self):
        optimizer = make_optimizer(1.0)
        inner = ExponentialLR(optimizer, gamma=0.5)
        scheduler = LinearWarmup(optimizer, warmup_steps=2, after=inner)
        scheduler.step()
        scheduler.step()
        assert scheduler.step() == pytest.approx(0.5)
        assert scheduler.step() == pytest.approx(0.25)


class TestMultiStepLR:
    def test_decay_at_milestones(self):
        optimizer = make_optimizer(1.0)
        scheduler = MultiStepLR(optimizer, milestones=[2, 4], gamma=0.1)
        rates = [scheduler.step() for _ in range(5)]
        assert rates[0] == pytest.approx(1.0)
        assert rates[1] == pytest.approx(0.1)
        assert rates[3] == pytest.approx(0.01)
        assert rates[4] == pytest.approx(0.01)

    def test_milestones_must_be_sorted(self):
        with pytest.raises(ValueError):
            MultiStepLR(make_optimizer(), milestones=[4, 2])

    def test_milestones_must_be_positive(self):
        with pytest.raises(ValueError):
            MultiStepLR(make_optimizer(), milestones=[0, 2])


class TestSchedulerSafety:
    def test_negative_rate_rejected(self):
        class Broken(ConstantLR):
            def get_lr(self):
                return -1.0

        with pytest.raises(ValueError):
            Broken(make_optimizer()).step()

    def test_optimizer_actually_uses_new_rate(self):
        parameter = Parameter(np.ones(2))
        optimizer = SGD([parameter], lr=1.0)
        scheduler = StepLR(optimizer, step_size=1, gamma=0.5)
        parameter.grad = np.ones(2)
        scheduler.step()  # rate halves to 0.5 after the first step
        optimizer.step()
        assert np.allclose(parameter.data, np.full(2, 0.5))
