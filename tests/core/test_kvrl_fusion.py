"""Tests for the KVRL attention encoder and the embedding-fusion modules."""

import numpy as np
import pytest

from repro.core.correlation import build_correlation_structure
from repro.core.fusion import GatedFusion, LastItemFusion, MeanFusion, make_fusion
from repro.core.kvrl import KVRLBlock, KVRLEncoder
from repro.data.items import Item, TangledSequence, ValueSpec
from repro.nn.attention import causal_mask
from repro.nn.tensor import Tensor

SPEC = ValueSpec(("size", "direction"), (8, 2), session_field=1)


class TestKVRLEncoder:
    def test_output_shape(self):
        encoder = KVRLEncoder(16, num_blocks=2, num_heads=2, rng=np.random.default_rng(0))
        out = encoder(Tensor(np.random.default_rng(1).standard_normal((7, 16))))
        assert out.shape == (7, 16)

    def test_zero_blocks_rejected(self):
        with pytest.raises(ValueError):
            KVRLEncoder(16, num_blocks=0)

    def test_causality_under_causal_mask(self):
        """Row t of the encoder output must not depend on later rows of the input."""
        encoder = KVRLEncoder(8, num_blocks=2, num_heads=1, dropout=0.0, rng=np.random.default_rng(0))
        encoder.eval()
        base = np.random.default_rng(1).standard_normal((6, 8))
        modified = base.copy()
        modified[4:] += 5.0
        mask = causal_mask(6)
        out_base = encoder(Tensor(base), mask=mask).data
        out_modified = encoder(Tensor(modified), mask=mask).data
        np.testing.assert_allclose(out_base[:4], out_modified[:4], atol=1e-9)

    def test_correlation_mask_blocks_uncorrelated_items(self):
        """With value correlation disabled, another key's items cannot influence a row."""
        items = [
            Item("a", (0, 0), 0.0),
            Item("b", (1, 1), 1.0),
            Item("a", (2, 0), 2.0),
        ]
        tangle = TangledSequence(items, {"a": 0, "b": 0}, SPEC)
        structure = build_correlation_structure(tangle, use_value_correlation=False)

        encoder = KVRLEncoder(8, num_blocks=1, num_heads=1, dropout=0.0, rng=np.random.default_rng(0))
        encoder.eval()
        base = np.random.default_rng(1).standard_normal((3, 8))
        modified = base.copy()
        modified[1] += 10.0  # perturb the (invisible) item of key b
        out_base = encoder(Tensor(base), mask=structure.mask).data
        out_modified = encoder(Tensor(modified), mask=structure.mask).data
        np.testing.assert_allclose(out_base[2], out_modified[2], atol=1e-9)

    def test_attention_maps_collected_per_block(self):
        encoder = KVRLEncoder(8, num_blocks=3, num_heads=2, rng=np.random.default_rng(0))
        encoder(Tensor(np.random.default_rng(1).standard_normal((5, 8))), store_attention=True)
        maps = encoder.attention_maps()
        assert len(maps) == 3
        assert all(weights.shape == (2, 5, 5) for weights in maps)

    def test_block_gradients_flow(self):
        block = KVRLBlock(8, num_heads=1, ffn_hidden=16, dropout=0.0, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).standard_normal((4, 8)), requires_grad=True)
        block(x, mask=causal_mask(4)).sum().backward()
        assert x.grad is not None


class TestFusion:
    def test_gated_fusion_shapes(self):
        fusion = GatedFusion(d_model=8, d_state=12, rng=np.random.default_rng(0))
        state = fusion.initial_state()
        representation, new_state = fusion(state, Tensor(np.ones(8)))
        assert representation.shape == (12,)
        assert len(new_state) == 2

    def test_gated_fusion_state_evolves(self):
        fusion = GatedFusion(d_model=4, d_state=6, rng=np.random.default_rng(0))
        state = fusion.initial_state()
        first, state = fusion(state, Tensor(np.ones(4)))
        second, state = fusion(state, Tensor(np.ones(4)))
        assert not np.allclose(first.data, second.data)

    def test_mean_fusion_is_running_mean(self):
        fusion = MeanFusion(d_model=3)
        state = fusion.initial_state()
        first, state = fusion(state, Tensor(np.array([1.0, 2.0, 3.0])))
        second, state = fusion(state, Tensor(np.array([3.0, 4.0, 5.0])))
        np.testing.assert_allclose(first.data, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(second.data, [2.0, 3.0, 4.0])

    def test_last_item_fusion_returns_latest(self):
        fusion = LastItemFusion(d_model=3)
        state = fusion.initial_state()
        _, state = fusion(state, Tensor(np.array([1.0, 1.0, 1.0])))
        latest, _ = fusion(state, Tensor(np.array([9.0, 9.0, 9.0])))
        np.testing.assert_allclose(latest.data, [9.0, 9.0, 9.0])

    def test_factory_dispatch(self):
        assert isinstance(make_fusion("gated", 4, 6), GatedFusion)
        assert isinstance(make_fusion("mean", 4, 6), MeanFusion)
        assert isinstance(make_fusion("last", 4, 6), LastItemFusion)
        with pytest.raises(ValueError):
            make_fusion("bogus", 4, 6)

    def test_gated_fusion_gradient_flows_through_steps(self):
        fusion = GatedFusion(d_model=4, d_state=6, rng=np.random.default_rng(0))
        x = Tensor(np.ones(4), requires_grad=True)
        state = fusion.initial_state()
        for _ in range(3):
            representation, state = fusion(state, x)
        representation.sum().backward()
        assert x.grad is not None
        assert fusion.cell.input_gate.weight.grad is not None
