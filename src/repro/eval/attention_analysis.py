"""Internal vs external attention scores (Fig. 10, RQ1).

The paper quantifies how the KVRL attention budget is split between

* the **internal attention score** — cumulative attention weight placed on
  positions visible through the *key* correlation (items of the same
  sequence), and
* the **external attention score** — cumulative weight on positions visible
  through the *value* correlation (items of other concurrent sequences),

as a function of how much of the sequence has been observed (the halting
position / earliness).  Early on, external attention dominates (there is not
enough intra-sequence data yet); as more items arrive, internal attention
takes over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.model import KVEC
from repro.data.items import TangledSequence
from repro.nn.tensor import no_grad


@dataclass
class AttentionScorePoint:
    """Average attention split and accuracy at one earliness level."""

    earliness: float
    internal_score: float
    external_score: float
    accuracy: float
    num_observations: int


def attention_score_profile(
    model: KVEC,
    tangles: Sequence[TangledSequence],
    earliness_levels: Sequence[float] = (0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
) -> List[AttentionScorePoint]:
    """Measure internal/external attention scores at several halting positions.

    For every requested earliness level the model is run on a prefix of each
    tangled sequence containing that fraction of items; the attention maps of
    the last forward pass are then partitioned by the correlation structure:
    weights on key-correlated positions count as internal, weights on
    value-correlated positions as external (the diagonal self-attention weight
    is excluded from both).  Prefix classification accuracy is measured by
    forcing classification at the prefix end.
    """
    points: List[AttentionScorePoint] = []
    was_training = model.training
    model.eval()
    try:
        for level in earliness_levels:
            internal_total = 0.0
            external_total = 0.0
            weight_count = 0
            correct = 0
            classified = 0
            for tangle in tangles:
                length = max(2, int(round(level * len(tangle))))
                length = min(length, len(tangle))
                with no_grad():
                    result = model.run_episode(
                        tangle,
                        mode="greedy",
                        halt_threshold=1.1,  # never halt: observe the full prefix
                        store_attention=True,
                        max_items=length,
                    )
                structure = result.correlation
                for attention in result.attention_maps:
                    # attention: (heads, T, T) — average heads, then accumulate
                    # the per-row attention mass on each correlation type.
                    mean_attention = attention.mean(axis=0)
                    internal_total += float(mean_attention[structure.key_correlated].sum())
                    external_total += float(mean_attention[structure.value_correlated].sum())
                    weight_count += mean_attention.shape[0]
                for record in result.records():
                    classified += 1
                    correct += int(record.correct)
            if weight_count == 0:
                continue
            points.append(
                AttentionScorePoint(
                    earliness=float(level),
                    internal_score=internal_total / weight_count,
                    external_score=external_total / weight_count,
                    accuracy=correct / classified if classified else 0.0,
                    num_observations=weight_count,
                )
            )
    finally:
        model.train(was_training)
    return points
