"""Shared interface and helpers for the baseline early classifiers."""

from __future__ import annotations

import abc
from typing import List, Sequence

import numpy as np

from repro.core.model import PredictionRecord
from repro.data.items import KeyValueSequence, TangledSequence, ValueSpec


class EarlyClassifier(abc.ABC):
    """Common interface of KVEC and every baseline for the evaluation harness.

    ``fit`` consumes tangled sequences (the training unit of the problem
    definition); baselines that model sequences independently simply untangle
    them first with :func:`tangles_to_sequences`.
    """

    #: Name used in result tables and figures.
    name: str = "early-classifier"

    @abc.abstractmethod
    def fit(self, train_tangles: Sequence[TangledSequence], verbose: bool = False) -> "EarlyClassifier":
        """Train the classifier on tangled key-value sequences."""

    @abc.abstractmethod
    def predict_tangle(self, tangle: TangledSequence) -> List[PredictionRecord]:
        """Early-classify every key-value sequence of one tangled sequence."""

    def predict_all(self, tangles: Sequence[TangledSequence]) -> List[PredictionRecord]:
        """Early-classify every sequence of every tangled sequence."""
        records: List[PredictionRecord] = []
        for tangle in tangles:
            records.extend(self.predict_tangle(tangle))
        return records


def tangles_to_sequences(tangles: Sequence[TangledSequence]) -> List[KeyValueSequence]:
    """Flatten tangled sequences back into independent per-key sequences."""
    sequences: List[KeyValueSequence] = []
    for tangle in tangles:
        sequences.extend(tangle.per_key_sequences().values())
    return sequences


def one_hot_features(sequence: KeyValueSequence, spec: ValueSpec) -> np.ndarray:
    """Encode a key-value sequence as a (T, sum(cardinalities)) one-hot matrix.

    This is the "multivariate time series" view of a key-value sequence that
    the EARLIEST baseline consumes: value semantics are flattened into raw
    indicator dimensions with no learned embedding, which is precisely why
    the paper finds time-series methods ill-suited to key-value data.
    """
    total_dims = sum(spec.cardinalities)
    features = np.zeros((len(sequence), total_dims), dtype=np.float64)
    offsets = np.cumsum([0] + list(spec.cardinalities[:-1]))
    for row, item in enumerate(sequence):
        for field_index, offset in enumerate(offsets):
            features[row, offset + item.field(field_index)] = 1.0
    return features
