"""Tests for the command-line interface and the experiment-result persistence."""

import json

import pytest

from repro.data.io import load_dataset
from repro.experiments import figures, tables
from repro.experiments.cli import build_parser, main
from repro.experiments.registry import list_experiments
from repro.experiments.results_io import load_result, save_result, summarise_payload, to_payload


class Capture:
    """Minimal print replacement collecting output lines."""

    def __init__(self):
        self.lines = []

    def __call__(self, text=""):
        self.lines.append(str(text))

    @property
    def text(self):
        return "\n".join(self.lines)


class TestParser:
    def test_known_subcommands(self):
        parser = build_parser()
        for command in ("experiments", "run", "datasets", "generate"):
            assert command in parser.format_help()

    def test_run_scale_choices(self):
        parser = build_parser()
        arguments = parser.parse_args(["run", "fig9_ablation", "--scale", "unit"])
        assert arguments.scale == "unit"
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "fig9_ablation", "--scale", "huge"])


class TestCliCommands:
    def test_no_command_prints_help(self):
        capture = Capture()
        assert main([], print_fn=capture) == 1

    def test_experiments_lists_every_registered_id(self):
        capture = Capture()
        assert main(["experiments"], print_fn=capture) == 0
        for experiment in list_experiments():
            assert experiment.identifier in capture.text

    def test_unknown_experiment_returns_error_code(self):
        capture = Capture()
        assert main(["run", "fig99_nonsense"], print_fn=capture) == 2
        assert "unknown experiment" in capture.text

    def test_generate_writes_a_loadable_dataset(self, tmp_path):
        capture = Capture()
        output = tmp_path / "ustc.jsonl"
        code = main(
            ["generate", "USTC-TFC2016", "--num-keys", "12", "--seed", "3", "--output", str(output)],
            print_fn=capture,
        )
        assert code == 0
        dataset = load_dataset(output)
        assert dataset.name == "USTC-TFC2016"
        assert len(dataset.sequences) >= 9  # one per class at minimum

    def test_run_table1_and_save(self, tmp_path):
        capture = Capture()
        output = tmp_path / "table1.json"
        code = main(
            ["run", "table1_dataset_stats", "--scale", "unit", "--output", str(output)],
            print_fn=capture,
        )
        assert code == 0
        payload = load_result(output)
        assert payload["experiment"] == "table1_dataset_stats"
        assert "USTC-TFC2016" in payload["generated"]


class TestResultsIO:
    def test_table2_payload(self, tmp_path):
        result = tables.run_table2_hyperparameters("unit")
        payload = to_payload("table2_hyperparameters", result, scale="unit")
        assert payload["rows"]
        assert all(len(row) == 4 for row in payload["rows"])
        path = save_result("table2_hyperparameters", result, tmp_path / "t2.json", scale="unit")
        assert json.loads(path.read_text())["scale"] == "unit"

    def test_unknown_result_falls_back_to_rendered_text(self, tmp_path):
        class Custom:
            def render(self):
                return "custom result"

        payload = to_payload("custom", Custom())
        assert payload["rendered"] == "custom result"
        assert summarise_payload(payload) == "custom result"

    def test_summarise_payload_truncates(self):
        payload = {"rendered": "\n".join(f"line {i}" for i in range(10))}
        summary = summarise_payload(payload, max_lines=3)
        assert "line 2" in summary
        assert "more lines" in summary

    def test_load_rejects_non_payload(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"foo": 1}))
        with pytest.raises(ValueError):
            load_result(path)
