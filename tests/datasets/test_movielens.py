"""Tests for the synthetic MovieLens-1M analogue."""

import numpy as np
import pytest

from repro.datasets.movielens import (
    GENRES,
    SyntheticMovieLensConfig,
    generate_movielens_dataset,
    make_movielens_1m,
)
from repro.datasets.stats import compute_statistics


class TestConfig:
    def test_defaults_valid(self):
        SyntheticMovieLensConfig()

    def test_invalid_stickiness_rejected(self):
        with pytest.raises(ValueError):
            SyntheticMovieLensConfig(genre_stickiness=1.5)

    def test_too_few_users_rejected(self):
        with pytest.raises(ValueError):
            SyntheticMovieLensConfig(num_users=1)


class TestGeneratedData:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_movielens_1m(num_users=40, seed=9, mean_sequence_length=50.0)

    def test_binary_labels(self, dataset):
        assert dataset.num_classes == 2
        assert {sequence.label for sequence in dataset.sequences} == {0, 1}

    def test_value_schema(self, dataset):
        assert dataset.spec.field_names == ("movie", "genre", "rating")
        assert dataset.spec.session_field == 1
        assert dataset.spec.cardinalities[1] == len(GENRES)

    def test_movie_id_consistent_with_genre(self, dataset):
        movies_per_genre = dataset.spec.cardinalities[0] // len(GENRES)
        for sequence in dataset.sequences[:10]:
            for item in sequence:
                movie, genre, _ = item.value
                assert movie // movies_per_genre == genre

    def test_sequence_lengths_reasonable(self, dataset):
        stats = compute_statistics(dataset)
        assert 30 <= stats.avg_sequence_length <= 80

    def test_sessions_are_short_genre_runs(self, dataset):
        stats = compute_statistics(dataset)
        assert 1.0 < stats.avg_session_length < 4.0

    def test_ratings_in_range(self, dataset):
        for sequence in dataset.sequences[:10]:
            for item in sequence:
                assert 0 <= item.value[2] < dataset.spec.cardinalities[2]

    def test_deterministic_given_seed(self):
        first = make_movielens_1m(num_users=10, seed=4)
        second = make_movielens_1m(num_users=10, seed=4)
        for a, b in zip(first.sequences, second.sequences):
            assert [item.value for item in a] == [item.value for item in b]

    def test_classes_have_distinct_genre_preferences(self):
        dataset = make_movielens_1m(num_users=60, seed=11, mean_sequence_length=80.0)
        genre_counts = {0: np.zeros(len(GENRES)), 1: np.zeros(len(GENRES))}
        for sequence in dataset.sequences:
            for item in sequence:
                genre_counts[sequence.label][item.value[1]] += 1
        distributions = {
            label: counts / counts.sum() for label, counts in genre_counts.items()
        }
        total_variation = 0.5 * np.abs(distributions[0] - distributions[1]).sum()
        assert total_variation > 0.05
