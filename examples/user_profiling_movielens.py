"""Scenario: early user profiling from rating streams (MovieLens analogue).

This mirrors the paper's e-commerce/user-profiling motivation (Fig. 1,
scenario 1): infer a user's profile attribute (here, the binary gender label
of MovieLens-1M) from the first few interactions, so that personalisation can
kick in for brand-new users.

The script trains KVEC on the synthetic MovieLens-1M analogue and then shows,
for a few held-out users, after how many ratings the model halted and what it
predicted.

Run with::

    python examples/user_profiling_movielens.py
"""

from __future__ import annotations

from repro.core import KVEC, KVECConfig, KVECTrainer
from repro.datasets import make_movielens_1m
from repro.eval import summarize
from repro.eval.evaluator import prepare_tangled_splits


def main() -> None:
    dataset = make_movielens_1m(num_users=40, seed=23, mean_sequence_length=60.0)
    splits = prepare_tangled_splits(dataset, concurrency=4, seed=0)
    print(
        f"{dataset.name}: {len(dataset)} users, value fields {dataset.spec.field_names}, "
        f"classes {dataset.class_names}"
    )

    config = KVECConfig(
        d_model=24,
        num_blocks=2,
        num_heads=2,
        d_state=32,
        dropout=0.0,
        epochs=12,
        batch_size=8,
        learning_rate=3e-3,
        beta=0.002,
    )
    model = KVEC(dataset.spec, dataset.num_classes, config)
    KVECTrainer(model).train(splits.train, verbose=True)

    records = [record for tangle in splits.test for record in model.predict_tangle(tangle)]
    summary = summarize(records)
    print(
        f"\nheld-out users: accuracy={summary.accuracy:.3f}, earliness={summary.earliness:.3f}, "
        f"HM={summary.harmonic_mean:.3f}"
    )

    print("\nper-user decisions (first 8 held-out users):")
    for record in records[:8]:
        verdict = "correct" if record.correct else "wrong"
        print(
            f"  {record.key:<10} predicted={dataset.class_names[record.predicted]:<7} "
            f"after {record.halt_observation:>3}/{record.sequence_length:<3} ratings "
            f"(confidence {record.confidence:.2f}, {verdict})"
        )


if __name__ == "__main__":
    main()
