"""Text-mode plotting of curves and histograms.

The benchmark harness must render every figure of the paper without a
plotting library (matplotlib is not available offline), so the figure
results come with ASCII renderings: a scatter/line canvas for the
performance-vs-earliness curves (Figs. 3-7, 12), and horizontal bar
histograms for the halting-position distributions (Fig. 11).

These renderings are deliberately simple — fixed-size character canvases —
but they make the *shape* of each reproduced figure visible directly in the
benchmark output and in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

Point = Tuple[float, float]

#: Characters used to distinguish series on one canvas, in assignment order.
SERIES_MARKERS = "ox+*#@%&"


def _bounds(values: Sequence[float], padding: float = 0.0) -> Tuple[float, float]:
    low = min(values)
    high = max(values)
    if high == low:
        high = low + 1.0
    span = high - low
    return low - padding * span, high + padding * span


class AsciiCanvas:
    """A character canvas with data-space to cell-space projection."""

    def __init__(
        self,
        width: int = 60,
        height: int = 20,
        x_range: Tuple[float, float] = (0.0, 1.0),
        y_range: Tuple[float, float] = (0.0, 1.0),
    ) -> None:
        if width < 10 or height < 5:
            raise ValueError("canvas must be at least 10x5 characters")
        if x_range[0] >= x_range[1] or y_range[0] >= y_range[1]:
            raise ValueError("ranges must be increasing")
        self.width = width
        self.height = height
        self.x_range = x_range
        self.y_range = y_range
        self._cells: List[List[str]] = [[" "] * width for _ in range(height)]

    def _project(self, x: float, y: float) -> Optional[Tuple[int, int]]:
        x_low, x_high = self.x_range
        y_low, y_high = self.y_range
        if not (x_low <= x <= x_high and y_low <= y <= y_high):
            return None
        column = int(round((x - x_low) / (x_high - x_low) * (self.width - 1)))
        row = int(round((y - y_low) / (y_high - y_low) * (self.height - 1)))
        return self.height - 1 - row, column

    def plot(self, points: Sequence[Point], marker: str = "o") -> int:
        """Place ``marker`` at every in-range point; returns the number drawn."""
        if len(marker) != 1:
            raise ValueError("marker must be a single character")
        drawn = 0
        for x, y in points:
            cell = self._project(x, y)
            if cell is None:
                continue
            row, column = cell
            self._cells[row][column] = marker
            drawn += 1
        return drawn

    def render(self, x_label: str = "", y_label: str = "") -> str:
        """Render the canvas with a simple box, axis labels and ranges."""
        lines: List[str] = []
        y_low, y_high = self.y_range
        x_low, x_high = self.x_range
        lines.append(f"{y_high:10.3g} +" + "-" * self.width + "+")
        for row in self._cells:
            lines.append(" " * 11 + "|" + "".join(row) + "|")
        lines.append(f"{y_low:10.3g} +" + "-" * self.width + "+")
        footer = f"{'':11}{x_low:<10.3g}{x_label:^{max(0, self.width - 20)}}{x_high:>10.3g}"
        lines.append(footer)
        if y_label:
            lines.append(f"{'':11}(y: {y_label})")
        return "\n".join(lines)


def line_plot(
    series: Dict[str, Sequence[Point]],
    width: int = 60,
    height: int = 20,
    x_label: str = "earliness",
    y_label: str = "",
    title: str = "",
) -> str:
    """Plot several named series of (x, y) points on one ASCII canvas."""
    all_points = [point for points in series.values() for point in points]
    if not all_points:
        return f"{title}\n(no data)" if title else "(no data)"
    x_range = _bounds([x for x, _ in all_points], padding=0.02)
    y_range = _bounds([y for _, y in all_points], padding=0.05)
    canvas = AsciiCanvas(width=width, height=height, x_range=x_range, y_range=y_range)
    legend: List[str] = []
    for index, (name, points) in enumerate(series.items()):
        marker = SERIES_MARKERS[index % len(SERIES_MARKERS)]
        canvas.plot(points, marker=marker)
        legend.append(f"  {marker} {name}")
    parts = []
    if title:
        parts.append(title)
    parts.append(canvas.render(x_label=x_label, y_label=y_label))
    parts.append("legend:")
    parts.extend(legend)
    return "\n".join(parts)


def histogram(
    bins: Sequence[Tuple[float, float]],
    width: int = 40,
    title: str = "",
    bin_labels: Optional[Sequence[str]] = None,
) -> str:
    """Render ``(bin_position, proportion)`` pairs as a horizontal bar chart."""
    if not bins:
        return f"{title}\n(no data)" if title else "(no data)"
    if bin_labels is not None and len(bin_labels) != len(bins):
        raise ValueError("bin_labels length must match bins")
    peak = max(value for _, value in bins)
    peak = peak if peak > 0 else 1.0
    lines = [title] if title else []
    for index, (position, value) in enumerate(bins):
        label = bin_labels[index] if bin_labels else f"{position:6.1f}"
        bar = "#" * int(round(value / peak * width))
        lines.append(f"{label:>8} | {bar:<{width}} {value:.3f}")
    return "\n".join(lines)


def sparkline(values: Sequence[float], levels: str = " .:-=+*#%@") -> str:
    """A one-line sparkline of a value series (used by training-loss logs)."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = (high - low) or 1.0
    characters = []
    for value in values:
        index = int((value - low) / span * (len(levels) - 1))
        characters.append(levels[index])
    return "".join(characters)
