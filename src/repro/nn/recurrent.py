"""Recurrent layers: an LSTM cell and a thin full-sequence wrapper.

The EARLIEST baseline uses an LSTM encoder over each (per-key) sequence, and
KVEC's embedding-fusion block uses an LSTM-style multiple gating mechanism.
Both are built on :class:`LSTMCell`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class LSTMCell(Module):
    """A single LSTM cell operating on vectors (no batch dimension required).

    The gates follow the standard formulation:

    .. math::
        f_t = \\sigma(W_f [h_{t-1}; x_t] + b_f) \\\\
        i_t = \\sigma(W_i [h_{t-1}; x_t] + b_i) \\\\
        o_t = \\sigma(W_o [h_{t-1}; x_t] + b_o) \\\\
        c_t = f_t \\odot c_{t-1} + i_t \\odot \\tanh(W_c [h_{t-1}; x_t] + b_c) \\\\
        h_t = o_t \\odot \\tanh(c_t)
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
        forget_bias: float = 1.0,
    ) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        concat = input_size + hidden_size
        self.forget_gate = Linear(concat, hidden_size, rng=rng)
        self.input_gate = Linear(concat, hidden_size, rng=rng)
        self.output_gate = Linear(concat, hidden_size, rng=rng)
        self.cell_gate = Linear(concat, hidden_size, rng=rng)
        # A positive forget-gate bias is the standard trick to ease gradient
        # flow early in training.
        self.forget_gate.bias.data = init.ones((hidden_size,)) * forget_bias

    def init_state(self) -> Tuple[Tensor, Tensor]:
        """Return a zero (hidden, cell) state pair."""
        return (
            Tensor(np.zeros(self.hidden_size)),
            Tensor(np.zeros(self.hidden_size)),
        )

    def forward(
        self,
        x: Tensor,
        state: Optional[Tuple[Tensor, Tensor]] = None,
    ) -> Tuple[Tensor, Tensor]:
        """Advance one step.  ``x`` has shape ``(input_size,)``.

        Returns the new ``(hidden, cell)`` pair.
        """
        if state is None:
            state = self.init_state()
        hidden, cell = state
        combined = Tensor.concatenate([hidden, x], axis=-1)
        forget = F.sigmoid(self.forget_gate(combined))
        inp = F.sigmoid(self.input_gate(combined))
        out = F.sigmoid(self.output_gate(combined))
        candidate = F.tanh(self.cell_gate(combined))
        new_cell = forget * cell + inp * candidate
        new_hidden = out * F.tanh(new_cell)
        return new_hidden, new_cell

    def init_state_inference(self) -> Tuple[np.ndarray, np.ndarray]:
        """Zero (hidden, cell) state as raw arrays for the no-grad fast path."""
        return np.zeros(self.hidden_size), np.zeros(self.hidden_size)

    def step_inference(
        self, x: np.ndarray, state: Tuple[np.ndarray, np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Advance one step on raw arrays, mirroring :meth:`forward` numerics."""
        hidden, cell = state
        combined = np.concatenate([hidden, x])
        forget = F.sigmoid_array(self.forget_gate.forward_inference(combined))
        inp = F.sigmoid_array(self.input_gate.forward_inference(combined))
        out = F.sigmoid_array(self.output_gate.forward_inference(combined))
        candidate = np.tanh(self.cell_gate.forward_inference(combined))
        new_cell = forget * cell + inp * candidate
        new_hidden = out * np.tanh(new_cell)
        return new_hidden, new_cell

    def step_batch(
        self, xs: Tensor, states
    ) -> Tuple[Tensor, Tensor]:
        """Autograd twin of :meth:`step_batch_inference`: one gate GEMM.

        ``xs`` is a ``(B, input_size)`` tensor and ``states`` a sequence of
        ``B`` ``(hidden, cell)`` tensor pairs, one per independent stream.
        Returns stacked ``(B, hidden)`` / ``(B, cell)`` graph tensors.
        Parity contract: per-row numerics match :meth:`forward` (the
        per-sample training reference) up to BLAS summation order — the
        gates see the same concatenated inputs, just as a GEMM instead of
        ``B`` GEMVs.
        """
        hidden = Tensor.stack([state[0] for state in states])
        cell = Tensor.stack([state[1] for state in states])
        combined = Tensor.concatenate([hidden, xs], axis=-1)
        forget = F.sigmoid(self.forget_gate(combined))
        inp = F.sigmoid(self.input_gate(combined))
        out = F.sigmoid(self.output_gate(combined))
        candidate = F.tanh(self.cell_gate(combined))
        new_cell = forget * cell + inp * candidate
        new_hidden = out * F.tanh(new_cell)
        return new_hidden, new_cell

    def step_batch_inference(
        self, xs: np.ndarray, states
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One step for ``B`` *independent* cells in a single gate GEMM.

        ``xs`` has shape ``(B, input_size)`` and ``states`` is a sequence of
        ``B`` ``(hidden, cell)`` pairs (one per stream).  Returns the stacked
        ``(B, hidden)`` / ``(B, cell)`` arrays; per-row numerics match
        :meth:`step_inference` up to BLAS summation order.
        """
        hidden = np.stack([state[0] for state in states])
        cell = np.stack([state[1] for state in states])
        combined = np.concatenate([hidden, xs], axis=-1)
        forget = F.sigmoid_array(self.forget_gate.forward_inference(combined))
        inp = F.sigmoid_array(self.input_gate.forward_inference(combined))
        out = F.sigmoid_array(self.output_gate.forward_inference(combined))
        candidate = np.tanh(self.cell_gate.forward_inference(combined))
        new_cell = forget * cell + inp * candidate
        new_hidden = out * np.tanh(new_cell)
        return new_hidden, new_cell


class LSTM(Module):
    """Run an :class:`LSTMCell` over a full sequence of input vectors."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(
        self,
        inputs: Tensor,
        state: Optional[Tuple[Tensor, Tensor]] = None,
    ) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        """Encode ``inputs`` of shape ``(T, input_size)``.

        Returns ``(outputs, (hidden, cell))`` where ``outputs`` has shape
        ``(T, hidden_size)`` and the state is the final step's state.
        """
        hidden_states: List[Tensor] = []
        current = state
        for t in range(inputs.shape[0]):
            hidden, cell = self.cell(inputs[t], current)
            current = (hidden, cell)
            hidden_states.append(hidden)
        outputs = Tensor.stack(hidden_states, axis=0)
        return outputs, current

    def forward_inference(
        self,
        inputs: np.ndarray,
        state: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray]]:
        """Raw-array evaluation pass mirroring :meth:`forward` numerics."""
        current = self.cell.init_state_inference() if state is None else state
        outputs = np.empty((inputs.shape[0], self.hidden_size), dtype=np.float64)
        for t in range(inputs.shape[0]):
            current = self.cell.step_inference(inputs[t], current)
            outputs[t] = current[0]
        return outputs, current
