"""Running metrics for a live early-classification deployment.

The offline metrics of :mod:`repro.eval.metrics` need all prediction records
up front.  A deployment instead wants *running* numbers — accuracy and
earliness so far, per-class tallies, decision latency, throughput — updated
as each decision is emitted.  These aggregators are intentionally small and
allocation-free so they can sit on the serving hot path.

The fault-tolerance layer reports through the same primitives: each
:class:`~repro.serving.supervisor.ShardSupervisor` tracks its checkpoint
recovery latency in a :class:`Log2Histogram` (surfaced per shard in
``ServingCluster.stats()["health"]``), merging across shards by the same
plain count addition as the round-latency histograms here.  A caveat for
monitor consumers: shard monitors are serving state, so a crash recovery
rewinds the failed shard's :class:`ShardMonitor` to its last checkpoint
along with the sessions — supervisor counters (failures, restores, lost
arrivals) are the durable record of what happened in between.
"""

from __future__ import annotations

import dataclasses
import math
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from repro.core.model import PredictionRecord
from repro.eval.metrics import harmonic_mean
from repro.serving.engine import Decision


@dataclass
class ClassTally:
    """Per-class running counts."""

    decided: int = 0
    correct: int = 0

    @property
    def accuracy(self) -> float:
        return self.correct / self.decided if self.decided else 0.0


@dataclass(frozen=True)
class MonitorSnapshot:
    """Immutable point-in-time summary of a :class:`DecisionMonitor`.

    Safe to hand across shard boundaries: it shares no mutable state with
    the monitor it came from, so a cluster can publish per-shard snapshots
    while the shards keep serving.
    """

    num_decisions: int
    num_with_labels: int
    num_correct: int
    num_policy_halts: int
    total_observations: int
    total_confidence: float
    earliness_sum: float
    earliness_count: int
    accuracy: float
    earliness: float
    harmonic_mean: float
    mean_observations: float
    mean_confidence: float
    policy_halt_fraction: float
    per_class: Mapping[int, Tuple[int, int]]  # label -> (decided, correct)

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON view: string keys, lists, no dataclasses.

        ``json.loads(json.dumps(snap.to_dict())) == snap.to_dict()`` holds
        exactly, which is what lets ``/v1/stats`` serve snapshots without a
        custom encoder.
        """
        payload = dataclasses.asdict(self)
        payload["per_class"] = {
            str(label): list(tally) for label, tally in self.per_class.items()
        }
        return payload


class DecisionMonitor:
    """Aggregate decisions against (optionally available) ground truth.

    Labels are supplied once at construction (evaluation / shadow deployment)
    or omitted entirely (production), in which case only label-free statistics
    (observation counts, confidence, throughput of decisions) are maintained.
    """

    def __init__(
        self,
        labels: Optional[Dict[Hashable, int]] = None,
        sequence_lengths: Optional[Dict[Hashable, int]] = None,
    ) -> None:
        self.labels = dict(labels or {})
        self.sequence_lengths = dict(sequence_lengths or {})
        self.num_decisions = 0
        self.num_correct = 0
        self.num_with_labels = 0
        self.num_policy_halts = 0
        self.total_observations = 0
        self.total_confidence = 0.0
        self.earliness_sum = 0.0
        self.earliness_count = 0
        self.per_class: Dict[int, ClassTally] = {}
        self._records: List[PredictionRecord] = []

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def observe(self, decision: Decision) -> None:
        """Fold one decision into the running statistics."""
        self.num_decisions += 1
        self.total_observations += decision.observations
        self.total_confidence += decision.confidence
        if decision.halted_by_policy:
            self.num_policy_halts += 1

        label = self.labels.get(decision.key)
        if label is None:
            return
        self.num_with_labels += 1
        tally = self.per_class.setdefault(int(label), ClassTally())
        tally.decided += 1
        if decision.predicted == label:
            self.num_correct += 1
            tally.correct += 1
        length = self.sequence_lengths.get(decision.key)
        if length:
            self.earliness_sum += decision.observations / length
            self.earliness_count += 1
        self._records.append(
            decision.to_record(label, length or decision.observations)
        )

    def observe_all(self, decisions) -> None:
        for decision in decisions:
            self.observe(decision)

    # ------------------------------------------------------------------ #
    # aggregation across shards
    # ------------------------------------------------------------------ #
    def merge(self, other: "DecisionMonitor") -> "DecisionMonitor":
        """Fold another monitor's statistics into this one.

        Used to aggregate per-shard monitors into a cluster-level view.  All
        of ``other``'s state is *copied* — tallies, records, label maps — so
        the two monitors share no mutable structure and both can keep
        observing independently afterwards.  Returns ``self`` for chaining.
        """
        self.num_decisions += other.num_decisions
        self.num_correct += other.num_correct
        self.num_with_labels += other.num_with_labels
        self.num_policy_halts += other.num_policy_halts
        self.total_observations += other.total_observations
        self.total_confidence += other.total_confidence
        self.earliness_sum += other.earliness_sum
        self.earliness_count += other.earliness_count
        for label, tally in other.per_class.items():
            mine = self.per_class.setdefault(int(label), ClassTally())
            mine.decided += tally.decided
            mine.correct += tally.correct
        for key, label in other.labels.items():
            self.labels.setdefault(key, label)
        for key, length in other.sequence_lengths.items():
            self.sequence_lengths.setdefault(key, length)
        # PredictionRecord is a mutable dataclass: copy, don't alias, so the
        # no-shared-mutable-state contract holds for records() consumers too.
        self._records.extend(replace(record) for record in other._records)
        return self

    @classmethod
    def merged(cls, monitors: Iterable["DecisionMonitor"]) -> "DecisionMonitor":
        """A fresh monitor aggregating ``monitors`` (which stay untouched)."""
        combined = cls()
        for monitor in monitors:
            combined.merge(monitor)
        return combined

    def snapshot(self) -> MonitorSnapshot:
        """An immutable summary sharing no mutable state with the monitor."""
        return MonitorSnapshot(
            num_decisions=self.num_decisions,
            num_with_labels=self.num_with_labels,
            num_correct=self.num_correct,
            num_policy_halts=self.num_policy_halts,
            total_observations=self.total_observations,
            total_confidence=self.total_confidence,
            earliness_sum=self.earliness_sum,
            earliness_count=self.earliness_count,
            accuracy=self.accuracy,
            earliness=self.earliness,
            harmonic_mean=self.harmonic_mean,
            mean_observations=self.mean_observations,
            mean_confidence=self.mean_confidence,
            policy_halt_fraction=self.policy_halt_fraction,
            per_class={
                int(label): (tally.decided, tally.correct)
                for label, tally in self.per_class.items()
            },
        )

    # ------------------------------------------------------------------ #
    # running metrics
    # ------------------------------------------------------------------ #
    @property
    def accuracy(self) -> float:
        return self.num_correct / self.num_with_labels if self.num_with_labels else 0.0

    @property
    def earliness(self) -> float:
        return self.earliness_sum / self.earliness_count if self.earliness_count else 0.0

    @property
    def harmonic_mean(self) -> float:
        return harmonic_mean(self.accuracy, self.earliness)

    @property
    def mean_observations(self) -> float:
        return self.total_observations / self.num_decisions if self.num_decisions else 0.0

    @property
    def mean_confidence(self) -> float:
        return self.total_confidence / self.num_decisions if self.num_decisions else 0.0

    @property
    def policy_halt_fraction(self) -> float:
        return self.num_policy_halts / self.num_decisions if self.num_decisions else 0.0

    def records(self) -> List[PredictionRecord]:
        """All labelled decisions converted to prediction records."""
        return list(self._records)

    def report(self) -> str:
        """A compact multi-line status report."""
        lines = [
            f"decisions            {self.num_decisions}",
            f"labelled decisions   {self.num_with_labels}",
            f"accuracy             {self.accuracy * 100:6.2f}%",
            f"earliness            {self.earliness * 100:6.2f}%",
            f"harmonic mean        {self.harmonic_mean:.3f}",
            f"mean observations    {self.mean_observations:.2f}",
            f"mean confidence      {self.mean_confidence:.3f}",
            f"policy-halt fraction {self.policy_halt_fraction * 100:6.2f}%",
        ]
        if self.per_class:
            lines.append("per-class accuracy:")
            for label in sorted(self.per_class):
                tally = self.per_class[label]
                lines.append(
                    f"  class {label:<3} decided={tally.decided:<5} accuracy={tally.accuracy * 100:6.2f}%"
                )
        return "\n".join(lines)


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable summary of a :class:`Log2Histogram`."""

    count: int
    total: float
    minimum: float
    maximum: float
    mean: float
    p50: float
    p95: float
    p99: float
    #: Sparse ``bucket index -> count`` view of the non-empty buckets.
    buckets: Mapping[int, int]

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON view; bucket keys become strings (JSON object keys)."""
        return {
            "count": self.count,
            "total": self.total,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "buckets": {str(index): count for index, count in self.buckets.items()},
        }


class Log2Histogram:
    """Fixed-geometry power-of-two histogram for hot-path gauges.

    Buckets are shared by every instance (bucket ``k`` counts values in
    ``(2**(k-1+MIN_EXP), 2**(k+MIN_EXP)]``, clamped at both ends), so two
    histograms merge by plain count addition — no bucket negotiation, no
    allocation on ``observe``.  The range ``2**MIN_EXP .. 2**MAX_EXP``
    (≈ 1e-3 .. 16384) covers sub-millisecond round latencies and deep queue
    backlogs alike.  Percentiles are read from the bucket counts as the
    bucket upper edge — a ≤2x overestimate by construction, which is the
    usual contract of log-bucketed latency telemetry.
    """

    MIN_EXP = -10
    MAX_EXP = 14
    NUM_BUCKETS = MAX_EXP - MIN_EXP + 1

    __slots__ = ("counts", "count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.counts = [0] * self.NUM_BUCKETS
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    @classmethod
    def bucket_of(cls, value: float) -> int:
        """The bucket index a value falls into (edges are powers of two)."""
        if value <= 2.0 ** cls.MIN_EXP:
            return 0
        exponent = math.ceil(math.log2(value))
        return min(cls.NUM_BUCKETS - 1, int(exponent) - cls.MIN_EXP)

    @classmethod
    def bucket_upper_edge(cls, index: int) -> float:
        return 2.0 ** (index + cls.MIN_EXP)

    def observe(self, value: float) -> None:
        """Fold one non-negative sample into the histogram."""
        if value < 0:
            raise ValueError("histogram values must be non-negative")
        self.counts[self.bucket_of(value)] += 1
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, quantile: float) -> float:
        """Upper bucket edge at the given quantile (0 when empty)."""
        if not 0.0 < quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if not self.count:
            return 0.0
        rank = math.ceil(quantile * self.count)
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                return min(self.bucket_upper_edge(index), self.maximum)
        return self.maximum  # pragma: no cover - rank <= count always hits

    # ------------------------------------------------------------------ #
    # aggregation across shards
    # ------------------------------------------------------------------ #
    def merge(self, other: "Log2Histogram") -> "Log2Histogram":
        """Fold another histogram in (bucket geometry is shared by design)."""
        for index in range(self.NUM_BUCKETS):
            self.counts[index] += other.counts[index]
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    @classmethod
    def merged(cls, histograms: Iterable["Log2Histogram"]) -> "Log2Histogram":
        """A fresh histogram aggregating ``histograms`` (left untouched)."""
        combined = cls()
        for histogram in histograms:
            combined.merge(histogram)
        return combined

    def snapshot(self) -> HistogramSnapshot:
        empty = not self.count
        return HistogramSnapshot(
            count=self.count,
            total=self.total,
            minimum=0.0 if empty else self.minimum,
            maximum=0.0 if empty else self.maximum,
            mean=self.mean,
            p50=self.percentile(0.50),
            p95=self.percentile(0.95),
            p99=self.percentile(0.99),
            buckets={
                index: count for index, count in enumerate(self.counts) if count
            },
        )

    def summary(self) -> Dict[str, float]:
        """Compact dict view for ``ServingCluster.stats()`` consumers."""
        snap = self.snapshot()
        return {
            "count": snap.count,
            "mean": snap.mean,
            "p50": snap.p50,
            "p95": snap.p95,
            "p99": snap.p99,
            "max": snap.maximum,
        }


@dataclass(frozen=True)
class ShardMonitorSnapshot:
    """Immutable summary of one shard's drain-round health."""

    rounds: int
    rows: int
    round_latency_ms: HistogramSnapshot
    queue_depth: HistogramSnapshot
    #: Worker-process encode latency (process backend only; empty otherwise).
    encode_latency_ms: Optional[HistogramSnapshot] = None
    #: Per-round transport payload bytes (process backend only).
    transport_bytes: Optional[HistogramSnapshot] = None
    #: Per-round caller-side encode+decode wall-clock (process backend only).
    serialize_ms: Optional[HistogramSnapshot] = None

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON view: nested histograms render via their ``to_dict``."""
        payload: Dict[str, object] = {"rounds": self.rounds, "rows": self.rows}
        for name in (
            "round_latency_ms",
            "queue_depth",
            "encode_latency_ms",
            "transport_bytes",
            "serialize_ms",
        ):
            histogram = getattr(self, name)
            payload[name] = None if histogram is None else histogram.to_dict()
        return payload


class ShardMonitor:
    """Drain-round telemetry of one shard worker.

    Two gauges per round: the queue depth the round found (how loaded the
    shard runs) and the round's wall-clock latency (what one drain costs).
    These are exactly the signals the adaptive batch controller steers on,
    published so operators can see what the controller sees.  Like
    :class:`DecisionMonitor`, shard monitors are worker-local and mergeable
    into an exact cluster-level view.

    Under the process backend each round also reports the wall-clock cost
    of its replica-side serving (``encode_latency_ms`` — the worker-process
    slice of the round, measured inside the worker and shipped back with
    the decisions) plus the round-transport cost of shipping it:
    ``transport_bytes`` (bulk payload bytes, entries out + decisions back)
    and ``serialize_ms`` (the caller-side encode+decode wall-clock — the
    pickling cost on the pipe transport, the flat-pack copy cost on the
    shm transport).  All three histograms stay empty on the serial and
    thread backends.
    """

    def __init__(self) -> None:
        self.rounds = 0
        self.rows = 0
        self.round_latency_ms = Log2Histogram()
        self.queue_depth = Log2Histogram()
        self.encode_latency_ms = Log2Histogram()
        self.transport_bytes = Log2Histogram()
        self.serialize_ms = Log2Histogram()

    def observe_round(self, queue_depth: int, rows: int, elapsed_ms: float) -> None:
        """Record one drain round: depth at round start, rows served, cost."""
        self.rounds += 1
        self.rows += rows
        self.round_latency_ms.observe(elapsed_ms)
        self.queue_depth.observe(float(queue_depth))

    def observe_encode(self, elapsed_ms: float) -> None:
        """Record one round's worker-reported encode latency (process)."""
        self.encode_latency_ms.observe(elapsed_ms)

    def observe_transport(self, nbytes: float, serialize_ms: float) -> None:
        """Record one round's transport cost (process backend)."""
        self.transport_bytes.observe(nbytes)
        self.serialize_ms.observe(serialize_ms)

    def merge(self, other: "ShardMonitor") -> "ShardMonitor":
        """Fold another shard's telemetry in; returns ``self`` for chaining."""
        self.rounds += other.rounds
        self.rows += other.rows
        self.round_latency_ms.merge(other.round_latency_ms)
        self.queue_depth.merge(other.queue_depth)
        # Monitors restored from checkpoints/pickles recorded before these
        # histograms existed may lack them; treat a missing one as empty.
        for name in ("encode_latency_ms", "transport_bytes", "serialize_ms"):
            other_hist = getattr(other, name, None)
            if other_hist is not None:
                getattr(self, name).merge(other_hist)
        return self

    @classmethod
    def merged(cls, monitors: Iterable["ShardMonitor"]) -> "ShardMonitor":
        """A fresh monitor aggregating ``monitors`` (left untouched)."""
        combined = cls()
        for monitor in monitors:
            combined.merge(monitor)
        return combined

    def snapshot(self) -> ShardMonitorSnapshot:
        return ShardMonitorSnapshot(
            rounds=self.rounds,
            rows=self.rows,
            round_latency_ms=self.round_latency_ms.snapshot(),
            queue_depth=self.queue_depth.snapshot(),
            encode_latency_ms=self.encode_latency_ms.snapshot(),
            transport_bytes=self.transport_bytes.snapshot(),
            serialize_ms=self.serialize_ms.snapshot(),
        )


class ThroughputMeter:
    """Items per unit of time over a (optionally sliding) checkpoint span.

    Without a ``window`` the meter averages over its whole lifetime — the
    simulated-time usage the arrival benchmarks rely on.  With ``window=w``
    only the last ``w`` time units of checkpoints are retained and ``rate``
    becomes a sliding-window gauge: that is how
    :meth:`~repro.serving.cluster.ServingCluster.stats` reports wall-clock
    ``items_per_s`` / ``decisions_per_s`` without unbounded growth.  The
    oldest retained checkpoint is allowed to straddle the window edge so
    the measured span never collapses below the observed data.

    ``granularity`` bounds the retained checkpoints at ~``window /
    granularity`` however fast events arrive — the hot-path configuration:
    the newest tick always becomes the latest checkpoint, and intermediate
    checkpoints closer together than the granularity are merged away (rate
    error at most one granularity out of one window).  Without it every
    tick is retained exactly.
    """

    def __init__(
        self, window: Optional[float] = None, granularity: Optional[float] = None
    ) -> None:
        if window is not None and window <= 0:
            raise ValueError("window must be positive (or None for unbounded)")
        if granularity is not None and granularity <= 0:
            raise ValueError("granularity must be positive (or None for exact)")
        self.window = window
        self.granularity = granularity
        self._checkpoints: Deque[Tuple[float, int]] = deque()
        self.items = 0

    def tick(self, time: float, items: int = 1) -> None:
        """Record that ``items`` arrivals were processed at ``time``."""
        if items < 0:
            raise ValueError("items must be non-negative")
        self.items += items
        if self._checkpoints and time < self._checkpoints[-1][0]:
            raise ValueError("time must be non-decreasing")
        if (
            self.granularity is not None
            and len(self._checkpoints) >= 2
            and time - self._checkpoints[-2][0] < self.granularity
        ):
            # The previous latest checkpoint is within one granularity of
            # its predecessor once this tick lands: subsume it, keeping the
            # newest tick as the live endpoint of the measured span.
            self._checkpoints.pop()
        self._checkpoints.append((time, self.items))
        if self.window is not None:
            cutoff = time - self.window
            # Keep one checkpoint at/before the cutoff as the rate baseline.
            while len(self._checkpoints) > 1 and self._checkpoints[1][0] <= cutoff:
                self._checkpoints.popleft()

    @property
    def elapsed(self) -> float:
        """Time span covered by the retained checkpoints."""
        if len(self._checkpoints) < 2:
            return 0.0
        return self._checkpoints[-1][0] - self._checkpoints[0][0]

    @property
    def rate(self) -> float:
        """Items per unit of time over the retained span (0 when undefined)."""
        if self.elapsed <= 0:
            return 0.0
        first_items = self._checkpoints[0][1]
        return (self.items - first_items) / self.elapsed
