"""Common containers for generated datasets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.data.items import KeyValueSequence, ValueSpec


@dataclass
class DatasetStatistics:
    """The summary statistics reported in Table I of the paper."""

    name: str
    num_keys: int
    avg_sequence_length: float
    avg_session_length: float
    num_classes: int

    def as_row(self) -> Tuple[str, int, float, float, int]:
        return (
            self.name,
            self.num_keys,
            round(self.avg_sequence_length, 1),
            round(self.avg_session_length, 1),
            self.num_classes,
        )


@dataclass
class GeneratedDataset:
    """A generated dataset: labelled per-key sequences plus their schema.

    Attributes
    ----------
    name:
        Dataset identifier (matches the paper's dataset names).
    sequences:
        One labelled :class:`KeyValueSequence` per key.
    spec:
        Schema of the value field.
    num_classes:
        Number of distinct labels.
    class_names:
        Optional human-readable label names.
    true_stop_positions:
        Only set for the Synthetic-Traffic dataset: the ground-truth halting
        position (1-based item count) per key, used by the Fig. 11 experiment.
    """

    name: str
    sequences: List[KeyValueSequence]
    spec: ValueSpec
    num_classes: int
    class_names: Tuple[str, ...] = ()
    true_stop_positions: Dict[Hashable, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        labels = {sequence.label for sequence in self.sequences}
        if None in labels:
            raise ValueError("every generated sequence must be labelled")
        for label in labels:
            if not 0 <= int(label) < self.num_classes:
                raise ValueError(
                    f"label {label} outside [0, {self.num_classes}) in dataset {self.name}"
                )

    def __len__(self) -> int:
        return len(self.sequences)

    def labels(self) -> Dict[Hashable, int]:
        """Mapping from key to label over all sequences."""
        return {sequence.key: int(sequence.label) for sequence in self.sequences}

    def sequences_of_class(self, label: int) -> List[KeyValueSequence]:
        return [sequence for sequence in self.sequences if sequence.label == label]
