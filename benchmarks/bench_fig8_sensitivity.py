"""Figure 8: sensitivity of accuracy and earliness to alpha and beta."""

from benchmarks.conftest import run_and_record


def test_fig8_hyperparameter_sensitivity(benchmark, scale_name):
    result = run_and_record(benchmark, "fig8_sensitivity", scale_name)
    assert result.alpha_series and result.beta_series
    # The beta (time penalty) sweep must actually move the operating point.
    earliness_values = [earliness for _, _, earliness in result.beta_series]
    assert max(earliness_values) - min(earliness_values) >= 0.0
    accuracies = [accuracy for _, accuracy, _ in result.alpha_series + result.beta_series]
    assert all(0.0 <= value <= 1.0 for value in accuracies)
