"""Tests for the dataset registry, base containers and Table I statistics."""

import pytest

from repro.data.items import Item, KeyValueSequence, ValueSpec
from repro.datasets.base import DatasetStatistics, GeneratedDataset
from repro.datasets.registry import DATASET_BUILDERS, PAPER_STATISTICS, build_dataset
from repro.datasets.stats import compute_statistics, statistics_table


class TestRegistry:
    def test_all_paper_datasets_registered(self):
        assert set(DATASET_BUILDERS) == {
            "USTC-TFC2016",
            "MovieLens-1M",
            "Traffic-FG",
            "Traffic-App",
            "Synthetic-Traffic",
        }

    def test_paper_statistics_cover_all_datasets(self):
        assert set(PAPER_STATISTICS) == set(DATASET_BUILDERS)

    def test_build_dataset_by_name(self):
        dataset = build_dataset("USTC-TFC2016", num_keys=18, seed=1)
        assert len(dataset) == 18

    def test_build_dataset_forwards_overrides(self):
        dataset = build_dataset("Synthetic-Traffic", num_keys=8, subset="late", flow_length=30)
        assert "late" in dataset.name

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            build_dataset("no-such-dataset")

    def test_paper_statistics_match_table1_values(self):
        stats = PAPER_STATISTICS["MovieLens-1M"]
        assert stats.num_keys == 6040
        assert stats.avg_sequence_length == pytest.approx(163.5)
        assert stats.num_classes == 2


class TestGeneratedDatasetContainer:
    def make_dataset(self, labels):
        spec = ValueSpec(("v",), (4,), 0)
        sequences = [
            KeyValueSequence(f"k{i}", [Item(f"k{i}", (0,), 0.0)], label)
            for i, label in enumerate(labels)
        ]
        return GeneratedDataset("toy", sequences, spec, num_classes=2)

    def test_labels_mapping(self):
        dataset = self.make_dataset([0, 1, 1])
        assert dataset.labels() == {"k0": 0, "k1": 1, "k2": 1}

    def test_sequences_of_class(self):
        dataset = self.make_dataset([0, 1, 1])
        assert len(dataset.sequences_of_class(1)) == 2

    def test_out_of_range_label_rejected(self):
        with pytest.raises(ValueError):
            self.make_dataset([0, 5])

    def test_unlabelled_sequence_rejected(self):
        with pytest.raises(ValueError):
            self.make_dataset([0, None])


class TestStatistics:
    def test_compute_statistics_fields(self):
        dataset = build_dataset("USTC-TFC2016", num_keys=18, seed=1)
        stats = compute_statistics(dataset)
        assert isinstance(stats, DatasetStatistics)
        assert stats.num_keys == 18
        assert stats.num_classes == 9
        assert stats.avg_sequence_length > 0
        assert stats.avg_session_length >= 1.0

    def test_statistics_table_renders_all_rows(self):
        datasets = [build_dataset("USTC-TFC2016", num_keys=9, seed=1)]
        table = statistics_table(datasets)
        assert "USTC-TFC2016" in table
        assert "#keys" in table

    def test_as_row_rounding(self):
        stats = DatasetStatistics("x", 10, 12.345, 6.789, 3)
        assert stats.as_row() == ("x", 10, 12.3, 6.8, 3)
