"""Tests for the live-arrival simulator."""

import numpy as np
import pytest

from repro.data.items import Item, KeyValueSequence, ValueSpec
from repro.serving.simulator import (
    ArrivalSimulator,
    MultiStreamConfig,
    MultiStreamSimulator,
    SimulatorConfig,
)

SPEC = ValueSpec(("v", "d"), (4, 2), 1)


def make_sequence(key, length, label=0):
    items = [Item(key, (i % 4, i % 2), float(i)) for i in range(length)]
    return KeyValueSequence(key, items, label)


def make_pool(num=6, length=5):
    return [make_sequence(f"k{i}", length, label=i % 2) for i in range(num)]


class TestSimulatorConfig:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            SimulatorConfig(arrival_rate=0.0)

    def test_invalid_gap_scale(self):
        with pytest.raises(ValueError):
            SimulatorConfig(gap_scale=-1.0)


class TestArrivalSimulator:
    def test_requires_sequences(self):
        with pytest.raises(ValueError):
            ArrivalSimulator([])

    def test_rejects_unlabelled_sequences(self):
        sequence = make_sequence("a", 3)
        sequence.label = None
        with pytest.raises(ValueError):
            ArrivalSimulator([sequence])

    def test_emits_every_item_in_chronological_order(self):
        pool = make_pool(num=5, length=4)
        simulator = ArrivalSimulator(pool, SimulatorConfig(seed=0))
        events = list(simulator.events())
        assert len(events) == 20
        times = [event.time for event in events]
        assert times == sorted(times)

    def test_per_key_order_preserved(self):
        pool = make_pool(num=4, length=6)
        simulator = ArrivalSimulator(pool, SimulatorConfig(seed=1))
        seen = {}
        for event in simulator.events():
            seen.setdefault(event.key, []).append(event.time)
        for times in seen.values():
            assert times == sorted(times)
            assert len(times) == 6

    def test_labels_and_lengths_exposed(self):
        pool = make_pool(num=4, length=3)
        simulator = ArrivalSimulator(pool, SimulatorConfig(seed=0))
        assert simulator.labels == {"k0": 0, "k1": 1, "k2": 0, "k3": 1}
        assert simulator.sequence_lengths == {f"k{i}": 3 for i in range(4)}

    def test_deterministic_given_seed(self):
        pool = make_pool()
        first = [event.time for event in ArrivalSimulator(pool, SimulatorConfig(seed=5)).events()]
        second = [event.time for event in ArrivalSimulator(pool, SimulatorConfig(seed=5)).events()]
        assert first == second

    def test_max_active_bounds_concurrency(self):
        pool = make_pool(num=12, length=8)
        config = SimulatorConfig(arrival_rate=50.0, max_active=3, seed=0)
        simulator = ArrivalSimulator(pool, config)
        assert simulator.peak_concurrency() <= 3

    def test_higher_rate_gives_more_overlap(self):
        pool = make_pool(num=10, length=10)
        slow = ArrivalSimulator(pool, SimulatorConfig(arrival_rate=0.01, seed=0))
        fast = ArrivalSimulator(pool, SimulatorConfig(arrival_rate=100.0, seed=0))
        assert fast.peak_concurrency() >= slow.peak_concurrency()

    def test_concurrency_profile_shape(self):
        simulator = ArrivalSimulator(make_pool(), SimulatorConfig(seed=0))
        profile = simulator.concurrency_profile(resolution=10)
        assert len(profile) == 11
        assert all(active >= 0 for _, active in profile)
        assert max(active for _, active in profile) == simulator.peak_concurrency()


class TestMaxActiveHeadOfLine:
    """FIFO c-server semantics of the fixed max_active admission."""

    def _starts(self, simulator):
        return [entry.start for entry in simulator._schedule]

    def test_delayed_keys_consume_distinct_releases(self):
        """Every delayed key starts exactly at one earlier key's end, and no
        two delayed keys share a start — the old implementation piled the
        whole busy-period backlog onto the same release tick."""
        pool = make_pool(num=20, length=8)
        config = SimulatorConfig(arrival_rate=50.0, max_active=3, seed=0)
        simulator = ArrivalSimulator(pool, config)
        schedule = simulator._schedule
        ends = set()
        delayed_starts = []
        for rank, entry in enumerate(schedule):
            if rank >= config.max_active:
                delayed_starts.append(entry.start)
                assert entry.start in ends, "a delayed key must start on a release"
            ends.add(entry.end)
        assert len(set(delayed_starts)) == len(delayed_starts)

    def test_arrival_process_not_distorted_by_waiting(self):
        """Keys admitted without waiting keep the start times of the
        unbounded run: waiting must never advance the Poisson arrival clock
        (the head-of-line bug serialized every later arrival after a busy
        period)."""
        pool = make_pool(num=16, length=6)
        free = ArrivalSimulator(pool, SimulatorConfig(arrival_rate=5.0, seed=2))
        bounded = ArrivalSimulator(
            pool, SimulatorConfig(arrival_rate=5.0, max_active=2, seed=2)
        )
        for unbounded_entry, bounded_entry in zip(free._schedule, bounded._schedule):
            assert bounded_entry.key == unbounded_entry.key
            # A bounded start is either the undistorted arrival time or a
            # strictly later slot release — never earlier.
            assert bounded_entry.start >= unbounded_entry.start - 1e-12

    def test_still_bounds_concurrency(self):
        pool = make_pool(num=24, length=10)
        simulator = ArrivalSimulator(
            pool, SimulatorConfig(arrival_rate=100.0, max_active=4, seed=1)
        )
        assert simulator.peak_concurrency() <= 4


class TestKeySkew:
    def test_rejects_negative_skew(self):
        with pytest.raises(ValueError):
            SimulatorConfig(key_skew=-0.5)

    def test_zero_skew_matches_default(self):
        pool = make_pool(num=8, length=4)
        plain = ArrivalSimulator(pool, SimulatorConfig(seed=4))
        explicit = ArrivalSimulator(pool, SimulatorConfig(seed=4, key_skew=0.0))
        assert [e.time for e in plain.events()] == [e.time for e in explicit.events()]

    def test_hot_head_starts_faster_than_cold_tail(self):
        """Zipf skew compresses the hot head of the start order and spreads
        the cold tail: early-rank start gaps must be smaller on average."""
        pool = make_pool(num=40, length=3)
        simulator = ArrivalSimulator(
            pool, SimulatorConfig(arrival_rate=1.0, key_skew=2.0, seed=0)
        )
        starts = [entry.start for entry in simulator._schedule]
        gaps = np.diff(starts)
        head = gaps[: len(gaps) // 4]
        tail = gaps[-len(gaps) // 4 :]
        assert head.mean() < tail.mean() / 10

    def test_deterministic_given_seed(self):
        pool = make_pool(num=10, length=3)
        config = SimulatorConfig(key_skew=1.5, seed=9)
        first = [e.time for e in ArrivalSimulator(pool, config).events()]
        second = [e.time for e in ArrivalSimulator(pool, config).events()]
        assert first == second


class TestArrivalPatterns:
    """Burst and diurnal start-rate modulation (mean-preserving by design)."""

    def _mean_start_gap(self, pattern, num=1500, **kwargs):
        pool = make_pool(num=num, length=2)
        simulator = ArrivalSimulator(
            pool, SimulatorConfig(arrival_rate=1.0, seed=11, pattern=pattern, **kwargs)
        )
        starts = sorted(entry.start for entry in simulator._schedule)
        return (starts[-1] - starts[0]) / (len(starts) - 1)

    def test_rejects_invalid_pattern_config(self):
        with pytest.raises(ValueError):
            SimulatorConfig(pattern="square")
        with pytest.raises(ValueError):
            SimulatorConfig(pattern="burst", burst_duty=0.0)
        with pytest.raises(ValueError):
            SimulatorConfig(pattern="burst", burst_floor=1.5)
        with pytest.raises(ValueError):
            SimulatorConfig(pattern="burst", burst_period=0.0)
        with pytest.raises(ValueError):
            SimulatorConfig(pattern="diurnal", diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            SimulatorConfig(pattern="diurnal", diurnal_period=-2.0)

    def test_poisson_pattern_matches_legacy_schedule(self):
        """pattern="poisson" must reproduce the unmodulated schedule draw for
        draw (the hazard-space clock is the identity there)."""
        pool = make_pool(num=12, length=4)
        legacy = ArrivalSimulator(pool, SimulatorConfig(seed=5))
        explicit = ArrivalSimulator(pool, SimulatorConfig(seed=5, pattern="poisson"))
        assert [e.start for e in legacy._schedule] == [
            e.start for e in explicit._schedule
        ]

    @pytest.mark.parametrize(
        "pattern,kwargs",
        [
            ("burst", {}),
            ("burst", {"burst_floor": 0.4, "burst_duty": 0.5}),
            ("diurnal", {}),
            ("diurnal", {"diurnal_amplitude": 0.95}),
        ],
    )
    def test_mean_rate_preserved(self, pattern, kwargs):
        """The modulation profile has mean 1 over its period, so the mean
        start gap must match the nominal 1/arrival_rate closely."""
        baseline = self._mean_start_gap("poisson")
        modulated = self._mean_start_gap(pattern, **kwargs)
        assert modulated == pytest.approx(1.0, rel=0.05)
        assert modulated == pytest.approx(baseline, rel=0.05)

    def test_burst_confines_starts_to_on_windows(self):
        """With a fully quiet off phase every key start must land inside the
        duty window of its period."""
        pool = make_pool(num=400, length=2)
        config = SimulatorConfig(
            arrival_rate=1.0, seed=3, pattern="burst",
            burst_period=16.0, burst_duty=0.25, burst_floor=0.0,
        )
        simulator = ArrivalSimulator(pool, config)
        for entry in simulator._schedule:
            assert entry.start % 16.0 <= 4.0 + 1e-9

    def test_burst_floor_keeps_off_phase_alive_but_sparse(self):
        pool = make_pool(num=2000, length=2)
        config = SimulatorConfig(
            arrival_rate=1.0, seed=9, pattern="burst",
            burst_period=16.0, burst_duty=0.25, burst_floor=0.2,
        )
        simulator = ArrivalSimulator(pool, config)
        on = sum(1 for e in simulator._schedule if e.start % 16.0 <= 4.0)
        off = len(simulator._schedule) - on
        assert off > 0  # the floor keeps some off-phase traffic
        # on-phase rate is (1 - 0.75*0.2)/0.25 = 3.4x nominal vs 0.2x off:
        # with equal-ish span shares of 1:3 the on-phase still dominates.
        assert on > 4 * off

    def test_diurnal_concentrates_starts_at_peak_phase(self):
        """The sinusoid peaks in the first half-period (sin > 0) and bottoms
        in the second: the first half must receive substantially more
        starts."""
        pool = make_pool(num=3000, length=2)
        config = SimulatorConfig(
            arrival_rate=1.0, seed=7, pattern="diurnal",
            diurnal_period=64.0, diurnal_amplitude=0.9,
        )
        simulator = ArrivalSimulator(pool, config)
        first_half = sum(1 for e in simulator._schedule if e.start % 64.0 < 32.0)
        second_half = len(simulator._schedule) - first_half
        assert first_half > 1.8 * second_half

    def test_modulated_rate_exposes_the_profile(self):
        pool = make_pool(num=4, length=2)
        config = SimulatorConfig(
            arrival_rate=2.0, seed=0, pattern="burst",
            burst_period=10.0, burst_duty=0.5, burst_floor=0.0,
        )
        simulator = ArrivalSimulator(pool, config)
        assert simulator.modulated_rate(1.0) == pytest.approx(4.0)  # on: 2x rate
        assert simulator.modulated_rate(7.0) == 0.0  # off phase
        diurnal = ArrivalSimulator(
            pool,
            SimulatorConfig(
                arrival_rate=1.0, pattern="diurnal",
                diurnal_period=8.0, diurnal_amplitude=0.5,
            ),
        )
        assert diurnal.modulated_rate(2.0) == pytest.approx(1.5)  # sin peak
        assert diurnal.modulated_rate(6.0) == pytest.approx(0.5)  # trough

    def test_deterministic_given_seed(self):
        pool = make_pool(num=30, length=3)
        config = SimulatorConfig(seed=13, pattern="diurnal", diurnal_amplitude=0.7)
        first = [e.time for e in ArrivalSimulator(pool, config).events()]
        second = [e.time for e in ArrivalSimulator(pool, config).events()]
        assert first == second

    def test_patterns_compose_with_key_skew_and_max_active(self):
        pool = make_pool(num=40, length=6)
        config = SimulatorConfig(
            arrival_rate=10.0, seed=2, pattern="burst", key_skew=1.0, max_active=4
        )
        simulator = ArrivalSimulator(pool, config)
        assert simulator.peak_concurrency() <= 4
        times = [event.time for event in simulator.events()]
        assert times == sorted(times)

    def test_multi_stream_patterns_flow_through(self):
        """MultiStreamSimulator propagates the pattern to every stream; the
        merged timeline stays chronological, source-tagged, and bursty."""
        pool = make_pool(num=240, length=2)
        config = MultiStreamConfig(
            num_streams=4,
            simulator=SimulatorConfig(
                arrival_rate=1.0, seed=5, pattern="burst",
                burst_period=16.0, burst_duty=0.25, burst_floor=0.0,
            ),
        )
        simulator = MultiStreamSimulator(pool, config)
        events = list(simulator.events())
        assert len(events) == 480
        times = [event.time for event in events]
        assert times == sorted(times)
        # every key's start (its first event) obeys the duty window
        seen = set()
        for event in events:
            if event.key not in seen:
                seen.add(event.key)
                assert event.time % 16.0 <= 4.0 + 1e-9


class TestMultiStreamSimulator:
    def test_partition_is_complete_and_disjoint(self):
        pool = make_pool(num=24, length=3)
        simulator = MultiStreamSimulator(pool, MultiStreamConfig(num_streams=4))
        stream_of = simulator.stream_of
        assert set(stream_of) == {sequence.key for sequence in pool}
        assert sum(simulator.stream_share.values()) == len(pool)

    def test_events_are_source_tagged_and_chronological(self):
        pool = make_pool(num=12, length=4)
        simulator = MultiStreamSimulator(pool, MultiStreamConfig(num_streams=3))
        events = list(simulator.events())
        assert len(events) == 12 * 4
        times = [event.time for event in events]
        assert times == sorted(times)
        stream_of = simulator.stream_of
        for event in events:
            assert event.source == stream_of[event.key]

    def test_deterministic_given_seed(self):
        pool = make_pool(num=10, length=3)
        config = MultiStreamConfig(num_streams=3, simulator=SimulatorConfig(seed=7))
        first = [(e.time, e.key, e.source) for e in MultiStreamSimulator(pool, config).events()]
        second = [(e.time, e.key, e.source) for e in MultiStreamSimulator(pool, config).events()]
        assert first == second

    def test_stream_skew_concentrates_traffic(self):
        pool = make_pool(num=60, length=2)
        uniform = MultiStreamSimulator(
            pool, MultiStreamConfig(num_streams=6, stream_skew=0.0)
        )
        skewed = MultiStreamSimulator(
            pool, MultiStreamConfig(num_streams=6, stream_skew=2.0)
        )
        assert max(skewed.stream_share.values()) > max(uniform.stream_share.values())

    def test_labels_and_lengths_union(self):
        pool = make_pool(num=9, length=5)
        simulator = MultiStreamSimulator(pool, MultiStreamConfig(num_streams=3))
        assert simulator.labels == {sequence.key: sequence.label for sequence in pool}
        assert simulator.sequence_lengths == {sequence.key: 5 for sequence in pool}

    def test_rejects_duplicate_keys(self):
        pool = [make_sequence("dup", 3), make_sequence("dup", 4)]
        with pytest.raises(ValueError, match="unique"):
            MultiStreamSimulator(pool)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            MultiStreamConfig(num_streams=0)
        with pytest.raises(ValueError):
            MultiStreamConfig(stream_skew=-1.0)
