"""SRN-Fixed: halt every sequence after a fixed number of observed items.

The halting time ``τ`` (Table II) is the single hyperparameter trading off
earliness against accuracy; sweeping it traces the baseline's
performance-vs-earliness curve.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.prefix import PrefixSRNClassifier, PrefixSRNConfig
from repro.core.model import PredictionRecord
from repro.data.items import KeyValueSequence, ValueSpec


class SRNFixed(PrefixSRNClassifier):
    """Prefix-supervised SRN with the fixed-time halting rule."""

    name = "SRN-Fixed"

    def __init__(
        self,
        spec: ValueSpec,
        num_classes: int,
        halt_time: int = 5,
        config: Optional[PrefixSRNConfig] = None,
    ) -> None:
        super().__init__(spec, num_classes, config)
        if halt_time < 1:
            raise ValueError("halt_time must be at least 1")
        self.halt_time = halt_time

    def _predict_sequence(self, key, sequence: KeyValueSequence, label: int) -> PredictionRecord:
        halt_step = min(self.halt_time, len(sequence))
        probabilities = self.prefix_probabilities(sequence.prefix(halt_step))
        final = probabilities[-1]
        return PredictionRecord(
            key=key,
            predicted=int(np.argmax(final)),
            label=label,
            halt_observation=halt_step,
            sequence_length=len(sequence),
            confidence=float(np.max(final)),
            halted_by_policy=halt_step < len(sequence),
        )
