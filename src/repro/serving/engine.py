"""Per-stream serving sessions and the single-stream engine facade.

The serving layer is split into three composable tiers:

* :class:`StreamSession` (this module) — ALL the per-stream state and logic:
  one bounded :class:`~repro.data.stream.SlidingWindow`, one incremental
  KV-cache (:class:`~repro.core.incremental.IncrementalEncoderState`), the
  per-key decision bookkeeping, and the offer/evaluate/flush/expire decision
  machinery.  A session knows nothing about other streams.
* :class:`~repro.serving.cluster.ShardWorker` — owns many sessions keyed by
  stream id, a bounded arrival queue, and the cross-stream *batched* row
  encoding that drains that queue with one GEMM per block instead of one
  GEMV chain per arrival (via :func:`repro.core.incremental.append_batch`).
  Drain-round width is fixed or adaptive
  (:class:`~repro.serving.parallel.AdaptiveBatchController`).
* :class:`~repro.serving.cluster.ServingCluster` — hash-routes stream ids to
  shards, applies admission control / backpressure, and exposes the
  deployment API (``submit`` / ``drain`` / ``flush`` / ``snapshot`` /
  ``restore``).  Shard work runs on a pluggable execution backend
  (:mod:`repro.serving.parallel`): inline on the caller, or concurrently on
  a persistent thread pool with every shard pinned to one worker — which is
  why a session may assume single-threaded access to its own state.
* Push-based delivery on top (:mod:`repro.serving.results`,
  :mod:`repro.serving.sinks`, :mod:`repro.serving.gateway`,
  :mod:`repro.serving.aio`) — explicit per-submission admission outcomes,
  sink subscriptions that receive every decision in emission order, per-
  stream handles with per-key decision futures, and an asyncio gateway.
  Sessions are oblivious to all of it: decisions leave a session as return
  values and the upper layers fan them out.

:class:`OnlineClassificationEngine` — the historical single-stream API — is a
thin alias over one session: it *is* a :class:`StreamSession`, so every
existing parity test and benchmark runs unchanged, and the cluster's
per-stream semantics are by construction those of the single-stream engine.

A session adapts a trained :class:`~repro.core.model.KVEC` model (or any
object exposing its ``predict_tangle`` interface) to a live item stream:

1. arrivals are appended to a bounded :class:`~repro.data.stream.SlidingWindow`
   (the tangled context the correlation mask operates on),
2. every ``reencode_every`` arrivals — or whenever a not-yet-decided key
   receives an item and ``eager`` is set — the window is evaluated in greedy
   mode and any key the halting policy stops is *decided*,
3. a decided key is frozen: later arrivals for it are counted but never
   change its label (matching the paper's semantics where a halted sequence
   is handed to the classifier exactly once),
4. keys whose flow ends without the policy halting are force-decided when
   :meth:`StreamSession.flush` is called.

Because the KVRL attention mask is causal, the representation computed for a
prefix inside the window equals the representation the offline model would
have produced after observing that prefix — the only approximation at
serving time is the bounded window, which is reported via
``Decision.window_truncated``.

Incremental KV-cache design
---------------------------
In the default ``mode="incremental"`` the engine does not re-encode the
window on every evaluation.  It maintains an
:class:`~repro.core.incremental.IncrementalEncoderState` that caches, per
attention block, the projected key/value rows of every item in the window,
the incrementally extended correlation-mask rows, and the per-key fusion
states.  Each arrival is encoded by computing only its own row's attention
against the cached K/V across all blocks — O(W·d) instead of the O(W²·d)
full re-encode — on the raw-numpy no-grad fast path (no autograd ``Tensor``
objects are built at serving time).

*Exactness.*  The correlation mask is strictly causal (row ``i`` attends only
to ``j <= i``), so in an append-only window no earlier row's representation
ever changes; the incrementally computed row is bit-for-bit the row a full
re-encode would produce (up to BLAS summation-order noise, well below 1e-9).
Halting decisions can therefore be taken from the newly computed rows alone:
any older row of a still-undecided key was already below the halting
threshold when it was last evaluated, and its representation has not changed.

Eviction behaviour per encoding scheme
--------------------------------------
``KVECConfig.encoding`` decides what a window eviction costs:

* ``encoding="absolute"`` (the paper's scheme): the time/position/membership
  embedding indices are window-relative, so when the window evicts an item
  every remaining row shifts and *all* cached rows go stale.  The engine
  invalidates the cache and (lazily) rebuilds it with one batched no-grad
  re-encode of the shrunken window, then re-scans every row at the next
  evaluation.  Saturated-window serving therefore stays O(W²·d) per arrival.
  Constructing an engine whose ``window_items`` exceeds the model's
  ``max_time`` table is rejected up front instead of silently aliasing time
  embeddings deep inside the lookup.

* ``encoding="rotary"`` (eviction-stable): time/position information lives
  on the attention side (rotary phases by global arrival index + relative
  within-key bias), so cached rows are invariant to their window offset.
  Each row's representation is *frozen at arrival* — computed once over the
  window contents at that moment and never recomputed.  Eviction just drops
  the oldest ring row (O(W·d) shift) and the new arrival appends one O(W·d)
  row; there is **no rebuild**, making saturated-window serving O(W·d) per
  arrival.  Per-key fusion states survive eviction, so flush can still
  classify a key whose items have all left the window.

``mode="full"`` is the uncached reference used by the parity tests.  For
absolute models it re-encodes the current window on every evaluation (the
seed behaviour).  For rotary models the exact reference semantics is a
re-encode of the *entire retained stream* under a band-``W`` attention mask
(row ``i`` sees at most the ``W`` arrivals up to it): that reproduces the
frozen-at-arrival representations bit for bit, at O(T²·d) per evaluation
with unbounded memory — strictly a correctness oracle, not a serving mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.model import KVEC, PredictionRecord
from repro.data.items import TangledSequence, ValueSpec
from repro.data.stream import KeyTracker, SlidingWindow, StreamEvent


@dataclass
class EngineConfig:
    """Serving-time configuration of the online engine.

    Attributes
    ----------
    window_items:
        Maximum number of items retained in the tangled context window.
    halt_threshold:
        Greedy halting threshold applied to the policy's halt probability.
    reencode_every:
        Re-encode the window after this many arrivals (1 = every item, the
        most faithful and the most expensive setting).
    eager:
        When True the window is also re-encoded whenever an undecided key
        receives an item, regardless of ``reencode_every``.
    idle_timeout:
        Simulated-time gap after which an undecided key is considered
        finished and force-decided during :meth:`flush` / :meth:`expire`.
    mode:
        ``"incremental"`` (default) serves from the KV-cached streaming
        encoder state; ``"full"`` re-encodes on every evaluation (the
        uncached reference behaviour; see the module docstring for its
        rotary-scheme semantics).  Models that do not expose
        ``make_incremental_state`` fall back to ``"full"``.
    """

    window_items: int = 256
    halt_threshold: float = 0.5
    reencode_every: int = 1
    eager: bool = False
    idle_timeout: float = 0.0
    mode: str = "incremental"

    def __post_init__(self) -> None:
        if self.window_items <= 0:
            raise ValueError("window_items must be positive")
        if not 0.0 < self.halt_threshold <= 1.0:
            raise ValueError("halt_threshold must be in (0, 1]")
        if self.reencode_every <= 0:
            raise ValueError("reencode_every must be positive")
        if self.idle_timeout < 0:
            raise ValueError("idle_timeout must be non-negative")
        if self.mode not in ("incremental", "full"):
            raise ValueError(f"unknown engine mode {self.mode!r}")

    def validate_for_model(self, model) -> None:
        """Reject configurations the model cannot serve exactly.

        The legacy absolute encoding indexes its time-embedding table by the
        item's offset within the window, so a window larger than the table
        (``KVECConfig.max_time``) would silently alias time embeddings (and,
        on the incremental path, trip bounds checks deep inside the cache).
        Fail at construction time instead.  Models without a ``config``
        attribute (e.g. bare ``predict_tangle`` adapters) are not checked.
        """
        config = getattr(model, "config", None)
        if config is None:
            return
        encoding = getattr(config, "encoding", "absolute")
        max_time = getattr(config, "max_time", None)
        if encoding == "absolute" and max_time is not None and self.window_items > max_time:
            raise ValueError(
                f"window_items={self.window_items} exceeds the absolute "
                f"time-embedding capacity max_time={max_time}; raise "
                f"KVECConfig.max_time or use encoding='rotary'"
            )


@dataclass
class Decision:
    """The engine's classification decision for one key."""

    key: Hashable
    predicted: int
    confidence: float
    observations: int
    decision_time: float
    halted_by_policy: bool
    window_truncated: bool

    def to_record(self, label: int, sequence_length: int) -> PredictionRecord:
        """Convert to an offline :class:`PredictionRecord` given ground truth."""
        return PredictionRecord(
            key=self.key,
            predicted=self.predicted,
            label=int(label),
            halt_observation=self.observations,
            sequence_length=int(sequence_length),
            confidence=self.confidence,
            halted_by_policy=self.halted_by_policy,
        )


class StreamSession:
    """One independent stream's serving state and decision machinery.

    Owns exactly one window, one incremental encoder state and one set of
    per-key decisions.  Used directly (as the single-stream
    :class:`OnlineClassificationEngine`) or in bulk by a
    :class:`~repro.serving.cluster.ShardWorker`, which splits :meth:`offer`
    into its :meth:`_ingest` / append / :meth:`_complete_offer` phases so
    the append step of many sessions can run as one cross-stream batch.
    """

    def __init__(self, model: KVEC, spec: ValueSpec, config: Optional[EngineConfig] = None) -> None:
        self.model = model
        self.spec = spec
        self.config = config or EngineConfig()
        self.config.validate_for_model(model)
        self.window = SlidingWindow(max_items=self.config.window_items)
        self.tracker = KeyTracker(idle_timeout=self.config.idle_timeout)
        self.decisions: Dict[Hashable, Decision] = {}
        self._arrivals_since_encode = 0
        self._truncated_keys: set = set()
        self._clock = float("-inf")
        self._encoding = getattr(getattr(model, "config", None), "encoding", "absolute")
        #: Rotary ring-buffer maintenance (evict+append, never rebuild)?
        self._ring = self._encoding == "rotary"
        #: Undecided keys with at least one item in the window (see below);
        #: initialised unconditionally so decision paths can update it.
        self._window_pending: set = set()

        self._incremental = None
        #: Retained item history for the rotary full-mode reference (None
        #: unless that mode is active; grows without bound by design).
        self._history: Optional[List] = None
        if self.config.mode == "incremental" and hasattr(model, "make_incremental_state"):
            self._incremental = model.make_incremental_state(capacity=self.config.window_items)
            #: Halting probability of each cached context row, parallel to the
            #: incremental state's rows.
            self._row_halt: List[float] = []
            #: Rows appended (or invalidated by a rebuild) since the last
            #: evaluation — the only candidates for new halting decisions.
            self._unscanned_rows: List[int] = []
            #: True after an eviction invalidates the cached rows (absolute
            #: scheme only — the rotary ring never goes dirty).  The rebuild
            #: is deferred to the next evaluation / flush that has pending
            #: keys; while no undecided key has items in the window (the full
            #: path's empty-pending early return) the cache stays dirty at
            #: zero per-arrival cost.
            self._cache_dirty = False
            #: O(1) bookkeeping replacing an O(W) window scan per arrival:
            #: per-key item counts of the current window.
            self._window_key_counts: Dict[Hashable, int] = {}
        elif self.config.mode == "full" and self._ring:
            self._history = []
            #: Arrivals already scanned for halting at a previous evaluation.
            self._scanned_arrivals = 0
            #: Key -> first-appearance rank in the stream (decision ordering).
            self._key_first_seen: Dict[Hashable, int] = {}

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def offer(self, event: StreamEvent) -> List[Decision]:
        """Ingest one arrival; returns any decisions it triggered."""
        if self._ingest(event):
            self._append_to_cache(event)
        return self._complete_offer(event)

    def _ingest(self, event: StreamEvent) -> bool:
        """Phase 1 of :meth:`offer`: every bookkeeping step except the encode.

        Advances the clock/tracker/window, performs the cache *maintenance*
        the arrival forces (ring evictions, or dirty-marking under the
        absolute scheme) and returns True when the arrival's own row must
        still be appended to the incremental cache.  A shard drains a batch
        by calling this on every session first, then encoding all the
        still-pending rows in one cross-stream batch.

        **Rotary scheme (ring buffer).**  Cached rows are eviction-stable, so
        maintenance is always exact and always cheap: drop one ring row per
        evicted item (O(W·d) shift); the new arrival's O(W·d) row append is
        left to the caller.  The cache never goes dirty and is never rebuilt.

        **Absolute scheme.**  Appending to a clean, non-evicted cache is
        exact regardless of which keys are decided, so append-only arrivals
        always extend the cache in O(W·d).  An eviction invalidates every
        cached row, but the rebuild is deferred: nothing consumes the cache
        between evaluations, so rebuilding on each of ``reencode_every``
        evicting arrivals would waste all but the last rebuild.  The dirty
        cache is resynchronised lazily by the next evaluation / flush that
        actually has pending keys; while no undecided key has items in the
        window (the full path's empty-pending early return) it stays dirty
        at zero cost — and no per-arrival row is appended meanwhile.
        """
        self._clock = max(self._clock, event.time)
        self.tracker.observe(event)
        evicted = self.window.push(event.item)
        for item in evicted:
            if item.key not in self.decisions:
                self._truncated_keys.add(item.key)
        self._arrivals_since_encode += 1

        if self._incremental is not None:
            counts = self._window_key_counts
            counts[event.key] = counts.get(event.key, 0) + 1
            if event.key not in self.decisions:
                self._window_pending.add(event.key)
            for item in evicted:
                remaining = counts[item.key] - 1
                if remaining:
                    counts[item.key] = remaining
                else:
                    del counts[item.key]
                    self._window_pending.discard(item.key)
            if self._ring:
                while len(self._incremental) > len(self.window) - 1:
                    self._evict_from_cache()
                return True
            if self._cache_dirty or evicted:
                self._cache_dirty = True
                # Stale candidates must not survive: their rows no longer
                # mirror the window, and a later evaluation scanning them
                # would fabricate decisions the full path does not make.  The
                # rebuild re-scans every row anyway.
                self._unscanned_rows = []
                return False
            return True
        if self._history is not None:
            self._history.append(event.item)
            self._key_first_seen.setdefault(event.key, len(self._key_first_seen))
        return False

    def _append_to_cache(self, event: StreamEvent) -> None:
        """Phase 2 of :meth:`offer`: serially encode the arrival's row."""
        representation = self._incremental.append(event.item)
        self._note_appended_row(
            self.model.policy.halt_probability_inference(representation)
        )

    def _note_appended_row(self, halt_probability: float) -> None:
        """Record the halt probability of the row just appended to the cache.

        Split from :meth:`_append_to_cache` so the batched shard path — which
        computes the representations via
        :func:`repro.core.incremental.append_batch` and their halt
        probabilities as one batched matvec — can reuse the exact same
        per-session bookkeeping.
        """
        self._row_halt.append(float(halt_probability))
        self._unscanned_rows.append(len(self._incremental) - 1)

    def _complete_offer(self, event: StreamEvent) -> List[Decision]:
        """Phase 3 of :meth:`offer`: evaluate if this arrival makes it due."""
        due = self._arrivals_since_encode >= self.config.reencode_every
        eager = self.config.eager and event.key not in self.decisions
        if not due and not eager:
            return []
        return self._evaluate_window()

    def _evict_from_cache(self) -> None:
        """Drop the oldest ring row and re-align the per-row bookkeeping.

        An unscanned row that is evicted before it was ever evaluated loses
        its halting opportunity — exactly mirroring the full-mode reference,
        whose halting candidates are restricted to rows still inside the
        window at evaluation time.
        """
        self._incremental.evict_oldest()
        self._row_halt.pop(0)
        self._unscanned_rows = [index - 1 for index in self._unscanned_rows if index > 0]

    def _rebuild_cache(self) -> None:
        """Reseed the dirty KV cache from the current window contents.

        Every cached row went stale when the window evicted, so the rebuild
        re-encodes the window in one batched no-grad pass and every row
        becomes a fresh halting candidate.  Halt probabilities are evaluated
        as one batched matvec rather than a Python loop per row.
        """
        self._incremental.rebuild(self.window.items)
        fused = self._incremental.fused_rows
        if fused:
            probabilities = self.model.policy.halt_probabilities_inference(np.stack(fused))
            self._row_halt = [float(p) for p in probabilities]
        else:
            self._row_halt = []
        self._unscanned_rows = list(range(len(self._incremental)))
        self._cache_dirty = False

    def _sync_cache(self) -> bool:
        """Rebuild a dirty cache if any pending key could use it.

        Returns False when the cache is dirty *and* no undecided key has
        items in the window — the caller can emit nothing, exactly like the
        full path's empty-pending early return, so the rebuild cost is
        skipped too.
        """
        if not self._cache_dirty:
            return True
        if not self._window_pending:
            return False
        self._rebuild_cache()
        return True

    def consume(self, events: Iterable[StreamEvent]) -> List[Decision]:
        """Ingest a whole stream; returns every decision in emission order."""
        decisions: List[Decision] = []
        for event in events:
            decisions.extend(self.offer(event))
        return decisions

    # ------------------------------------------------------------------ #
    # decision logic
    # ------------------------------------------------------------------ #
    def _evaluate_window(self) -> List[Decision]:
        self._arrivals_since_encode = 0
        if not len(self.window):
            return []
        if self._incremental is not None:
            return self._evaluate_incremental()
        if self._history is not None:
            return self._evaluate_full_banded()
        pending = [
            key
            for key in {item.key for item in self.window}
            if key not in self.decisions
        ]
        if not pending:
            return []
        tangle = self.window.as_tangle({}, self.spec, name="serving-window")
        records = self.model.predict_tangle(tangle, halt_threshold=self.config.halt_threshold)
        emitted: List[Decision] = []
        for record in records:
            if record.key not in pending or not record.halted_by_policy:
                continue
            emitted.append(self._decide(record, halted_by_policy=True))
        return emitted

    def _evaluate_incremental(self) -> List[Decision]:
        """Halt keys from rows computed since the last evaluation.

        Older rows of undecided keys were below the threshold when last
        scanned and their cached representations are unchanged (causal mask,
        append-only since the last rebuild), so they cannot newly halt.
        """
        if not self._sync_cache():
            return []
        threshold = self.config.halt_threshold
        halting: Dict[Hashable, int] = {}
        for index in self._unscanned_rows:
            key = self._incremental.row_key(index)
            if key in self.decisions or key in halting:
                continue
            if self._row_halt[index] >= threshold:
                halting[key] = index
        self._unscanned_rows = []
        # Emit in the window's key-first-appearance order, matching the order
        # the full path's predict_tangle records arrive in.
        return [
            self._decide_representation(
                key, self._incremental.fused_row(halting[key]), halted_by_policy=True
            )
            for key in sorted(halting, key=self._incremental.key_index)
        ]

    def _encode_banded_history(self):
        """Reference encode of the whole retained stream under a band-W mask.

        Returns ``(halt_probabilities, fused_rows, latest_rep)``: per-row
        halting probabilities and fused representations (arrival order), and
        each key's newest fused representation.  Because the band restricts
        row ``i`` to the ``window_items`` arrivals up to it, every row's
        representation equals what the streaming ring computed when that item
        arrived — frozen-at-arrival semantics, recomputed from scratch.
        """
        labels = {item.key: 0 for item in self._history}
        tangle = TangledSequence(list(self._history), labels, self.spec, name="serving-history")
        representations, _ = self.model.encode_inference(
            tangle, attention_window=self.config.window_items
        )
        states: Dict[Hashable, tuple] = {}
        fused: List[np.ndarray] = []
        latest: Dict[Hashable, np.ndarray] = {}
        for index, item in enumerate(self._history):
            representation = self.model.fusion_step_inference(
                states, item.key, representations[index]
            )
            latest[item.key] = representation
            fused.append(representation)
        probabilities = self.model.policy.halt_probabilities_inference(np.stack(fused))
        return probabilities, fused, latest

    def _evaluate_full_banded(self) -> List[Decision]:
        """Rotary full-mode evaluation: scan arrivals since the last one.

        Halting candidates are the rows that arrived since the previous
        evaluation *and* are still within the window — the same candidate
        set the ring path scans — taken from the banded full-history encode
        (whose rows are identical to the ring's frozen representations).
        """
        total = len(self._history)
        start = max(self._scanned_arrivals, total - self.config.window_items)
        self._scanned_arrivals = total
        if all(self._history[i].key in self.decisions for i in range(start, total)):
            return []
        probabilities, fused, _ = self._encode_banded_history()
        threshold = self.config.halt_threshold
        halting: Dict[Hashable, int] = {}
        for index in range(start, total):
            key = self._history[index].key
            if key in self.decisions or key in halting:
                continue
            if probabilities[index] >= threshold:
                halting[key] = index
        return [
            self._decide_representation(key, fused[halting[key]], halted_by_policy=True)
            for key in sorted(halting, key=self._key_first_seen.__getitem__)
        ]

    def _decide_representation(
        self, key: Hashable, representation, halted_by_policy: bool
    ) -> Decision:
        probabilities = self.model.classifier.probabilities_inference(representation)
        decision = Decision(
            key=key,
            predicted=int(np.argmax(probabilities)),
            confidence=float(np.max(probabilities)),
            observations=self.tracker.observations(key),
            decision_time=self._clock,
            halted_by_policy=halted_by_policy,
            window_truncated=key in self._truncated_keys,
        )
        self.decisions[key] = decision
        self.tracker.mark_done(key)
        self._window_pending.discard(key)
        return decision

    def _decide(self, record: PredictionRecord, halted_by_policy: bool) -> Decision:
        decision = Decision(
            key=record.key,
            predicted=record.predicted,
            confidence=record.confidence,
            observations=self.tracker.observations(record.key),
            decision_time=self._clock,
            halted_by_policy=halted_by_policy,
            window_truncated=record.key in self._truncated_keys,
        )
        self.decisions[record.key] = decision
        self.tracker.mark_done(record.key)
        return decision

    # ------------------------------------------------------------------ #
    # finishing touches
    # ------------------------------------------------------------------ #
    def expire(self, now: Optional[float] = None) -> List[Decision]:
        """Force-decide keys that have been idle longer than the timeout."""
        if not self.config.idle_timeout:
            return []
        now = self._clock if now is None else now
        idle = set(self.tracker.expire_idle(now)) - set(self.decisions)
        return self._force_decide(idle) if idle else []

    def undecided_keys(self) -> set:
        """Keys observed on this stream that have no decision yet."""
        return set(self.tracker.states()) - set(self.decisions)

    def flush(self) -> List[Decision]:
        """Force-decide every remaining undecided key from the current window."""
        undecided = self.undecided_keys()
        return self._force_decide(undecided) if undecided else []

    def _force_decide(self, keys) -> List[Decision]:
        if not len(self.window):
            return []
        if self._history is not None:
            _, _, latest = self._encode_banded_history()
            emitted: List[Decision] = []
            for key in sorted(keys, key=str):
                representation = latest.get(key)
                if representation is None:
                    continue
                emitted.append(
                    self._decide_representation(key, representation, halted_by_policy=False)
                )
            return emitted
        if self._incremental is not None:
            if not self._sync_cache():
                # No undecided key has items in the window; the full path's
                # flush tangle would not contain any of ``keys``, so nothing
                # may be decided — especially not from stale representations
                # of keys evicted while the cache was dirty.
                return []
            emitted: List[Decision] = []
            for key in sorted(keys, key=str):
                representation = self._incremental.latest_representation(key)
                if representation is None:
                    continue  # every item of the key was evicted from the window
                emitted.append(
                    self._decide_representation(key, representation, halted_by_policy=False)
                )
            return emitted
        tangle = self.window.as_tangle({}, self.spec, name="serving-flush")
        # Threshold 1.0 > any sigmoid output, so the policy never halts and
        # every key is classified from its final observed state.
        records = self.model.predict_tangle(tangle, halt_threshold=1.01)
        by_key = {record.key: record for record in records}
        emitted: List[Decision] = []
        for key in sorted(keys, key=str):
            record = by_key.get(key)
            if record is None:
                continue
            emitted.append(self._decide(record, halted_by_policy=False))
        return emitted

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def records(
        self,
        labels: Dict[Hashable, int],
        sequence_lengths: Dict[Hashable, int],
    ) -> List[PredictionRecord]:
        """Convert all decisions to prediction records given ground truth."""
        records: List[PredictionRecord] = []
        for key, decision in self.decisions.items():
            if key not in labels:
                continue
            records.append(decision.to_record(labels[key], sequence_lengths.get(key, decision.observations)))
        return records

    @property
    def num_decided(self) -> int:
        return len(self.decisions)

    @property
    def num_truncated(self) -> int:
        """Keys that lost items to window eviction before being decided."""
        return len(self._truncated_keys & set(self.decisions))


class OnlineClassificationEngine(StreamSession):
    """Serve a trained KVEC model over a single live tangled item stream.

    The historical single-stream API, kept as a thin facade: it is exactly
    one :class:`StreamSession`, so its behaviour defines — decision for
    decision — what the sharded :class:`~repro.serving.cluster.ServingCluster`
    must produce per stream (the cluster parity suite pins this).  Multi-
    stream deployments should use the cluster, which adds hash routing,
    bounded queues and cross-stream batched encoding on top of sessions.
    """
