"""Tests for interleaving per-key sequences into tangled streams."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.items import Item, KeyValueSequence, ValueSpec
from repro.data.tangle import interleave_sequences, retangle_by_concurrency

SPEC = ValueSpec(("v", "d"), (4, 2), 1)


def make_sequence(key, length, label=0, rng=None):
    rng = rng or np.random.default_rng(hash(key) % 2**32)
    items = [
        Item(key, (int(rng.integers(0, 4)), int(rng.integers(0, 2))), float(i))
        for i in range(length)
    ]
    return KeyValueSequence(key, items, label)


class TestInterleave:
    def test_merges_all_items_chronologically(self):
        tangle = interleave_sequences([make_sequence("a", 5), make_sequence("b", 3)], SPEC)
        assert len(tangle) == 8
        times = [item.time for item in tangle]
        assert times == sorted(times)

    def test_labels_preserved(self):
        tangle = interleave_sequences(
            [make_sequence("a", 2, label=1), make_sequence("b", 2, label=0)], SPEC
        )
        assert tangle.label_of("a") == 1
        assert tangle.label_of("b") == 0

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            interleave_sequences([make_sequence("a", 2), make_sequence("a", 3)], SPEC)

    def test_unlabelled_sequence_rejected(self):
        sequence = make_sequence("a", 2)
        sequence.label = None
        with pytest.raises(ValueError):
            interleave_sequences([sequence], SPEC)

    def test_jitter_preserves_item_count(self):
        tangle = interleave_sequences(
            [make_sequence("a", 4), make_sequence("b", 4)],
            SPEC,
            rng=np.random.default_rng(0),
            jitter=0.5,
        )
        assert len(tangle) == 8


class TestRetangleByConcurrency:
    def test_groups_have_requested_concurrency(self):
        sequences = [make_sequence(f"k{i}", 5) for i in range(10)]
        tangles = retangle_by_concurrency(sequences, SPEC, concurrency=3, rng=np.random.default_rng(0))
        sizes = sorted(tangle.num_keys for tangle in tangles)
        assert sizes == [1, 3, 3, 3]

    def test_every_sequence_appears_exactly_once(self):
        sequences = [make_sequence(f"k{i}", 4) for i in range(9)]
        tangles = retangle_by_concurrency(sequences, SPEC, concurrency=4, rng=np.random.default_rng(1))
        seen = [key for tangle in tangles for key in tangle.keys]
        assert sorted(seen) == sorted(f"k{i}" for i in range(9))

    def test_item_counts_preserved(self):
        sequences = [make_sequence(f"k{i}", 3 + i) for i in range(6)]
        tangles = retangle_by_concurrency(sequences, SPEC, concurrency=2, rng=np.random.default_rng(2))
        assert sum(len(t) for t in tangles) == sum(len(s) for s in sequences)

    def test_sequences_in_a_chunk_overlap_in_time(self):
        # Shift one sequence far into the future: retangle must re-base times
        # so the chunk overlaps rather than concatenates.
        late_items = [Item("late", (0, 0), 1000.0 + i) for i in range(5)]
        sequences = [
            make_sequence("early", 5),
            KeyValueSequence("late", late_items, 0),
        ]
        tangles = retangle_by_concurrency(sequences, SPEC, concurrency=2, rng=np.random.default_rng(0))
        assert len(tangles) == 1
        tangle = tangles[0]
        first_keys = {tangle[i].key for i in range(4)}
        assert len(first_keys) == 2  # items of both sequences appear early

    def test_invalid_concurrency_rejected(self):
        with pytest.raises(ValueError):
            retangle_by_concurrency([make_sequence("a", 2)], SPEC, concurrency=0)

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=12))
    @settings(max_examples=25, deadline=None)
    def test_number_of_tangles_matches_ceiling_division(self, concurrency, num_sequences):
        sequences = [make_sequence(f"k{i}", 3) for i in range(num_sequences)]
        tangles = retangle_by_concurrency(
            sequences, SPEC, concurrency=concurrency, rng=np.random.default_rng(0)
        )
        expected = -(-num_sequences // concurrency)
        assert len(tangles) == expected
