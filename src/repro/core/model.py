"""The KVEC model: KVRL representation learning + ECTL halting (Fig. 2).

The model processes one tangled key-value sequence at a time.  Because the
correlation mask restricts attention to positions ``j <= i``, a single
full-length pass of the attention encoder yields, at every row ``t``, exactly
the representation the streaming system would have computed after observing
``t`` items — so episodes are generated efficiently without re-encoding the
prefix at every step, while remaining faithful to the paper's streaming
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.core.classifier import SequenceClassifier
from repro.core.config import KVECConfig
from repro.core.correlation import CorrelationStructure, build_correlation_structure
from repro.core.ectl import ACTION_HALT, ACTION_WAIT, BaselineValue, HaltingPolicy
from repro.core.embeddings import InputEmbedding
from repro.core.fusion import make_fusion
from repro.core.kvrl import KVRLEncoder
from repro.data.items import TangledSequence, ValueSpec
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, no_grad


@dataclass
class PredictionRecord:
    """The outcome of early classification for one key-value sequence."""

    key: Hashable
    predicted: int
    label: int
    halt_observation: int
    sequence_length: int
    confidence: float = 0.0
    halted_by_policy: bool = True

    @property
    def correct(self) -> bool:
        return self.predicted == self.label

    @property
    def earliness(self) -> float:
        """Fraction of the sequence observed before classification (n_k / |S_k|)."""
        if self.sequence_length == 0:
            return 1.0
        return self.halt_observation / self.sequence_length


@dataclass
class KeyEpisode:
    """Everything recorded for one key-value sequence during an episode."""

    key: Hashable
    label: int
    sequence_length: int
    states: List[Tensor] = field(default_factory=list)
    halt_log_probs: List[Tensor] = field(default_factory=list)
    actions: List[int] = field(default_factory=list)
    halted: bool = False
    halted_by_policy: bool = False
    logits: Optional[Tensor] = None
    predicted: Optional[int] = None
    confidence: float = 0.0

    @property
    def num_observations(self) -> int:
        """``n_k`` — the number of items observed before classification."""
        return len(self.states)

    def to_record(self) -> PredictionRecord:
        if self.predicted is None:
            raise ValueError(f"sequence {self.key!r} was never classified")
        return PredictionRecord(
            key=self.key,
            predicted=self.predicted,
            label=self.label,
            halt_observation=self.num_observations,
            sequence_length=self.sequence_length,
            confidence=self.confidence,
            halted_by_policy=self.halted_by_policy,
        )


@dataclass
class EpisodeResult:
    """The result of running KVEC over one tangled sequence."""

    episodes: Dict[Hashable, KeyEpisode]
    correlation: CorrelationStructure
    attention_maps: List[np.ndarray] = field(default_factory=list)

    def records(self) -> List[PredictionRecord]:
        return [episode.to_record() for episode in self.episodes.values()]

    @property
    def num_keys(self) -> int:
        return len(self.episodes)


class KVEC(Module):
    """Key-Value sequence Early Co-classification model."""

    def __init__(self, spec: ValueSpec, num_classes: int, config: Optional[KVECConfig] = None) -> None:
        super().__init__()
        self.config = config or KVECConfig()
        self.spec = spec
        self.num_classes = num_classes
        rng = np.random.default_rng(self.config.seed)

        self.input_embedding = InputEmbedding(
            spec,
            self.config.d_model,
            max_positions=self.config.max_positions,
            max_keys=self.config.max_keys,
            max_time=self.config.max_time,
            use_membership_embedding=self.config.use_membership_embedding,
            use_time_embeddings=self.config.use_time_embeddings,
            encoding=self.config.encoding,
            rng=rng,
        )
        rotary = self.config.encoding == "rotary"
        self.encoder = KVRLEncoder(
            self.config.d_model,
            self.config.num_blocks,
            num_heads=self.config.num_heads,
            ffn_hidden=self.config.ffn_hidden,
            dropout=self.config.dropout,
            rotary=rotary,
            max_relative_positions=self.config.max_positions if rotary else 0,
            rng=rng,
        )
        state_dim = self.config.d_state if self.config.fusion == "gated" else self.config.d_model
        self.state_dim = state_dim
        self.fusion = make_fusion(self.config.fusion, self.config.d_model, self.config.d_state, rng=rng)
        self.policy = HaltingPolicy(state_dim, rng=rng)
        self.baseline = BaselineValue(state_dim, rng=rng)
        self.classifier = SequenceClassifier(state_dim, num_classes, rng=rng)
        self._action_rng = np.random.default_rng(self.config.seed + 1)

    # ------------------------------------------------------------------ #
    # encoding
    # ------------------------------------------------------------------ #
    def relative_coords(self, tangle: TangledSequence, length: int):
        """Per-row :class:`~repro.nn.attention.RelativeCoords` for a prefix.

        Returns ``None`` unless the rotary encoding (with time-related
        signals enabled) is active.  Positions are window-local
        ``arange(length)`` — rotary logits depend only on index differences,
        so any consistent origin matches the streaming path's global indices.
        """
        if self.config.encoding != "rotary" or not self.config.use_time_embeddings:
            return None
        from repro.nn.attention import RelativeCoords

        return RelativeCoords(
            positions=np.arange(length, dtype=np.float64),
            key_ranks=np.asarray(
                [tangle.position_in_key_sequence(i) for i in range(length)], dtype=np.int64
            ),
            key_codes=np.asarray(
                [tangle.key_index(tangle[i].key) for i in range(length)], dtype=np.int64
            ),
        )

    @staticmethod
    def _band_limit(mask: np.ndarray, attention_window: Optional[int]) -> np.ndarray:
        """Restrict visibility to the ``attention_window`` most recent rows.

        Serving-side reference for the rotary scheme: row ``i`` may only see
        rows ``j`` with ``i - j < attention_window``, which reproduces the
        bounded context a sliding-window streamer had at row ``i``'s arrival.
        """
        if attention_window is None or mask.shape[0] <= attention_window:
            return mask
        from repro.nn.attention import MASK_VALUE

        index = np.arange(mask.shape[0])
        out_of_band = (index[:, None] - index[None, :]) >= attention_window
        return np.where(out_of_band, MASK_VALUE, mask)

    def encode(
        self,
        tangle: TangledSequence,
        upto: Optional[int] = None,
        store_attention: bool = False,
        attention_window: Optional[int] = None,
    ):
        """Return ``(item_representations, correlation_structure)`` for a prefix."""
        structure = build_correlation_structure(
            tangle,
            upto=upto,
            use_key_correlation=self.config.use_key_correlation,
            use_value_correlation=self.config.use_value_correlation,
        )
        length = structure.length
        embeddings = self.input_embedding(tangle, upto=upto)
        representations = self.encoder(
            embeddings,
            mask=self._band_limit(structure.mask, attention_window),
            store_attention=store_attention,
            coords=self.relative_coords(tangle, length),
        )
        return representations, structure

    def encode_inference(
        self,
        tangle: TangledSequence,
        upto: Optional[int] = None,
        attention_window: Optional[int] = None,
    ):
        """No-grad fast path of :meth:`encode`: raw arrays, no graph objects."""
        structure = build_correlation_structure(
            tangle,
            upto=upto,
            use_key_correlation=self.config.use_key_correlation,
            use_value_correlation=self.config.use_value_correlation,
        )
        embeddings = self.input_embedding.forward_inference(tangle, upto=upto)
        representations = self.encoder.forward_inference(
            embeddings,
            mask=self._band_limit(structure.mask, attention_window),
            coords=self.relative_coords(tangle, structure.length),
        )
        return representations, structure

    # ------------------------------------------------------------------ #
    # episode generation
    # ------------------------------------------------------------------ #
    def run_episode(
        self,
        tangle: TangledSequence,
        mode: str = "sample",
        halt_threshold: float = 0.5,
        rng: Optional[np.random.Generator] = None,
        store_attention: bool = False,
        max_items: Optional[int] = None,
    ) -> EpisodeResult:
        """Process a tangled sequence item by item.

        Parameters
        ----------
        mode:
            ``"sample"`` draws Halt/Wait from the policy (training);
            ``"greedy"`` halts when the halting probability exceeds
            ``halt_threshold`` (evaluation).
        store_attention:
            Keep the per-block attention maps (needed by the Fig. 10
            attention-score analysis).
        max_items:
            Optionally truncate the tangled sequence to its first
            ``max_items`` items.
        """
        if mode not in ("sample", "greedy"):
            raise ValueError(f"unknown mode {mode!r}")
        rng = rng or self._action_rng

        length = len(tangle) if max_items is None else min(max_items, len(tangle))
        if length == 0:
            raise ValueError("cannot run an episode on an empty tangled sequence")
        representations, structure = self.encode(tangle, upto=length, store_attention=store_attention)

        episodes: Dict[Hashable, KeyEpisode] = {}
        fusion_states: Dict[Hashable, tuple] = {}
        for key in {tangle[i].key for i in range(length)}:
            episodes[key] = KeyEpisode(
                key=key,
                label=tangle.label_of(key),
                sequence_length=tangle.sequence_length(key),
            )

        for index in range(length):
            item = tangle[index]
            episode = episodes[item.key]
            if episode.halted:
                continue
            state = fusion_states.get(item.key)
            if state is None:
                state = self.fusion.initial_state()
            representation, new_state = self.fusion(state, representations[index])
            fusion_states[item.key] = new_state
            episode.states.append(representation)

            halt_prob = self.policy(representation)
            if mode == "sample":
                action = ACTION_HALT if rng.random() < float(halt_prob.data) else ACTION_WAIT
            else:
                action = ACTION_HALT if float(halt_prob.data) >= halt_threshold else ACTION_WAIT
            episode.actions.append(action)
            episode.halt_log_probs.append(self.policy.log_prob(representation, action))

            if action == ACTION_HALT:
                self._classify(episode, representation, halted_by_policy=True)

        # Sequences that never halted are classified from their final state
        # (all their items have been observed).
        for episode in episodes.values():
            if not episode.halted and episode.states:
                self._classify(episode, episode.states[-1], halted_by_policy=False)

        attention_maps = self.encoder.attention_maps() if store_attention else []
        return EpisodeResult(episodes=episodes, correlation=structure, attention_maps=attention_maps)

    def run_episodes(
        self,
        tangles,
        mode: str = "sample",
        halt_threshold: float = 0.5,
        rngs=None,
        max_items: Optional[int] = None,
    ):
        """Run one episode per tangle, executing the minibatch in lockstep.

        Cross-sample batched twin of :meth:`run_episode` — one GEMM per
        arrival round across the whole minibatch instead of per-sample
        chains.  Returns ``(results, tail)``; see
        :func:`repro.core.batched_episodes.run_episodes_batched` for the
        parity contract and the tail layout.
        """
        from repro.core.batched_episodes import run_episodes_batched

        return run_episodes_batched(
            self,
            tangles,
            mode=mode,
            halt_threshold=halt_threshold,
            rngs=rngs,
            max_items=max_items,
        )

    def _classify(self, episode: KeyEpisode, representation: Tensor, halted_by_policy: bool) -> None:
        episode.halted = True
        episode.halted_by_policy = halted_by_policy
        episode.logits = self.classifier(representation)
        probabilities = self.classifier.probabilities(representation)
        episode.predicted = int(np.argmax(probabilities))
        episode.confidence = float(np.max(probabilities))

    # ------------------------------------------------------------------ #
    # evaluation interface
    # ------------------------------------------------------------------ #
    def predict_tangle(
        self,
        tangle: TangledSequence,
        halt_threshold: float = 0.5,
        max_items: Optional[int] = None,
        fast: bool = True,
    ) -> List[PredictionRecord]:
        """Early-classify every key-value sequence in ``tangle`` (no gradients).

        By default the raw-numpy inference fast path is used: plain ndarray
        math end to end, with no autograd ``Tensor`` objects, per-op closures
        or graph bookkeeping.  ``fast=False`` falls back to the original
        :meth:`run_episode` route (useful for cross-checking numerics).
        """
        if fast:
            return self._predict_tangle_inference(tangle, halt_threshold, max_items)
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                result = self.run_episode(
                    tangle, mode="greedy", halt_threshold=halt_threshold, max_items=max_items
                )
        finally:
            self.train(was_training)
        return result.records()

    def fusion_step_inference(
        self, states: Dict[Hashable, tuple], key: Hashable, encoded_row: np.ndarray
    ) -> np.ndarray:
        """Fold one encoded row into ``states[key]`` (created on first use).

        Returns the key's updated fused representation.  This is the single
        definition of the per-key fusion replay, shared by the offline fast
        path, the streaming KV cache and the serving engine's banded
        reference so the three cannot drift apart.
        """
        state = states.get(key)
        if state is None:
            state = self.fusion.initial_state_inference()
        representation, states[key] = self.fusion.forward_inference(state, encoded_row)
        return representation

    def fusion_steps_inference(
        self, entries, encoded_rows: np.ndarray
    ) -> List[np.ndarray]:
        """Batched :meth:`fusion_step_inference` across independent streams.

        ``entries`` is a sequence of ``(states_dict, key)`` pairs — one per
        stream — and ``encoded_rows`` the matching ``(B, d_model)`` rows.
        Streams are independent, so their fusion steps stack into one gate
        GEMM (``forward_inference_batch``); fusion kinds without a batch
        implementation fall back to the serial step.
        """
        batch_step = getattr(self.fusion, "forward_inference_batch", None)
        if batch_step is None:
            return [
                self.fusion_step_inference(states, key, encoded_rows[index])
                for index, (states, key) in enumerate(entries)
            ]
        current = []
        for states, key in entries:
            state = states.get(key)
            current.append(
                state if state is not None else self.fusion.initial_state_inference()
            )
        representations, new_states = batch_step(current, encoded_rows)
        for (states, key), state in zip(entries, new_states):
            states[key] = state
        return [representations[index] for index in range(len(entries))]

    def _predict_tangle_inference(
        self,
        tangle: TangledSequence,
        halt_threshold: float,
        max_items: Optional[int],
    ) -> List[PredictionRecord]:
        """Greedy early classification on the raw-array inference path."""
        length = len(tangle) if max_items is None else min(max_items, len(tangle))
        if length == 0:
            raise ValueError("cannot run an episode on an empty tangled sequence")
        representations, _ = self.encode_inference(tangle, upto=length)

        fusion_states: Dict[Hashable, tuple] = {}
        last_representation: Dict[Hashable, np.ndarray] = {}
        observations: Dict[Hashable, int] = {}
        key_order: List[Hashable] = []
        decided: Dict[Hashable, PredictionRecord] = {}

        for index in range(length):
            key = tangle[index].key
            if key not in observations:
                key_order.append(key)
                observations[key] = 0
            if key in decided:
                continue
            representation = self.fusion_step_inference(fusion_states, key, representations[index])
            last_representation[key] = representation
            observations[key] += 1

            if self.policy.halt_probability_inference(representation) >= halt_threshold:
                decided[key] = self._record_inference(
                    tangle, key, representation, observations[key], halted_by_policy=True
                )

        records: List[PredictionRecord] = []
        for key in key_order:
            record = decided.get(key)
            if record is None:
                record = self._record_inference(
                    tangle, key, last_representation[key], observations[key], halted_by_policy=False
                )
            records.append(record)
        return records

    def _record_inference(
        self,
        tangle: TangledSequence,
        key: Hashable,
        representation: np.ndarray,
        num_observations: int,
        halted_by_policy: bool,
    ) -> PredictionRecord:
        probabilities = self.classifier.probabilities_inference(representation)
        return PredictionRecord(
            key=key,
            predicted=int(np.argmax(probabilities)),
            label=tangle.label_of(key),
            halt_observation=num_observations,
            sequence_length=tangle.sequence_length(key),
            confidence=float(np.max(probabilities)),
            halted_by_policy=halted_by_policy,
        )

    def make_incremental_state(self, capacity: Optional[int] = None):
        """Create an :class:`~repro.core.incremental.IncrementalEncoderState`."""
        from repro.core.incremental import IncrementalEncoderState

        return IncrementalEncoderState(self, capacity=capacity)

    def trainable_parameters(self) -> List[Parameter]:
        """Parameters of θ = (θ1, θπ): everything except the baseline network."""
        baseline_ids = {id(p) for p in self.baseline.parameters()}
        return [p for p in self.parameters() if id(p) not in baseline_ids]
