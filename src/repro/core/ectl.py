"""ECTL: the halting policy and its variance-reduction baseline (Section IV-C).

The halting policy maps the current sequence representation ``s_k^{(t)}`` to
the probability of taking the **Halt** action; **Wait** has the complementary
probability.  During training, actions are sampled and the policy is updated
with REINFORCE using a learned state-value baseline; at evaluation time the
policy halts deterministically once the halting probability exceeds a
threshold (0.5 unless stated otherwise).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor

#: Action encoding used across the package.
ACTION_WAIT = 0
ACTION_HALT = 1


class HaltingPolicy(Module):
    """The halting policy π(s) = σ(w·s + b).

    ``forward`` returns the halting probability as a scalar tensor that stays
    differentiable, so ``log P(a | s)`` terms can be built for REINFORCE.
    """

    def __init__(self, d_state: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.projection = Linear(d_state, 1, rng=rng)

    def forward(self, state: Tensor) -> Tensor:
        """Halting probability for a single state vector of shape ``(d_state,)``."""
        return F.sigmoid(self.projection(state)).reshape(())

    def forward_batch(self, states: Tensor) -> Tensor:
        """Autograd batched head: halting probabilities for ``(B, d_state)``.

        Parity contract: row ``i`` matches :meth:`forward` on ``states[i]``
        up to BLAS summation order (one ``(B, d_state)`` GEMV batch instead
        of ``B`` scalar projections).
        """
        return F.sigmoid(self.projection(states)).squeeze(-1)

    def log_probs_batch(self, probabilities: Tensor):
        """Differentiable ``(log P(Halt|s), log P(Wait|s))`` for a batch.

        ``probabilities`` is the ``(B,)`` output of :meth:`forward_batch`;
        the clip bound matches :meth:`log_prob` exactly, so per-row values
        agree with the per-sample reference for either action.
        """
        clipped = probabilities.clip(1e-7, 1.0 - 1e-7)
        return clipped.log(), (1.0 - clipped).log()

    def halt_probability(self, state: Tensor) -> float:
        """Convenience: the halting probability as a python float."""
        return float(self.forward(state).data)

    def halt_probability_inference(self, state: np.ndarray) -> float:
        """No-grad fast path: halting probability from a raw state vector."""
        return float(F.sigmoid_array(self.projection.forward_inference(state)[0]))

    def halt_probabilities_inference(self, states: np.ndarray) -> np.ndarray:
        """No-grad fast path: halting probabilities for ``(n, d_state)`` states."""
        return F.sigmoid_array(self.projection.forward_inference(states)[:, 0])

    def sample_action(self, state: Tensor, rng: np.random.Generator) -> int:
        """Sample Halt/Wait according to π(s)."""
        return ACTION_HALT if rng.random() < self.halt_probability(state) else ACTION_WAIT

    def greedy_action(self, state: Tensor, threshold: float = 0.5) -> int:
        """Deterministic action used at evaluation time."""
        return ACTION_HALT if self.halt_probability(state) >= threshold else ACTION_WAIT

    def log_prob(self, state: Tensor, action: int) -> Tensor:
        """Differentiable ``log P(action | state)``."""
        probability = self.forward(state).clip(1e-7, 1.0 - 1e-7)
        if action == ACTION_HALT:
            return probability.log()
        return (1.0 - probability).log()


class BaselineValue(Module):
    """A shallow feed-forward state-value baseline ``b(s)``.

    The baseline is trained by regression against the observed returns and is
    used only to reduce the variance of the REINFORCE gradient (the advantage
    ``R - b`` is treated as a constant when updating the policy).
    """

    def __init__(self, d_state: int, hidden: int = 32, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.hidden_layer = Linear(d_state, hidden, rng=rng)
        self.output_layer = Linear(hidden, 1, rng=rng)

    def forward(self, state: Tensor) -> Tensor:
        """Estimated return(s) for ``state``.

        Accepts a single ``(d_state,)`` vector (returns a scalar tensor) or a
        batch of shape ``(n, d_state)`` (returns an ``(n,)`` tensor), so the
        trainer can evaluate every episode step in one pass.
        """
        hidden = F.relu(self.hidden_layer(state))
        out = self.output_layer(hidden)
        if out.ndim == 1:
            return out.reshape(())
        return out.squeeze(-1)

    def value(self, state: Tensor) -> float:
        return float(self.forward(state).data)
