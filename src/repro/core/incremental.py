"""Incremental KV-cached streaming encoder state for online serving.

The KVRL correlation mask is strictly causal: row ``i`` of every attention
block may only attend to rows ``j <= i``.  Therefore, in an *append-only*
window, the representation of every already-encoded row is final — a new
arrival can be encoded by computing just its own row through the block stack,
attending against cached per-block key/value projections.  That drops the
per-arrival cost of the online engine from O(W²·d) (full re-encode of a
window of W items) to O(W·d).

:class:`IncrementalEncoderState` caches, per attention block, the projected
K/V rows of every item currently in the context, plus the per-key fusion
states, and extends the correlation-mask row for each new arrival
incrementally (via :class:`~repro.core.correlation.CorrelationTracker`, the
same machinery the batched mask builder uses), so that :meth:`append`
produces exactly the fused representation a full re-encode of the same
window would produce.

**Eviction caveat.**  Exactness only holds while the window is append-only.
When the sliding window evicts an item, every remaining row shifts: the time
embedding is indexed by the item's position *within the window*, the relative
position and membership indices are window-relative too, and per-key fusion
restarts from the first retained item.  A full re-encode of the shrunken
window therefore changes every row, and no O(W) update can reproduce it.  The
cache must be invalidated: :meth:`rebuild` re-encodes the remaining window in
one *batched no-grad pass* (still far cheaper than the autograd full
re-encode the engine previously ran on every arrival) and reseeds all caches
from it.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.core.correlation import CorrelationTracker
from repro.data.items import Item
from repro.nn.attention import MASK_VALUE

#: Initial per-block cache capacity when none is given.
_DEFAULT_CAPACITY = 64


class IncrementalEncoderState:
    """Streaming KV cache over a bounded, append-only-until-eviction context.

    Parameters
    ----------
    model:
        A :class:`~repro.core.model.KVEC` instance (only its no-grad
        inference methods are used; no autograd graph is ever built).
    capacity:
        Expected maximum number of context rows (e.g. the engine's
        ``window_items``).  Caches grow automatically if exceeded.
    """

    def __init__(self, model, capacity: Optional[int] = None) -> None:
        self.model = model
        self._capacity = max(int(capacity or _DEFAULT_CAPACITY), 1)
        self._num_blocks = len(model.encoder.blocks)
        self._allocate_caches(self._capacity)
        self._clear_bookkeeping()

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def _allocate_caches(self, capacity: int) -> None:
        self._k_cache: List[np.ndarray] = []
        self._v_cache: List[np.ndarray] = []
        for block in self.model.encoder.blocks:
            attention = block.attention
            shape = (attention.num_heads, capacity, attention.d_head)
            self._k_cache.append(np.empty(shape, dtype=np.float64))
            self._v_cache.append(np.empty(shape, dtype=np.float64))
        self._capacity = capacity

    def _clear_bookkeeping(self) -> None:
        self._length = 0
        self._key_order: Dict[Hashable, int] = {}
        self._key_counts: Dict[Hashable, int] = {}
        self._row_keys: List[Hashable] = []
        self._fused_rows: List[np.ndarray] = []
        self._fusion_states: Dict[Hashable, tuple] = {}
        self._latest_rep: Dict[Hashable, np.ndarray] = {}
        config = self.model.config
        self._tracker = CorrelationTracker(
            session_field=self.model.spec.session_field,
            use_key_correlation=config.use_key_correlation,
            use_value_correlation=config.use_value_correlation,
        )

    def _grow(self, minimum: int) -> None:
        capacity = self._capacity
        while capacity < minimum:
            capacity *= 2
        if capacity == self._capacity:
            return
        for index in range(self._num_blocks):
            for caches in (self._k_cache, self._v_cache):
                old = caches[index]
                grown = np.empty((old.shape[0], capacity, old.shape[2]), dtype=np.float64)
                grown[:, : self._length, :] = old[:, : self._length, :]
                caches[index] = grown
        self._capacity = capacity

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._length

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def fused_rows(self) -> List[np.ndarray]:
        """Per-row fused key representation ``s_k^{(t)}``, in arrival order."""
        return self._fused_rows

    def row_key(self, index: int) -> Hashable:
        return self._row_keys[index]

    def key_index(self, key: Hashable) -> int:
        """0-based first-appearance rank of ``key`` in the cached context.

        While the cache is clean this matches the key order of the window
        materialised as a :class:`~repro.data.items.TangledSequence`, so
        callers can reproduce the full re-encode path's key ordering.
        """
        return self._key_order[key]

    def fused_row(self, index: int) -> np.ndarray:
        return self._fused_rows[index]

    def latest_representation(self, key: Hashable) -> Optional[np.ndarray]:
        """The key's fused representation after its newest cached item."""
        return self._latest_rep.get(key)

    def kv_cache_view(self, block_index: int):
        """The live ``(K, V)`` cache slices of one block (for tests/diagnostics)."""
        return (
            self._k_cache[block_index][:, : self._length, :],
            self._v_cache[block_index][:, : self._length, :],
        )

    # ------------------------------------------------------------------ #
    # streaming updates
    # ------------------------------------------------------------------ #
    def _register_item(self, item: Item, index: int):
        """Register row ``index``'s window coordinates — the single source of
        truth for per-item bookkeeping, shared by :meth:`append` and
        :meth:`rebuild` so their exactness cannot drift apart.

        Returns ``(embedding_row, via_key, via_value)``: the item's raw
        embedding and the earlier positions visible to it through each
        correlation type.
        """
        key = item.key
        key_index = self._key_order.setdefault(key, len(self._key_order))
        position = self._key_counts.get(key, 0)
        self._key_counts[key] = position + 1
        row = self.model.input_embedding.embed_item_inference(
            item, key_index=key_index, position=position, time_index=index
        )
        via_key, via_value = self._tracker.observe(key, item.value)
        self._row_keys.append(key)
        return row, via_key, via_value

    @staticmethod
    def _fill_mask_row(row: np.ndarray, index: int, via_key, via_value) -> None:
        """Zero the visible positions of one additive mask row in place.

        Shared by :meth:`append` and :meth:`rebuild` so the visibility rule
        cannot drift between the two paths.
        """
        row[index] = 0.0
        if via_key:
            row[via_key] = 0.0
        if via_value:
            row[via_value] = 0.0

    def _fuse_row(self, key: Hashable, encoded_row: np.ndarray) -> np.ndarray:
        """Fold one encoded row into its key's fusion state and record it.

        Shared by :meth:`append` and :meth:`rebuild` so the fusion replay
        cannot drift between the two paths.
        """
        fusion = self.model.fusion
        state = self._fusion_states.get(key)
        if state is None:
            state = fusion.initial_state_inference()
        representation, new_state = fusion.forward_inference(state, encoded_row)
        self._fusion_states[key] = new_state
        self._latest_rep[key] = representation
        self._fused_rows.append(representation)
        return representation

    def append(self, item: Item) -> np.ndarray:
        """Encode one new arrival in O(W·d) and return its fused representation.

        The new row's embedding, mask row, per-block attention (against the
        cached K/V of every earlier row) and fusion step are computed; nothing
        already cached is touched, which is exact because the mask is causal.
        """
        index = self._length
        if index >= self._capacity:
            self._grow(index + 1)

        key = item.key
        row, via_key, via_value = self._register_item(item, index)
        mask_row = np.full(index + 1, MASK_VALUE, dtype=np.float64)
        self._fill_mask_row(mask_row, index, via_key, via_value)

        for block_index, block in enumerate(self.model.encoder.blocks):
            query, k_row, v_row = block.attention.project_qkv_row(row)
            self._k_cache[block_index][:, index, :] = k_row
            self._v_cache[block_index][:, index, :] = v_row
            row = block.forward_inference_row(
                row,
                query,
                self._k_cache[block_index][:, : index + 1, :],
                self._v_cache[block_index][:, : index + 1, :],
                mask_row,
            )

        representation = self._fuse_row(key, row)
        self._length += 1
        return representation

    def rebuild(self, items: Sequence[Item]) -> None:
        """Invalidate every cache and re-encode ``items`` in one batched pass.

        Called by the engine after window eviction (see the eviction caveat in
        the module docstring).  The batched no-grad pass recomputes the
        embeddings, the full correlation mask, each block's K/V projections
        (which reseed the caches) and the per-key fusion replay.
        """
        self._clear_bookkeeping()
        items = list(items)
        if not items:
            return
        length = len(items)
        if length > self._capacity:
            self._grow(length)

        model = self.model
        embeddings = np.empty((length, model.config.d_model), dtype=np.float64)
        mask = np.full((length, length), MASK_VALUE, dtype=np.float64)
        for index, item in enumerate(items):
            embeddings[index], via_key, via_value = self._register_item(item, index)
            self._fill_mask_row(mask[index], index, via_key, via_value)

        x = embeddings
        for block_index, block in enumerate(model.encoder.blocks):
            x, keys, values = block.forward_inference(x, mask=mask, return_kv=True)
            self._k_cache[block_index][:, :length, :] = keys
            self._v_cache[block_index][:, :length, :] = values

        for index in range(length):
            self._fuse_row(self._row_keys[index], x[index])

        self._length = length
