"""Perf smoke: batched training must beat the per-sample path 2x at B=16.

Deselected by default (see ``pytest.ini``); run with ``pytest -m perf_smoke``.
The gate drives the acceptance point of the cross-sample batched-training
PR: one lockstep ``run_episodes`` call per minibatch (padded cross-sample
GEMMs through the encoder) must process episodes at >= 2x the per-sample
reference rate at B=16, for both position encodings.  Both paths execute
identical episodes (identical per-episode action RNGs), so the ratio is
pure execution strategy; the bench re-measures a below-margin encoding up to
three times keeping the best attempt (the gate asserts a capability, and
best-of-attempts filters process-level timing noise on small runners).
"""

import pytest

pytestmark = pytest.mark.perf_smoke

#: Explicit RNG root for the gate; the bench derives the dataset, tangling,
#: model inits and every episode's action stream from it, so reruns measure
#: identical work.
GATE_SEED = 0


@pytest.fixture(scope="module")
def training_gate_result():
    bench = pytest.importorskip(
        "benchmarks.bench_ext_training_throughput",
        reason="benchmarks/ must be importable (run pytest from the repo root)",
    )
    return bench.run_training_gate("unit", seed=GATE_SEED)


def test_batched_training_at_least_2x_per_sample_absolute(training_gate_result):
    leg = training_gate_result["absolute"]
    assert leg["speedup"] >= 2.0, {k: leg[k] for k in ("speedup", "attempts")}


def test_batched_training_at_least_2x_per_sample_rotary(training_gate_result):
    leg = training_gate_result["rotary"]
    assert leg["speedup"] >= 2.0, {k: leg[k] for k in ("speedup", "attempts")}
