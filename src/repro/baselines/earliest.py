"""EARLIEST (Hartvigsen et al., KDD 2019) adapted to key-value sequences.

EARLIEST is the state-of-the-art time-series early classification method used
as the primary baseline in the paper: an LSTM consumes the series step by
step and a reinforcement-learning halting policy decides when to stop and
classify.  Applied to key-value sequence data it treats each key-value
sequence as an independent multivariate time series of one-hot value
features — it has no notion of value semantics, sessions, or cross-sequence
correlation, which is why the paper finds it performs poorly on this data.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.encoders import LSTMSequenceEncoder
from repro.baselines.rl_policy import RLBaselineConfig, RLHaltingClassifier
from repro.data.items import ValueSpec


class EARLIEST(RLHaltingClassifier):
    """LSTM encoder + RL halting policy (the EARLIEST baseline)."""

    name = "EARLIEST"

    def __init__(
        self,
        spec: ValueSpec,
        num_classes: int,
        config: Optional[RLBaselineConfig] = None,
    ) -> None:
        config = config or RLBaselineConfig()
        encoder = LSTMSequenceEncoder(
            spec,
            d_state=config.d_model,
            rng=np.random.default_rng(config.seed + 11),
        )
        super().__init__(encoder, num_classes, config)
