"""The stdlib HTTP/1.1 front end over an :class:`AsyncServingGateway`.

``ServingHTTPServer`` binds an ``asyncio.start_server`` listener and maps
the serving layer's push-based API onto a small REST surface:

=======  ==============================  =====================================
method   path                            semantics
=======  ==============================  =====================================
POST     ``/v1/streams/{id}/events``     submit one arrival; the admission
                                         status picks the response code
                                         (decided → 200 with the triggered
                                         decisions inlined, accepted → 202,
                                         rejected → 429, shed → 503 +
                                         ``Retry-After``, degraded → 503)
POST     ``/v1/streams/{id}/flush``      flush one stream (drain its shard,
                                         force-decide that stream's keys)
GET      ``/v1/decisions``               chunked NDJSON server-push stream of
                                         every emitted decision, fed by a
                                         bounded ``AsyncQueueSink`` — a slow
                                         reader blocks the publishing worker
                                         (real backpressure), a vanished one
                                         is unsubscribed
GET      ``/v1/stats``                   ``gateway.stats()`` (pure JSON)
GET      ``/v1/health``                  ``gateway.health()`` (pure JSON)
POST     ``/v1/admin/drain``             drain every shard queue
POST     ``/v1/admin/flush``             flush the whole cluster
POST     ``/v1/admin/expire``            expire idle keys (optional ``now``)
POST     ``/v1/admin/snapshot``          capture a server-held snapshot,
                                         returns its id
POST     ``/v1/admin/restore``           restore a held snapshot by id
POST     ``/v1/admin/shutdown``          flush + close the gateway; the
                                         listener stays up so clients observe
                                         the ``draining``/``closed`` 503s
=======  ==============================  =====================================

Lifecycle: ``running`` (submits admitted) → ``draining`` (shutdown verb or
:meth:`ServingHTTPServer.close` in progress — submits 503, reads still
served) → ``closed``.  Malformed requests 400 with a JSON error body; an
unparseable byte stream closes the connection after the 400 (framing is no
longer trustworthy).
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Set

from repro.serving.aio import AsyncServingGateway
from repro.serving.cluster import ClusterSnapshot
from repro.serving.net import protocol
from repro.serving.net.protocol import (
    STATUS_TO_HTTP,
    HTTPRequest,
    WireFormatError,
    decision_to_wire,
    error_body,
    event_from_wire,
    submit_result_to_wire,
)
from repro.serving.sinks import AsyncQueueSink

__all__ = ["ServingHTTPServer"]

#: ``Retry-After`` seconds advertised on shed (transient overload) replies.
SHED_RETRY_AFTER_S = 1


class ServingHTTPServer:
    """Serve an :class:`AsyncServingGateway` over loopback-or-LAN HTTP.

    Construct over an existing gateway (shared ownership: the server closes
    the gateway only via the shutdown verb or when it owns it) or from
    model/spec/config, in which case the server builds and owns one.
    ``port=0`` binds an ephemeral port, published as :attr:`port` after
    :meth:`start` — the loopback-test shape.
    """

    def __init__(
        self,
        gateway: Optional[AsyncServingGateway] = None,
        *,
        model=None,
        spec=None,
        config=None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_buffered: int = 256,
        heartbeat_s: float = 15.0,
    ) -> None:
        if gateway is None:
            if model is None or spec is None:
                raise ValueError(
                    "ServingHTTPServer needs either a gateway= or a "
                    "model + spec (+ optional config) to build one"
                )
            gateway = AsyncServingGateway(model, spec, config)
            self._owns_gateway = True
        else:
            if model is not None or spec is not None or config is not None:
                raise ValueError("pass either gateway= or model/spec/config")
            self._owns_gateway = False
        if max_buffered < 0:
            raise ValueError("max_buffered must be >= 0 (0 = unbounded)")
        self.gateway = gateway
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self._max_buffered = max_buffered
        self._heartbeat_s = heartbeat_s
        self._server: Optional[asyncio.base_events.Server] = None
        self._state = "idle"
        self._stream_tasks: Set[asyncio.Task] = set()
        self._snapshots: Dict[str, ClusterSnapshot] = {}
        self._snapshot_seq = 0
        self._connections = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        return self._state

    async def start(self) -> "ServingHTTPServer":
        """Bind the listener; resolves the ephemeral port."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._state = "running"
        return self

    async def close(self) -> None:
        """Stop accepting, close the gateway (if owned), kill live streams."""
        if self._server is None or self._state == "closed":
            self._state = "closed"
            return
        self._state = "draining"
        self._server.close()
        await self._server.wait_closed()
        if self._owns_gateway and self.gateway.state != "closed":
            await self.gateway.close()
        for task in list(self._stream_tasks):
            task.cancel()
        if self._stream_tasks:
            await asyncio.gather(*self._stream_tasks, return_exceptions=True)
        self._state = "closed"

    async def __aenter__(self) -> "ServingHTTPServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        try:
            while True:
                try:
                    request = await protocol.read_request(reader)
                except WireFormatError as error:
                    writer.write(
                        protocol.json_response(400, error_body(str(error)))
                    )
                    await writer.drain()
                    return  # framing is untrustworthy after a parse error
                if request is None:
                    return  # clean EOF: client closed the keep-alive socket
                if request.method == "GET" and request.path_parts == (
                    "v1",
                    "decisions",
                ):
                    # The connection becomes a decision stream and never
                    # returns to request/response framing.
                    await self._serve_decision_stream(writer)
                    return
                response = await self._dispatch(request)
                writer.write(response)
                await writer.drain()
                if request.headers.get("connection", "").lower() == "close":
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client vanished; nothing to answer
        finally:
            self._connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError: server close() cancelled this handler; the
                # socket is going away regardless, end the task cleanly so
                # asyncio's stream callbacks don't log the cancellation.
                pass

    async def _dispatch(self, request: HTTPRequest) -> bytes:
        parts = request.path_parts
        try:
            if parts[:1] != ("v1",):
                return protocol.json_response(404, error_body("unknown path"))
            if len(parts) == 4 and parts[1] == "streams":
                stream_id, verb = parts[2], parts[3]
                if verb == "events":
                    if request.method != "POST":
                        return protocol.json_response(
                            405, error_body("submit events with POST")
                        )
                    return await self._handle_submit(stream_id, request)
                if verb == "flush":
                    if request.method != "POST":
                        return protocol.json_response(
                            405, error_body("flush with POST")
                        )
                    return await self._handle_flush_stream(stream_id)
                return protocol.json_response(404, error_body("unknown path"))
            if parts == ("v1", "stats"):
                if request.method != "GET":
                    return protocol.json_response(405, error_body("GET only"))
                return protocol.json_response(200, self.stats())
            if parts == ("v1", "health"):
                if request.method != "GET":
                    return protocol.json_response(405, error_body("GET only"))
                return protocol.json_response(200, self.gateway.health())
            if len(parts) == 3 and parts[1] == "admin":
                if request.method != "POST":
                    return protocol.json_response(
                        405, error_body("admin verbs are POST")
                    )
                return await self._handle_admin(parts[2], request)
            return protocol.json_response(404, error_body("unknown path"))
        except WireFormatError as error:
            return protocol.json_response(400, error_body(str(error)))
        except RuntimeError as error:
            # Gateway/cluster lifecycle refusals ("gateway is closed", ...)
            return protocol.json_response(503, error_body(str(error)))

    # ------------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------------ #
    async def _handle_submit(self, stream_id: str, request: HTTPRequest) -> bytes:
        if self._state != "running" or self.gateway.state != "running":
            state = (
                self._state if self._state != "running" else self.gateway.state
            )
            return protocol.json_response(
                503, error_body(f"not accepting submissions: state is {state}")
            )
        event = event_from_wire(
            request.json(), self.gateway.cluster.spec, stream_id
        )
        result = await self.gateway.submit(
            event, stream_id=stream_id, raise_on_reject=False
        )
        status = STATUS_TO_HTTP[result.status]
        headers = {"X-Admission-Status": result.status}
        if result.status == "shed":
            headers["Retry-After"] = str(SHED_RETRY_AFTER_S)
        return protocol.json_response(
            status, submit_result_to_wire(result), headers
        )

    async def _handle_flush_stream(self, stream_id: str) -> bytes:
        emitted = await self.gateway.flush_stream(stream_id)
        return protocol.json_response(
            200, {"decisions": [decision_to_wire(sd) for sd in emitted]}
        )

    async def _handle_admin(self, verb: str, request: HTTPRequest) -> bytes:
        if verb == "drain":
            emitted = await self.gateway.drain()
        elif verb == "flush":
            emitted = await self.gateway.flush()
        elif verb == "expire":
            payload = request.json()
            now = None
            if isinstance(payload, dict) and "now" in payload:
                now = payload["now"]
                if not isinstance(now, (int, float)) or isinstance(now, bool):
                    raise WireFormatError("expire 'now' must be a number")
            emitted = await self.gateway.expire(now)
        elif verb == "snapshot":
            snapshot = await self.gateway.snapshot()
            self._snapshot_seq += 1
            snapshot_id = f"snap-{self._snapshot_seq}"
            self._snapshots[snapshot_id] = snapshot
            return protocol.json_response(200, {"snapshot_id": snapshot_id})
        elif verb == "restore":
            payload = request.json()
            if not isinstance(payload, dict) or "snapshot_id" not in payload:
                raise WireFormatError("restore needs a 'snapshot_id'")
            snapshot = self._snapshots.get(payload["snapshot_id"])
            if snapshot is None:
                return protocol.json_response(
                    404, error_body(f"unknown snapshot {payload['snapshot_id']!r}")
                )
            await self.gateway.restore(snapshot)
            return protocol.json_response(
                200, {"restored": payload["snapshot_id"]}
            )
        elif verb == "shutdown":
            # Reads stay served after the flush; submits 503 from here on.
            self._state = "draining"
            emitted = await self.gateway.close()
            return protocol.json_response(
                200,
                {
                    "state": self.gateway.state,
                    "decisions": [decision_to_wire(sd) for sd in emitted],
                },
            )
        else:
            return protocol.json_response(404, error_body(f"unknown admin verb {verb!r}"))
        return protocol.json_response(
            200, {"decisions": [decision_to_wire(sd) for sd in emitted]}
        )

    # ------------------------------------------------------------------ #
    # the decision stream
    # ------------------------------------------------------------------ #
    async def _serve_decision_stream(self, writer: asyncio.StreamWriter) -> None:
        """Push every emitted decision as chunked NDJSON until either side ends.

        The bounded :class:`AsyncQueueSink` is the backpressure: a reader
        that stops consuming fills the queue and blocks the publishing
        worker.  Heartbeat chunks (empty NDJSON lines, every
        ``heartbeat_s``) bound how long a silently-vanished reader can keep
        its subscription — the first write against the dead socket raises
        and the ``finally`` unsubscribes.
        """
        task = asyncio.current_task()
        self._stream_tasks.add(task)
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue(maxsize=self._max_buffered)
        sink = AsyncQueueSink(queue, loop)
        cluster = self.gateway.cluster
        cluster.subscribe(sink)
        try:
            writer.write(protocol.render_response(200, chunked=True))
            await writer.drain()
            while True:
                if self.gateway.state == "closed" and queue.empty():
                    break
                try:
                    decision = await asyncio.wait_for(
                        queue.get(), timeout=self._heartbeat_s
                    )
                except asyncio.TimeoutError:
                    # Idle heartbeat: detects dead sockets, keeps NDJSON
                    # consumers trivially compatible (blank line).
                    writer.write(protocol.render_chunk(b"\n"))
                    await writer.drain()
                    continue
                line = json.dumps(decision_to_wire(decision)) + "\n"
                writer.write(protocol.render_chunk(line.encode("utf-8")))
                await writer.drain()
            writer.write(protocol.render_last_chunk())
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass  # reader vanished or server closing: just unsubscribe
        finally:
            cluster.unsubscribe(sink)
            sink.close()
            self._stream_tasks.discard(task)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Gateway stats plus the server's own connection accounting."""
        stats = self.gateway.stats()
        stats["server"] = {
            "state": self._state,
            "host": self.host,
            "port": self.port,
            "connections": self._connections,
            "decision_streams": len(self._stream_tasks),
            "held_snapshots": sorted(self._snapshots),
        }
        return stats
