"""Tests for state-dict save / load."""

import numpy as np

from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.serialization import load_into, load_state_dict, save_state_dict
from repro.nn.tensor import Tensor


class SmallModel(Module):
    def __init__(self, seed=0):
        super().__init__()
        self.layer = Linear(3, 2, rng=np.random.default_rng(seed))

    def forward(self, x):
        return self.layer(x)


class TestSerialization:
    def test_roundtrip_through_file(self, tmp_path):
        model = SmallModel(seed=0)
        path = tmp_path / "weights.npz"
        save_state_dict(model, path)
        restored = load_state_dict(path)
        for name, value in model.state_dict().items():
            np.testing.assert_allclose(restored[name], value)

    def test_load_into_other_model_matches_outputs(self, tmp_path):
        source = SmallModel(seed=0)
        target = SmallModel(seed=99)
        path = tmp_path / "weights.npz"
        save_state_dict(source, path)
        load_into(target, path)
        x = Tensor(np.random.default_rng(1).standard_normal((4, 3)))
        np.testing.assert_allclose(source(x).data, target(x).data)

    def test_save_accepts_plain_state_dict(self, tmp_path):
        state = {"a": np.arange(3.0), "b": np.ones((2, 2))}
        path = tmp_path / "state.npz"
        save_state_dict(state, path)
        restored = load_state_dict(path)
        np.testing.assert_allclose(restored["a"], state["a"])
        np.testing.assert_allclose(restored["b"], state["b"])

    def test_save_creates_missing_directories(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "weights.npz"
        save_state_dict(SmallModel(), path)
        assert path.exists() or path.with_suffix(".npz.npz").exists()
