"""Figure 12: effect of the number of concurrent sequences K on KVEC."""

from benchmarks.conftest import run_and_record


def test_fig12_concurrency_effect(benchmark, scale_name):
    result = run_and_record(benchmark, "fig12_concurrency", scale_name)
    assert result.points
    for concurrency, series in result.points.items():
        assert concurrency >= 1
        for earliness, accuracy, harmonic_mean in series:
            assert 0.0 <= earliness <= 1.0
            assert 0.0 <= accuracy <= 1.0
            assert 0.0 <= harmonic_mean <= 1.0
