"""Decision sinks: push-based delivery targets for emitted decisions.

The pull API hands decisions back as returned lists; sinks *push* them to
subscribers the moment the serving layer publishes them.  A sink is anything
implementing :class:`DecisionSink` — ``publish`` one decision (plus the
``publish_all`` batch form) and an idempotent ``close``.  Subscribe sinks on
a :class:`~repro.serving.cluster.ServingCluster` (or an individual
:class:`~repro.serving.cluster.ShardWorker`) and every decision the cluster
emits is delivered exactly once per subscriber, in the exact order of the
returned-list API.

Ordering and threading contract
-------------------------------
Publication is *journal-then-publish*: drain rounds collect their emissions
and publish them as ordered batches.

* Submission-path rounds (``auto_drain`` triggers, ``overflow="drain"``
  backpressure) publish **on the shard's pinned execution context**, right
  after the round completes — under the thread executor that is the shard's
  pinned worker thread.  Rounds of one shard serialize on that worker, and a
  stream lives on exactly one shard, so per-stream delivery order always
  equals per-stream emission order, even with many concurrent submitters.
* Cluster-level ``drain`` / ``flush`` / ``expire`` journal per-shard result
  lists while shards run (possibly concurrently) and publish the merged
  result at the merge point, in the same stable (shard index, round,
  intra-round) order as the returned list — so sink delivery is
  backend-deterministic: serial and thread executors deliver identical
  sequences, which the parity suite pins.

With a single-threaded caller the two paths never overlap and the full sink
stream is list-identical to the concatenated returned lists.  Under
concurrent submitters, batches from different shards may interleave (global
order is scheduling-dependent) but each stream's decisions still arrive in
order.  Sinks may therefore be invoked from worker threads: the sinks in
this module are thread-safe, and a custom :class:`CallbackSink` target must
be too.

Fault isolation: subscriber code runs inside serving rounds, so the hub
(:class:`FanOutSink`) guarantees a raising child never poisons a round or
its sibling subscribers — failures are swallowed per child, counted, and a
child failing enough consecutive publishes is quarantined
(auto-unsubscribed).  Returned decisions are never affected by sink
failures; see :mod:`repro.serving.supervisor` for the wider failure model.

Snapshots and restores do not touch sinks: delivery is not serving state,
so a restore never rescinds (or re-fires on its own) anything already
published — but *replaying* events after a restore re-emits the replayed
decisions, and subscribers see those emissions again, exactly as a
returned-list caller sees the replayed lists.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from collections import deque
from typing import (
    TYPE_CHECKING,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster imports us)
    from repro.serving.cluster import StreamDecision

__all__ = [
    "DecisionSink",
    "CallbackSink",
    "BufferedSink",
    "FanOutSink",
    "AsyncQueueSink",
]


class DecisionSink:
    """Delivery target for pushed decisions (the subscription contract).

    Implementations must tolerate ``publish`` being invoked from shard
    worker threads (see the module docstring's ordering contract) and must
    treat ``close`` as idempotent.
    """

    def publish(self, decision: "StreamDecision") -> None:
        """Deliver one decision."""
        raise NotImplementedError

    def publish_all(self, decisions: Sequence["StreamDecision"]) -> None:
        """Deliver an ordered batch (default: one ``publish`` per decision)."""
        for decision in decisions:
            self.publish(decision)

    def close(self) -> None:
        """Release resources / signal end-of-stream.  Idempotent no-op here."""


class CallbackSink(DecisionSink):
    """Invoke a callable per decision — the thinnest possible subscriber.

    The callback runs on whatever thread publishes (a shard's pinned worker
    for submission-path rounds, the draining caller at cluster merge
    points), so it must be fast and thread-safe; heavy consumers should
    buffer through a :class:`BufferedSink` or :class:`AsyncQueueSink`
    instead of doing work inline.
    """

    def __init__(self, callback: Callable[["StreamDecision"], None]) -> None:
        if not callable(callback):
            raise TypeError("callback must be callable")
        self._callback = callback

    def publish(self, decision: "StreamDecision") -> None:
        self._callback(decision)


class BufferedSink(DecisionSink):
    """Bounded (or unbounded) FIFO buffering of published decisions.

    The deployment-shaped subscriber: publishers append, a consumer
    periodically :meth:`take`\\ s the accumulated batch.  A bounded buffer
    sheds its *oldest* entries on overflow (newest-first retention matches
    the serving layer's freshness bias) and counts what it dropped.
    """

    def __init__(self, maxlen: Optional[int] = None) -> None:
        if maxlen is not None and maxlen <= 0:
            raise ValueError("maxlen must be positive (or None for unbounded)")
        self.maxlen = maxlen
        self._buffer: Deque["StreamDecision"] = deque()
        self._lock = threading.Lock()
        #: Decisions evicted by overflow since construction (or last reset
        #: via ``take(reset_dropped=True)``).
        self.dropped = 0

    def publish(self, decision: "StreamDecision") -> None:
        with self._lock:
            if self.maxlen is not None and len(self._buffer) >= self.maxlen:
                self._buffer.popleft()
                self.dropped += 1
            self._buffer.append(decision)

    def publish_all(self, decisions: Sequence["StreamDecision"]) -> None:
        if not decisions:
            return
        with self._lock:
            for decision in decisions:
                if self.maxlen is not None and len(self._buffer) >= self.maxlen:
                    self._buffer.popleft()
                    self.dropped += 1
                self._buffer.append(decision)

    def take(self, reset_dropped: bool = False) -> List["StreamDecision"]:
        """Remove and return everything buffered so far, in delivery order."""
        with self._lock:
            batch = list(self._buffer)
            self._buffer.clear()
            if reset_dropped:
                self.dropped = 0
        return batch

    def peek(self) -> List["StreamDecision"]:
        """A copy of the buffered decisions without consuming them."""
        with self._lock:
            return list(self._buffer)

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)


class FanOutSink(DecisionSink):
    """Deliver every decision to each of a mutable set of child sinks.

    This is the subscription hub the cluster uses internally: subscribers
    are added/removed at runtime, and each published decision reaches every
    child in subscription order.  Publishing iterates a snapshot, so a
    subscriber list mutated mid-publish never corrupts delivery (the change
    applies from the next publish on).

    Fault isolation: a child sink that raises never poisons the publish — the
    exception is swallowed (counted in ``publish_errors``), delivery to that
    child stops for the current batch, and every *other* child still receives
    the full batch.  A child that fails ``quarantine_after`` consecutive
    publish calls is quarantined: auto-unsubscribed and parked in
    :attr:`quarantined` (the cluster surfaces the count in
    ``stats()["health"]``).  Any successful publish resets that child's
    consecutive-failure count.  ``quarantine_after=None`` disables
    quarantining (failures are still isolated and counted).
    """

    def __init__(
        self,
        sinks: Iterable[DecisionSink] = (),
        quarantine_after: Optional[int] = 3,
    ) -> None:
        if quarantine_after is not None and quarantine_after <= 0:
            raise ValueError("quarantine_after must be positive (or None)")
        self._sinks: List[DecisionSink] = list(sinks)
        self._lock = threading.Lock()
        self.quarantine_after = quarantine_after
        #: Publish calls that raised, across all children, since construction.
        self.publish_errors = 0
        #: Children auto-unsubscribed after ``quarantine_after`` consecutive
        #: failing publish calls, in quarantine order.
        self.quarantined: List[DecisionSink] = []
        #: Consecutive failing publish calls per live child (by identity).
        self._consecutive: Dict[int, int] = {}

    def add(self, sink: DecisionSink) -> DecisionSink:
        """Subscribe a child sink; returns it (for unsubscribe bookkeeping)."""
        if not isinstance(sink, DecisionSink):
            raise TypeError("sink must implement DecisionSink")
        with self._lock:
            self._sinks.append(sink)
        return sink

    def remove(self, sink: DecisionSink) -> bool:
        """Unsubscribe a child sink; False when it was not subscribed."""
        with self._lock:
            try:
                self._sinks.remove(sink)
            except ValueError:
                return False
            self._consecutive.pop(id(sink), None)
        return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._sinks)

    def _snapshot(self) -> List[DecisionSink]:
        with self._lock:
            return list(self._sinks)

    def _note_outcome(self, sink: DecisionSink, failed: bool) -> None:
        """Fold one child publish outcome into the quarantine bookkeeping."""
        with self._lock:
            if not failed:
                self._consecutive.pop(id(sink), None)
                return
            self.publish_errors += 1
            count = self._consecutive.get(id(sink), 0) + 1
            self._consecutive[id(sink)] = count
            if self.quarantine_after is not None and count >= self.quarantine_after:
                try:
                    self._sinks.remove(sink)
                except ValueError:
                    return  # concurrently unsubscribed
                self._consecutive.pop(id(sink), None)
                self.quarantined.append(sink)

    def publish(self, decision: "StreamDecision") -> None:
        for sink in self._snapshot():
            try:
                sink.publish(decision)
            except Exception:
                self._note_outcome(sink, failed=True)
            else:
                self._note_outcome(sink, failed=False)

    def publish_all(self, decisions: Sequence["StreamDecision"]) -> None:
        if not decisions:
            return
        for sink in self._snapshot():
            try:
                sink.publish_all(decisions)
            except Exception:
                # The child loses the rest of this batch only; siblings are
                # untouched and the serving round never sees the error.
                self._note_outcome(sink, failed=True)
            else:
                self._note_outcome(sink, failed=False)

    def delivery_health(self) -> Dict[str, int]:
        """Lock-consistent ``{quarantined, publish_errors}`` counts.

        The health-view accessor: worker threads may be appending to the
        quarantine list via ``_note_outcome`` concurrently, so readers take
        the sink lock instead of touching the attributes directly.
        """
        with self._lock:
            return {
                "quarantined": len(self.quarantined),
                "publish_errors": self.publish_errors,
            }

    def close(self) -> None:
        # Snapshot live + quarantined children under the lock: publishes on
        # worker threads may be quarantining (appending) concurrently.
        with self._lock:
            children = list(self._sinks) + list(self.quarantined)
        for sink in children:
            try:
                sink.close()
            except Exception:
                pass  # closing is best-effort; a broken child stays broken


class AsyncQueueSink(DecisionSink):
    """Bridge published decisions into an :class:`asyncio.Queue`.

    Built for the :class:`~repro.serving.aio.AsyncServingGateway`: shard
    workers publish from plain threads, consumers ``await queue.get()`` on
    the event loop.  Delivery is loop-thread-safe:

    * unbounded queue — ``loop.call_soon_threadsafe(put_nowait)``: the
      publisher never blocks;
    * bounded queue — the publishing thread blocks in
      ``run_coroutine_threadsafe(queue.put(...))`` until the consumer makes
      room: *backpressure propagates to the serving layer*.  A bounded sink
      therefore requires a concurrently running consumer task; publishing
      from the loop thread itself would deadlock on a full queue and is
      rejected, and a publish that stays blocked longer than ``put_timeout``
      seconds (consumer task died or stopped consuming) raises instead of
      hanging the shard worker forever.
    """

    def __init__(
        self,
        queue: "asyncio.Queue",
        loop: asyncio.AbstractEventLoop,
        put_timeout: Optional[float] = 30.0,
    ) -> None:
        if put_timeout is not None and put_timeout <= 0:
            raise ValueError("put_timeout must be positive (or None to wait forever)")
        self._queue = queue
        self._loop = loop
        self._put_timeout = put_timeout
        self._closed = False

    @property
    def queue(self) -> "asyncio.Queue":
        return self._queue

    def publish(self, decision: "StreamDecision") -> None:
        if self._closed or self._loop.is_closed():
            # A sink whose loop is gone (an abandoned gateway that was never
            # closed) drops deliveries instead of crashing the serving layer.
            return
        bounded = self._queue.maxsize > 0
        on_loop_thread = False
        try:
            on_loop_thread = asyncio.get_running_loop() is self._loop
        except RuntimeError:
            pass
        if not bounded:
            if on_loop_thread:
                self._queue.put_nowait(decision)
            else:
                self._loop.call_soon_threadsafe(self._queue.put_nowait, decision)
            return
        if on_loop_thread:
            # Blocking the loop on its own consumer is a guaranteed deadlock.
            raise RuntimeError(
                "bounded AsyncQueueSink cannot publish from the event-loop "
                "thread; run the serving call in an executor"
            )
        future = asyncio.run_coroutine_threadsafe(self._queue.put(decision), self._loop)
        try:
            future.result(timeout=self._put_timeout)
        # concurrent.futures.TimeoutError: an alias of the builtin only
        # since 3.11 — name the futures flavour so older runtimes match too.
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise RuntimeError(
                f"bounded AsyncQueueSink publish stalled for "
                f"{self._put_timeout}s — the consumer task is not draining "
                f"the decision queue (dead or stopped consuming)"
            ) from None

    def close(self) -> None:
        self._closed = True
