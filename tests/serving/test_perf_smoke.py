"""Perf smoke: the incremental serving paths must beat full re-encode.

Deselected by default (see ``pytest.ini``); run with ``pytest -m perf_smoke``.
The assertions are wall-clock based and intentionally loose (2x where the
measured margins are orders of magnitude larger) so the smoke stays robust
on loaded CI machines.  The benchmark is fully deterministic: models and
streams are derived from the explicit ``seed`` passed below.
"""

import pytest

pytestmark = pytest.mark.perf_smoke

#: Explicit RNG root for the gate; run_latency_comparison derives every
#: model init and stream from it, so reruns measure identical work.
GATE_SEED = 0


@pytest.fixture(scope="module")
def latency_result():
    bench = pytest.importorskip(
        "benchmarks.bench_ext_serving_latency",
        reason="benchmarks/ must be importable (run pytest from the repo root)",
    )
    return bench.run_latency_comparison("unit", emit_json=False, seed=GATE_SEED)


def test_incremental_at_least_2x_full_reencode_at_window_256(latency_result):
    stats = latency_result["windows"][256]
    assert stats["speedup_mean"]["fill"] >= 2.0, stats


def test_rotary_ring_at_least_2x_full_reencode_when_saturated(latency_result):
    """Saturated-regime gate for the eviction-stable ring buffer: every
    arrival evicts, yet the rotary scheme must stay well ahead of the full
    re-encode because it never rebuilds (O(W·d) vs O(W²·d) per arrival)."""
    stats = latency_result["windows"][256]
    assert stats["speedup_rotary_mean"]["saturated"] >= 2.0, stats
    # The ring's fill and saturated costs are the same order; the legacy
    # absolute scheme cannot be gated here because its saturated path
    # legitimately degrades to batched rebuilds.
    assert stats["speedup_rotary_mean"]["fill"] >= 2.0, stats


def test_batched_shard_encoding_at_least_2x_serial(cluster_bench_result):
    """Batched-shard gate of the sharded-cluster PR: the cross-stream
    ``append_batch`` path (one GEMM per block + one batched halt-probability
    matvec, exactly a shard's drain round) must beat the serial per-arrival
    encoding by >= 2x at batch >= 8, window 256, rotary, saturated ring."""
    assert cluster_bench_result["speedup"] >= 2.0, cluster_bench_result


@pytest.fixture(scope="module")
def cluster_bench_result():
    bench = pytest.importorskip(
        "benchmarks.bench_ext_cluster_throughput",
        reason="benchmarks/ must be importable (run pytest from the repo root)",
    )
    # Batch 16 (>= the satellite's batch-8 floor) keeps a comfortable noise
    # margin over the 2x threshold on loaded CI machines; batch-8 numbers are
    # tracked in BENCH_serving.json by the full throughput sweep.
    return bench.run_batch_speedup(window=256, batch=16, rounds=48, seed=GATE_SEED)


def _available_cpus() -> int:
    from repro.serving.parallel import available_cpus

    return available_cpus()


@pytest.fixture(scope="module")
def parallel_gate_result():
    bench = pytest.importorskip(
        "benchmarks.bench_ext_cluster_throughput",
        reason="benchmarks/ must be importable (run pytest from the repo root)",
    )
    return bench.run_parallel_drain_gate(
        window=128, num_streams=64, num_shards=4, seed=GATE_SEED
    )


@pytest.mark.skipif(
    _available_cpus() < 2,
    reason="thread-executor speedup is parallelism; it needs >= 2 usable cores",
)
def test_thread_executor_drain_at_least_1_5x_serial(parallel_gate_result):
    """Parallel-execution gate: with 4 shards pinned to 4 pool workers, one
    cluster drain (window 128, 64 uniform streams, fixed batch) must run
    >= 1.5x faster than the serial backend on the identical event sequence.
    The speedup is real concurrency — numpy releases the GIL inside the
    cross-stream GEMMs, so shard rounds overlap on distinct cores — which is
    why the gate skips on single-core machines instead of asserting the
    physically impossible."""
    assert parallel_gate_result["speedup"] >= 1.5, parallel_gate_result


@pytest.mark.skipif(
    _available_cpus() < 2,
    reason="process-executor speedup is parallelism; it needs >= 2 usable cores",
)
def test_process_executor_drain_at_least_1_5x_serial(parallel_gate_result):
    """Process-backend gate, same geometry as the thread gate: shard rounds
    run in long-lived worker processes (no shared GIL at all), so the drain
    must also clear 1.5x serial — the per-round transport traffic (entries
    out, decisions back) is the overhead the gate bounds.  Skips on
    single-core machines for the same physical reason as the thread gate."""
    assert parallel_gate_result["speedup_process"] >= 1.5, parallel_gate_result


@pytest.fixture(scope="module")
def net_gate_result():
    bench = pytest.importorskip(
        "benchmarks.bench_ext_cluster_throughput",
        reason="benchmarks/ must be importable (run pytest from the repo root)",
    )
    return bench.run_net_throughput(seed=GATE_SEED, emit_json=False)


def test_http_loopback_at_least_half_direct_gateway_throughput(net_gate_result):
    """Network-tier gate: submitting the identical traffic through the
    loopback HTTP front end (request framing + JSON codecs + one socket
    round-trip per event) must sustain >= 0.5x the direct async-gateway
    throughput.  Both legs run the same AsyncServingGateway machinery, so
    the ratio isolates the wire tax — a regression here means the protocol
    layer started copying, blocking, or round-tripping more than it
    should."""
    assert net_gate_result["http_vs_direct"] >= 0.5, net_gate_result


def _shm_available() -> bool:
    from repro.serving.transport import shm_available

    return shm_available()


@pytest.fixture(scope="module")
def transport_microbench_result():
    bench = pytest.importorskip(
        "benchmarks.bench_ext_cluster_throughput",
        reason="benchmarks/ must be importable (run pytest from the repo root)",
    )
    return bench.run_transport_microbench(window=128, batch=8, seed=GATE_SEED)


@pytest.mark.skipif(
    not _shm_available(),
    reason="multiprocessing.shared_memory unavailable on this platform",
)
def test_shm_transport_serialize_cheaper_than_pipe(transport_microbench_result):
    """Transport gate at window 128 / batch 8: the flat shared-memory codec
    must move strictly fewer bytes per round than pickling over the pipe
    (deterministic — the numeric columns pack tighter than their pickled
    object graphs) and its caller-side serialize time must stay within 2x
    of the pipe's as an always-on sanity bound.

    The strict 0.5x ratio is gated only on >= 2 usable cores: on a single
    core the worker's model compute runs on the same core as the caller
    between rounds, so every encode starts cache-cold and both transports
    pay the same ~20us refill penalty, compressing the measured ratio
    toward 1 (with scheduling noise pushing individual runs either side of
    it) regardless of codec cost — warm, the shm codec measures ~0.43x
    pipe.  Same skip convention as the drain-speedup gates above."""
    micro = transport_microbench_result
    assert micro["shm"]["transport_actual"] == "shm", micro
    assert micro["shm"]["bytes_per_round"] < micro["pipe"]["bytes_per_round"], micro
    assert (
        micro["shm"]["serialize_ms_mean"] <= 2.0 * micro["pipe"]["serialize_ms_mean"]
    ), micro
    if _available_cpus() >= 2:
        assert micro["shm_vs_pipe_serialize"] <= 0.5, micro
