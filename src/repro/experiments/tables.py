"""Run functions for the paper's tables (Table I and Table II)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.datasets.base import DatasetStatistics
from repro.datasets.registry import PAPER_STATISTICS
from repro.datasets.stats import compute_statistics
from repro.experiments.presets import ExperimentScale, get_scale
from repro.experiments.workloads import build_scaled_dataset


def _resolve_scale(scale) -> ExperimentScale:
    if isinstance(scale, ExperimentScale):
        return scale
    return get_scale(scale)


# --------------------------------------------------------------------------- #
# Table I: dataset statistics
# --------------------------------------------------------------------------- #
@dataclass
class Table1Result:
    """Generated-vs-published dataset statistics."""

    generated: Dict[str, DatasetStatistics] = field(default_factory=dict)
    published: Dict[str, DatasetStatistics] = field(default_factory=dict)

    def rows(self) -> List[Tuple]:
        """One row per dataset: name, ours (#keys, |Sk|, session, classes), paper's."""
        rows = []
        for name, stats in self.generated.items():
            paper = self.published.get(name)
            rows.append((name, stats.as_row(), paper.as_row() if paper else None))
        return rows

    def render(self) -> str:
        header = (
            f"{'dataset':<24}{'#keys':>8}{'avg |Sk|':>10}{'avg sess':>10}{'#cls':>6}"
            f"    {'paper #keys':>12}{'paper |Sk|':>11}{'paper sess':>11}{'paper #cls':>11}"
        )
        lines = [header, "-" * len(header)]
        for name, stats in self.generated.items():
            paper = self.published.get(name)
            line = (
                f"{name:<24}{stats.num_keys:>8}{stats.avg_sequence_length:>10.1f}"
                f"{stats.avg_session_length:>10.1f}{stats.num_classes:>6}"
            )
            if paper:
                line += (
                    f"    {paper.num_keys:>12}{paper.avg_sequence_length:>11.1f}"
                    f"{paper.avg_session_length:>11.1f}{paper.num_classes:>11}"
                )
            lines.append(line)
        return "\n".join(lines)


def run_table1_dataset_stats(scale="bench") -> Table1Result:
    """Table I: statistics of every generated dataset next to the paper's."""
    scale = _resolve_scale(scale)
    result = Table1Result(published=dict(PAPER_STATISTICS))
    for name in scale.dataset_keys:
        dataset = build_scaled_dataset(name, scale)
        result.generated[name] = compute_statistics(dataset)
    return result


# --------------------------------------------------------------------------- #
# Table II: per-method trade-off hyperparameters
# --------------------------------------------------------------------------- #
@dataclass
class Table2Result:
    """The trade-off hyperparameter of every method plus the sweep we use."""

    rows: List[Tuple[str, str, str, Tuple[float, ...]]] = field(default_factory=list)

    def render(self) -> str:
        header = f"{'method':<16}{'hyperparameter':<18}{'description':<34}{'sweep values'}"
        lines = [header, "-" * len(header)]
        for method, parameter, description, sweep in self.rows:
            lines.append(f"{method:<16}{parameter:<18}{description:<34}{list(sweep)}")
        return "\n".join(lines)


def run_table2_hyperparameters(scale="bench") -> Table2Result:
    """Table II: the earliness/accuracy trade-off knob per method."""
    scale = _resolve_scale(scale)
    return Table2Result(
        rows=[
            ("KVEC", "alpha, beta", "earliness-accuracy trade off", scale.kvec_beta_sweep),
            ("EARLIEST", "lambda", "earliness-accuracy trade off", scale.lambda_sweep),
            ("SRN-EARLIEST", "lambda", "earliness-accuracy trade off", scale.lambda_sweep),
            ("SRN-Fixed", "tau >= 1", "halting time threshold", tuple(float(v) for v in scale.fixed_tau_sweep)),
            ("SRN-Confidence", "mu in [0, 1]", "halting confidence threshold", scale.confidence_sweep),
        ]
    )
