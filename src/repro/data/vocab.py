"""Encoders mapping raw feature values to categorical codes.

Items store small integer codes per value dimension (so the embedding layers
can be plain lookup tables).  Raw features come in two flavours:

* categorical (packet direction, movie genre, protocol) — handled by
  :class:`CategoricalEncoder`,
* continuous (packet size, rating) — discretised into buckets by
  :class:`BucketEncoder`.

A :class:`ValueEncoder` combines one encoder per dimension and produces both
the integer code tuple and the :class:`~repro.data.items.ValueSpec`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.items import ValueSpec


class CategoricalEncoder:
    """Map arbitrary hashable raw values to dense integer codes.

    Unknown values encountered after :meth:`freeze` map to a dedicated
    ``<unk>`` code instead of growing the vocabulary.
    """

    def __init__(self, name: str = "categorical") -> None:
        self.name = name
        self._codes: Dict[Hashable, int] = {}
        self._frozen = False

    def fit(self, values: Sequence[Hashable]) -> "CategoricalEncoder":
        """Register every distinct value in ``values``."""
        for value in values:
            self.encode(value)
        return self

    def freeze(self) -> "CategoricalEncoder":
        """Stop growing the vocabulary; reserve an ``<unk>`` code."""
        if not self._frozen:
            self._codes.setdefault("<unk>", len(self._codes))
            self._frozen = True
        return self

    def encode(self, value: Hashable) -> int:
        """Return the integer code of ``value`` (allocating one if unfrozen)."""
        if value in self._codes:
            return self._codes[value]
        if self._frozen:
            return self._codes["<unk>"]
        code = len(self._codes)
        self._codes[value] = code
        return code

    @property
    def cardinality(self) -> int:
        """Number of codes (including ``<unk>`` when frozen)."""
        return max(1, len(self._codes))

    def __len__(self) -> int:
        return len(self._codes)


class BucketEncoder:
    """Discretise a continuous feature into ``num_buckets`` codes.

    Bucket boundaries are either uniform over ``[low, high]`` or fitted as
    quantiles of observed data with :meth:`fit`.
    """

    def __init__(
        self,
        num_buckets: int,
        low: float = 0.0,
        high: float = 1.0,
        name: str = "bucket",
    ) -> None:
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        if high <= low:
            raise ValueError("high must exceed low")
        self.name = name
        self.num_buckets = num_buckets
        self._edges = np.linspace(low, high, num_buckets + 1)[1:-1]

    def fit(self, values: Sequence[float]) -> "BucketEncoder":
        """Fit bucket edges to the empirical quantiles of ``values``."""
        array = np.asarray(list(values), dtype=np.float64)
        if array.size == 0:
            return self
        quantiles = np.linspace(0.0, 1.0, self.num_buckets + 1)[1:-1]
        self._edges = np.quantile(array, quantiles)
        return self

    def encode(self, value: float) -> int:
        """Return the bucket index of ``value`` in ``[0, num_buckets)``."""
        return int(np.searchsorted(self._edges, float(value), side="right"))

    @property
    def cardinality(self) -> int:
        return self.num_buckets


class ValueEncoder:
    """Encode a raw value vector dimension-by-dimension.

    Parameters
    ----------
    encoders:
        One :class:`CategoricalEncoder` or :class:`BucketEncoder` per value
        dimension, in order.
    field_names:
        Names of the dimensions (defaults to the encoders' names).
    session_field:
        Which dimension defines sessions (see :class:`ValueSpec`).
    """

    def __init__(
        self,
        encoders: Sequence,
        field_names: Optional[Sequence[str]] = None,
        session_field: int = 0,
    ) -> None:
        if not encoders:
            raise ValueError("at least one encoder is required")
        self.encoders = list(encoders)
        self.field_names = tuple(field_names or [enc.name for enc in self.encoders])
        if len(self.field_names) != len(self.encoders):
            raise ValueError("field_names must match the number of encoders")
        self.session_field = session_field

    def encode(self, raw_value: Sequence) -> Tuple[int, ...]:
        """Encode one raw value vector to integer codes."""
        if len(raw_value) != len(self.encoders):
            raise ValueError(
                f"raw value has {len(raw_value)} fields, expected {len(self.encoders)}"
            )
        return tuple(enc.encode(v) for enc, v in zip(self.encoders, raw_value))

    def spec(self) -> ValueSpec:
        """Build the :class:`ValueSpec` describing the encoded values."""
        return ValueSpec(
            field_names=self.field_names,
            cardinalities=tuple(enc.cardinality for enc in self.encoders),
            session_field=self.session_field,
        )
