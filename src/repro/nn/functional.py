"""Composed differentiable operations used across the KVEC reproduction.

These functions operate on :class:`~repro.nn.tensor.Tensor` objects and build
the computation graph through the primitive operations defined on ``Tensor``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.nn.tensor import SIGMOID_CLIP, Tensor

ArrayLike = Union[Tensor, np.ndarray, list, tuple, float, int]


def _as_tensor(value: ArrayLike) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


# --------------------------------------------------------------------------- #
# activations
# --------------------------------------------------------------------------- #
def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return _as_tensor(x).relu()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return _as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return _as_tensor(x).tanh()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    x = _as_tensor(x)
    inner = (x + x * x * x * 0.044715) * 0.7978845608028654
    return x * 0.5 * (inner.tanh() + 1.0)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = _as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = _as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


# --------------------------------------------------------------------------- #
# raw-array inference helpers (no-grad fast path)
# --------------------------------------------------------------------------- #
def sigmoid_array(x: np.ndarray) -> np.ndarray:
    """Raw-array sigmoid matching :meth:`Tensor.sigmoid` numerics exactly.

    Every no-grad fast path must use this (not a re-implementation) so
    fast/reference parity cannot drift; the shared clip bound lives in
    :data:`repro.nn.tensor.SIGMOID_CLIP`.
    """
    return 1.0 / (1.0 + np.exp(-np.clip(x, -SIGMOID_CLIP, SIGMOID_CLIP)))


def softmax_array(x: np.ndarray) -> np.ndarray:
    """Raw-array softmax over the last axis matching :func:`softmax` numerics."""
    shifted = x - x.max(axis=-1, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=-1, keepdims=True)
    return shifted


# --------------------------------------------------------------------------- #
# losses
# --------------------------------------------------------------------------- #
def cross_entropy(logits: Tensor, targets: ArrayLike, reduction: str = "mean") -> Tensor:
    """Cross-entropy between ``logits`` of shape (N, C) and integer ``targets``.

    Parameters
    ----------
    logits:
        Unnormalised class scores of shape ``(N, C)``.
    targets:
        Integer class labels of shape ``(N,)``.
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"``.
    """
    logits = _as_tensor(logits)
    target_idx = np.asarray(
        targets.data if isinstance(targets, Tensor) else targets
    ).astype(int)
    if logits.ndim != 2:
        raise ValueError(f"expected 2-D logits, got shape {logits.shape}")
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(len(target_idx)), target_idx]
    losses = -picked
    return _reduce(losses, reduction)


def nll_loss(log_probs: Tensor, targets: ArrayLike, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood from already-log-normalised probabilities."""
    log_probs = _as_tensor(log_probs)
    target_idx = np.asarray(
        targets.data if isinstance(targets, Tensor) else targets
    ).astype(int)
    picked = log_probs[np.arange(len(target_idx)), target_idx]
    return _reduce(-picked, reduction)


def binary_cross_entropy(probs: Tensor, targets: ArrayLike, reduction: str = "mean") -> Tensor:
    """Binary cross-entropy on probabilities in (0, 1)."""
    probs = _as_tensor(probs).clip(1e-9, 1.0 - 1e-9)
    targets = _as_tensor(targets)
    losses = -(targets * probs.log() + (1.0 - targets) * (1.0 - probs).log())
    return _reduce(losses, reduction)


def mse_loss(prediction: Tensor, target: ArrayLike, reduction: str = "mean") -> Tensor:
    """Mean squared error."""
    prediction = _as_tensor(prediction)
    target = _as_tensor(target)
    losses = (prediction - target) ** 2
    return _reduce(losses, reduction)


def _reduce(losses: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return losses.mean()
    if reduction == "sum":
        return losses.sum()
    if reduction == "none":
        return losses
    raise ValueError(f"unknown reduction {reduction!r}")


# --------------------------------------------------------------------------- #
# embedding and dropout
# --------------------------------------------------------------------------- #
def embedding(weight: Tensor, indices: ArrayLike) -> Tensor:
    """Look up rows of ``weight`` (V, D) by integer ``indices``.

    The gradient is scattered back into the rows that were selected.  For
    large index arrays (e.g. the (B, T, T) relative-position lookups of the
    batched trainer) the scatter-add runs as one ``np.bincount`` per column,
    which is an order of magnitude faster than ``np.add.at`` elementwise
    accumulation; the summation order differs from ``np.add.at`` only at
    float rounding level, within the batched-vs-per-sample parity bound.
    """
    weight = _as_tensor(weight)
    index_array = np.asarray(
        indices.data if isinstance(indices, Tensor) else indices
    ).astype(int)
    if weight.ndim != 2:
        return weight[index_array]
    out_data = weight.data[index_array]
    rows, cols = weight.data.shape

    def backward(grad: np.ndarray) -> None:
        if not weight.requires_grad:
            return
        full = np.zeros_like(weight.data)
        flat_idx = index_array.reshape(-1)
        flat_grad = np.ascontiguousarray(grad).reshape(-1, cols)
        if flat_idx.size >= 4096:
            for column in range(cols):
                full[:, column] = np.bincount(
                    flat_idx, weights=flat_grad[:, column], minlength=rows
                )
        else:
            np.add.at(full, flat_idx, flat_grad)
        weight._accumulate(full, owned=True)

    return Tensor._make(out_data, (weight,), backward)


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: zero activations with probability ``p`` during training."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


# --------------------------------------------------------------------------- #
# misc
# --------------------------------------------------------------------------- #
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (mirrors ``torch.nn.functional.linear``)."""
    out = _as_tensor(x).matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out


def one_hot(indices: ArrayLike, num_classes: int) -> np.ndarray:
    """Return a one-hot encoded float array for integer ``indices``."""
    index_array = np.asarray(
        indices.data if isinstance(indices, Tensor) else indices
    ).astype(int)
    out = np.zeros((index_array.size, num_classes), dtype=np.float64)
    out[np.arange(index_array.size), index_array.reshape(-1)] = 1.0
    return out.reshape(*index_array.shape, num_classes)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    return Tensor.concatenate(tensors, axis=axis)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (differentiable)."""
    return Tensor.stack(tensors, axis=axis)
