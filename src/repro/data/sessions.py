"""Session segmentation.

The paper defines a *session* as a set of consecutive, time-adjacent items
within one key-value sequence that share the same value in a designated
subspace of the value field (Section IV-B).  For the traffic datasets the
designated field is the packet transmission direction (a session is then
exactly a *burst*); for MovieLens it is the movie genre.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence

from repro.data.items import Item, KeyValueSequence


@dataclass
class Session:
    """A maximal run of consecutive items sharing the session-field value."""

    key: Hashable
    session_value: int
    start_index: int
    items: List[Item] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def end_index(self) -> int:
        """Index (within the key sequence) one past the last item of the session."""
        return self.start_index + len(self.items)

    def append(self, item: Item) -> None:
        self.items.append(item)


def segment_sessions(
    sequence: KeyValueSequence,
    session_field: int,
    max_gap: Optional[float] = None,
) -> List[Session]:
    """Split a key-value sequence into sessions.

    Parameters
    ----------
    sequence:
        The per-key sequence to segment.
    session_field:
        Index of the value dimension whose equal-value runs define sessions.
    max_gap:
        Optional maximum time gap between consecutive items of a session.
        A gap larger than ``max_gap`` starts a new session even if the
        session-field value is unchanged ("uninterrupted in time").

    Returns
    -------
    list of :class:`Session` in chronological order.  Their item counts sum
    to ``len(sequence)``.
    """
    sessions: List[Session] = []
    current: Optional[Session] = None
    previous_time: Optional[float] = None
    for index, item in enumerate(sequence):
        value = item.field(session_field)
        gap_too_large = (
            max_gap is not None
            and previous_time is not None
            and (item.time - previous_time) > max_gap
        )
        if current is None or current.session_value != value or gap_too_large:
            current = Session(sequence.key, value, start_index=index)
            sessions.append(current)
        current.append(item)
        previous_time = item.time
    return sessions


def session_lengths(
    sequences: Sequence[KeyValueSequence],
    session_field: int,
    max_gap: Optional[float] = None,
) -> List[int]:
    """Return the lengths of every session across ``sequences``.

    Used to reproduce the "avg session length" column of Table I.
    """
    lengths: List[int] = []
    for sequence in sequences:
        lengths.extend(len(s) for s in segment_sessions(sequence, session_field, max_gap))
    return lengths


def average_session_length(
    sequences: Sequence[KeyValueSequence],
    session_field: int,
    max_gap: Optional[float] = None,
) -> float:
    """Average session length across ``sequences`` (0.0 if there are no items)."""
    lengths = session_lengths(sequences, session_field, max_gap)
    if not lengths:
        return 0.0
    return sum(lengths) / len(lengths)
