"""Tests for the live-arrival simulator."""

import numpy as np
import pytest

from repro.data.items import Item, KeyValueSequence, ValueSpec
from repro.serving.simulator import ArrivalSimulator, SimulatorConfig

SPEC = ValueSpec(("v", "d"), (4, 2), 1)


def make_sequence(key, length, label=0):
    items = [Item(key, (i % 4, i % 2), float(i)) for i in range(length)]
    return KeyValueSequence(key, items, label)


def make_pool(num=6, length=5):
    return [make_sequence(f"k{i}", length, label=i % 2) for i in range(num)]


class TestSimulatorConfig:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            SimulatorConfig(arrival_rate=0.0)

    def test_invalid_gap_scale(self):
        with pytest.raises(ValueError):
            SimulatorConfig(gap_scale=-1.0)


class TestArrivalSimulator:
    def test_requires_sequences(self):
        with pytest.raises(ValueError):
            ArrivalSimulator([])

    def test_rejects_unlabelled_sequences(self):
        sequence = make_sequence("a", 3)
        sequence.label = None
        with pytest.raises(ValueError):
            ArrivalSimulator([sequence])

    def test_emits_every_item_in_chronological_order(self):
        pool = make_pool(num=5, length=4)
        simulator = ArrivalSimulator(pool, SimulatorConfig(seed=0))
        events = list(simulator.events())
        assert len(events) == 20
        times = [event.time for event in events]
        assert times == sorted(times)

    def test_per_key_order_preserved(self):
        pool = make_pool(num=4, length=6)
        simulator = ArrivalSimulator(pool, SimulatorConfig(seed=1))
        seen = {}
        for event in simulator.events():
            seen.setdefault(event.key, []).append(event.time)
        for times in seen.values():
            assert times == sorted(times)
            assert len(times) == 6

    def test_labels_and_lengths_exposed(self):
        pool = make_pool(num=4, length=3)
        simulator = ArrivalSimulator(pool, SimulatorConfig(seed=0))
        assert simulator.labels == {"k0": 0, "k1": 1, "k2": 0, "k3": 1}
        assert simulator.sequence_lengths == {f"k{i}": 3 for i in range(4)}

    def test_deterministic_given_seed(self):
        pool = make_pool()
        first = [event.time for event in ArrivalSimulator(pool, SimulatorConfig(seed=5)).events()]
        second = [event.time for event in ArrivalSimulator(pool, SimulatorConfig(seed=5)).events()]
        assert first == second

    def test_max_active_bounds_concurrency(self):
        pool = make_pool(num=12, length=8)
        config = SimulatorConfig(arrival_rate=50.0, max_active=3, seed=0)
        simulator = ArrivalSimulator(pool, config)
        assert simulator.peak_concurrency() <= 3

    def test_higher_rate_gives_more_overlap(self):
        pool = make_pool(num=10, length=10)
        slow = ArrivalSimulator(pool, SimulatorConfig(arrival_rate=0.01, seed=0))
        fast = ArrivalSimulator(pool, SimulatorConfig(arrival_rate=100.0, seed=0))
        assert fast.peak_concurrency() >= slow.peak_concurrency()

    def test_concurrency_profile_shape(self):
        simulator = ArrivalSimulator(make_pool(), SimulatorConfig(seed=0))
        profile = simulator.concurrency_profile(resolution=10)
        assert len(profile) == 11
        assert all(active >= 0 for _, active in profile)
        assert max(active for _, active in profile) == simulator.peak_concurrency()
