"""Tests for the assembled KVEC model and its episode semantics."""

import numpy as np
import pytest

from repro.core.config import KVECConfig
from repro.core.model import KVEC, PredictionRecord
from repro.data.items import Item, TangledSequence, ValueSpec

SPEC = ValueSpec(("size", "direction"), (8, 2), session_field=1)


def make_tangle(num_items=12, num_keys=3, seed=0):
    rng = np.random.default_rng(seed)
    items = [
        Item(f"k{i % num_keys}", (int(rng.integers(0, 8)), int(rng.integers(0, 2))), float(i))
        for i in range(num_items)
    ]
    labels = {f"k{i}": i % 2 for i in range(num_keys)}
    return TangledSequence(items, labels, SPEC)


@pytest.fixture
def small_model(tiny_kvec_config):
    return KVEC(SPEC, num_classes=2, config=tiny_kvec_config)


class TestConfigValidation:
    def test_defaults_valid(self):
        KVECConfig()

    def test_heads_must_divide_dimension(self):
        with pytest.raises(ValueError):
            KVECConfig(d_model=30, num_heads=4)

    def test_unknown_fusion_rejected(self):
        with pytest.raises(ValueError):
            KVECConfig(fusion="concat")

    def test_with_overrides_returns_copy(self):
        config = KVECConfig()
        modified = config.with_overrides(beta=0.5)
        assert modified.beta == 0.5
        assert config.beta != 0.5

    def test_paper_scale_sizes(self):
        paper = KVECConfig().paper_scale()
        assert paper.d_model == 128
        assert paper.num_blocks == 6
        assert paper.epochs == 100


class TestEpisodes:
    def test_every_key_gets_classified(self, small_model):
        result = small_model.run_episode(make_tangle(), mode="greedy")
        records = result.records()
        assert {record.key for record in records} == {"k0", "k1", "k2"}
        assert all(record.predicted is not None for record in records)

    def test_halt_observation_bounded_by_sequence_length(self, small_model):
        result = small_model.run_episode(make_tangle(20, 4), mode="sample")
        for record in result.records():
            assert 1 <= record.halt_observation <= record.sequence_length

    def test_greedy_mode_is_deterministic(self, small_model):
        small_model.eval()
        first = small_model.run_episode(make_tangle(), mode="greedy").records()
        second = small_model.run_episode(make_tangle(), mode="greedy").records()
        assert [(r.key, r.predicted, r.halt_observation) for r in first] == [
            (r.key, r.predicted, r.halt_observation) for r in second
        ]

    def test_high_threshold_forces_full_observation(self, small_model):
        result = small_model.run_episode(make_tangle(), mode="greedy", halt_threshold=1.1)
        for record in result.records():
            assert record.halt_observation == record.sequence_length
            assert not record.halted_by_policy

    def test_invalid_mode_rejected(self, small_model):
        with pytest.raises(ValueError):
            small_model.run_episode(make_tangle(), mode="bogus")

    def test_empty_tangle_rejected(self, small_model):
        with pytest.raises(ValueError):
            small_model.run_episode(make_tangle(), max_items=0)

    def test_max_items_truncates(self, small_model):
        result = small_model.run_episode(make_tangle(12, 2), mode="greedy", halt_threshold=1.1, max_items=6)
        total_observed = sum(record.halt_observation for record in result.records())
        assert total_observed == 6

    def test_attention_maps_only_when_requested(self, small_model):
        with_maps = small_model.run_episode(make_tangle(), mode="greedy", store_attention=True)
        without_maps = small_model.run_episode(make_tangle(), mode="greedy")
        assert with_maps.attention_maps
        assert not without_maps.attention_maps

    def test_episode_states_align_with_actions(self, small_model):
        result = small_model.run_episode(make_tangle(16, 2), mode="sample")
        for episode in result.episodes.values():
            assert len(episode.states) == len(episode.actions) == len(episode.halt_log_probs)


class TestPredictionInterface:
    def test_predict_tangle_returns_records(self, small_model):
        records = small_model.predict_tangle(make_tangle())
        assert all(isinstance(record, PredictionRecord) for record in records)

    def test_predict_tangle_restores_training_mode(self, small_model):
        small_model.train()
        small_model.predict_tangle(make_tangle())
        assert small_model.training

    def test_prediction_record_properties(self):
        record = PredictionRecord(
            key="k", predicted=1, label=1, halt_observation=5, sequence_length=20
        )
        assert record.correct
        assert record.earliness == pytest.approx(0.25)

    def test_zero_length_sequence_earliness_is_one(self):
        record = PredictionRecord(
            key="k", predicted=0, label=1, halt_observation=0, sequence_length=0
        )
        assert record.earliness == 1.0

    def test_trainable_parameters_exclude_baseline(self, small_model):
        trainable_ids = {id(p) for p in small_model.trainable_parameters()}
        baseline_ids = {id(p) for p in small_model.baseline.parameters()}
        assert not trainable_ids & baseline_ids
        assert len(trainable_ids) + len(baseline_ids) == len(small_model.parameters())


class TestAblationsAffectComputation:
    def test_value_correlation_changes_visibility(self, tiny_kvec_config):
        tangle = make_tangle(10, 2)
        full = KVEC(SPEC, 2, tiny_kvec_config)
        ablated = KVEC(SPEC, 2, tiny_kvec_config.with_overrides(use_value_correlation=False))
        _, full_structure = full.encode(tangle)
        _, ablated_structure = ablated.encode(tangle)
        assert full_structure.visible_pairs() >= ablated_structure.visible_pairs()
        assert not ablated_structure.value_correlated.any()

    def test_mean_fusion_variant_runs(self, tiny_kvec_config):
        model = KVEC(SPEC, 2, tiny_kvec_config.with_overrides(fusion="mean"))
        records = model.predict_tangle(make_tangle())
        assert len(records) == 3
