"""Tests for the composed differentiable operations in repro.nn.functional."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = Tensor(np.random.default_rng(0).standard_normal((5, 7)))
        probabilities = F.softmax(logits, axis=-1).data
        np.testing.assert_allclose(probabilities.sum(axis=-1), np.ones(5), atol=1e-12)

    def test_invariant_to_constant_shift(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        base = F.softmax(Tensor(logits)).data
        shifted = F.softmax(Tensor(logits + 100.0)).data
        np.testing.assert_allclose(base, shifted, atol=1e-12)

    def test_large_logits_are_stable(self):
        probabilities = F.softmax(Tensor([[1000.0, -1000.0]])).data
        assert np.all(np.isfinite(probabilities))
        assert probabilities[0, 0] == pytest.approx(1.0)

    def test_log_softmax_matches_log_of_softmax(self):
        logits = Tensor(np.random.default_rng(1).standard_normal((3, 4)))
        np.testing.assert_allclose(
            F.log_softmax(logits).data, np.log(F.softmax(logits).data), atol=1e-10
        )

    @given(arrays(np.float64, (2, 5), elements=st.floats(-20, 20)))
    @settings(max_examples=30, deadline=None)
    def test_softmax_probabilities_bounded(self, logits):
        probabilities = F.softmax(Tensor(logits)).data
        assert np.all(probabilities >= 0.0)
        assert np.all(probabilities <= 1.0 + 1e-12)


class TestCrossEntropy:
    def test_perfect_prediction_has_small_loss(self):
        logits = Tensor([[20.0, 0.0, 0.0], [0.0, 20.0, 0.0]])
        loss = F.cross_entropy(logits, [0, 1])
        assert loss.item() < 1e-6

    def test_uniform_prediction_loss_is_log_c(self):
        logits = Tensor(np.zeros((4, 5)))
        loss = F.cross_entropy(logits, [0, 1, 2, 3])
        assert loss.item() == pytest.approx(np.log(5), abs=1e-9)

    def test_reduction_modes(self):
        logits = Tensor(np.zeros((3, 2)))
        targets = [0, 1, 0]
        none = F.cross_entropy(logits, targets, reduction="none")
        total = F.cross_entropy(logits, targets, reduction="sum")
        mean = F.cross_entropy(logits, targets, reduction="mean")
        assert none.shape == (3,)
        assert total.item() == pytest.approx(none.data.sum())
        assert mean.item() == pytest.approx(none.data.mean())

    def test_invalid_reduction_raises(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((1, 2))), [0], reduction="bogus")

    def test_requires_2d_logits(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros(3)), [0])

    def test_gradient_is_softmax_minus_onehot(self):
        logits_data = np.array([[1.0, 2.0, 0.5]])
        logits = Tensor(logits_data.copy(), requires_grad=True)
        F.cross_entropy(logits, [2]).backward()
        softmax = np.exp(logits_data) / np.exp(logits_data).sum()
        expected = softmax.copy()
        expected[0, 2] -= 1.0
        np.testing.assert_allclose(logits.grad, expected, atol=1e-9)

    def test_nll_loss_consistent_with_cross_entropy(self):
        logits = Tensor(np.random.default_rng(2).standard_normal((4, 3)))
        targets = [0, 2, 1, 1]
        ce = F.cross_entropy(logits, targets).item()
        nll = F.nll_loss(F.log_softmax(logits), targets).item()
        assert ce == pytest.approx(nll, abs=1e-10)


class TestOtherLosses:
    def test_binary_cross_entropy_bounds(self):
        probabilities = Tensor([0.9, 0.1])
        loss = F.binary_cross_entropy(probabilities, [1.0, 0.0])
        assert loss.item() == pytest.approx(-np.log(0.9), abs=1e-6)

    def test_binary_cross_entropy_clips_extremes(self):
        loss = F.binary_cross_entropy(Tensor([1.0, 0.0]), [0.0, 1.0])
        assert np.isfinite(loss.item())

    def test_mse_loss_zero_for_identical_inputs(self):
        prediction = Tensor([1.0, 2.0, 3.0])
        assert F.mse_loss(prediction, [1.0, 2.0, 3.0]).item() == pytest.approx(0.0)

    def test_mse_loss_value(self):
        assert F.mse_loss(Tensor([2.0]), [0.0]).item() == pytest.approx(4.0)


class TestEmbeddingDropoutAndUtils:
    def test_embedding_selects_rows(self):
        weight = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        picked = F.embedding(weight, [1, 3])
        np.testing.assert_allclose(picked.data, np.array([[3.0, 4.0, 5.0], [9.0, 10.0, 11.0]]))

    def test_embedding_gradient_scatters_to_rows(self):
        weight = Tensor(np.zeros((4, 3)), requires_grad=True)
        F.embedding(weight, [1, 1, 2]).sum().backward()
        expected = np.zeros((4, 3))
        expected[1] = 2.0
        expected[2] = 1.0
        np.testing.assert_allclose(weight.grad, expected)

    def test_dropout_disabled_in_eval(self):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, p=0.5, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, p=0.3, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_dropout_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), p=1.5, training=True)

    def test_one_hot_shape_and_content(self):
        encoded = F.one_hot([0, 2, 1], num_classes=4)
        assert encoded.shape == (3, 4)
        np.testing.assert_allclose(encoded.sum(axis=1), np.ones(3))
        assert encoded[1, 2] == 1.0

    def test_linear_matches_manual(self):
        x = Tensor(np.array([[1.0, 2.0]]))
        weight = Tensor(np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]))
        bias = Tensor(np.array([0.5, 0.5, 0.5]))
        np.testing.assert_allclose(F.linear(x, weight, bias).data, [[1.5, 2.5, 3.5]])

    def test_gelu_is_monotone_on_sample(self):
        x = np.linspace(-3, 3, 50)
        y = F.gelu(Tensor(x)).data
        assert y[-1] > y[0]

    def test_stack_and_concatenate_helpers(self):
        parts = [Tensor([1.0]), Tensor([2.0])]
        assert F.stack(parts).shape == (2, 1)
        assert F.concatenate(parts).shape == (2,)
