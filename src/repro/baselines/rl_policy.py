"""Shared training logic for RL-halting baselines (EARLIEST, SRN-EARLIEST).

Both baselines combine a per-sequence encoder with the same components KVEC's
ECTL uses — a halting policy, a REINFORCE baseline and a linear classifier —
but operate on each key-value sequence independently.  Their single trade-off
hyperparameter ``lambda`` (Table II) weighs the time penalty against the
classification and policy losses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.common import EarlyClassifier, tangles_to_sequences
from repro.core.classifier import SequenceClassifier
from repro.core.ectl import ACTION_HALT, ACTION_WAIT, BaselineValue, HaltingPolicy
from repro.core.model import PredictionRecord
from repro.data.items import KeyValueSequence, TangledSequence, ValueSpec
from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor, no_grad


@dataclass
class RLBaselineConfig:
    """Hyperparameters shared by the RL-halting baselines."""

    d_model: int = 32
    num_blocks: int = 2
    num_heads: int = 1
    dropout: float = 0.0
    lam: float = 0.001
    learning_rate: float = 1e-3
    baseline_learning_rate: float = 1e-3
    epochs: int = 10
    batch_size: int = 16
    grad_clip: float = 5.0
    halt_threshold: float = 0.5
    seed: int = 0


class RLHaltingClassifier(EarlyClassifier, Module):
    """Encoder-agnostic early classifier with a REINFORCE halting policy."""

    name = "rl-halting"

    def __init__(
        self,
        encoder: Module,
        num_classes: int,
        config: Optional[RLBaselineConfig] = None,
    ) -> None:
        Module.__init__(self)
        self.config = config or RLBaselineConfig()
        self.encoder = encoder
        self.num_classes = num_classes
        state_dim = int(getattr(encoder, "d_state"))
        rng = np.random.default_rng(self.config.seed)
        self.policy = HaltingPolicy(state_dim, rng=rng)
        self.baseline = BaselineValue(state_dim, rng=rng)
        self.classifier = SequenceClassifier(state_dim, num_classes, rng=rng)
        self._action_rng = np.random.default_rng(self.config.seed + 1)

    # ------------------------------------------------------------------ #
    # episode generation over one key-value sequence
    # ------------------------------------------------------------------ #
    def run_sequence(
        self,
        sequence: KeyValueSequence,
        mode: str = "sample",
        halt_threshold: Optional[float] = None,
    ):
        """Run the halting policy over one sequence.

        Returns a dict with the per-step states, actions, log-probs, the halt
        position (1-based), the classification logits and the prediction.
        """
        threshold = self.config.halt_threshold if halt_threshold is None else halt_threshold
        states_matrix = self.encoder(sequence)
        length = states_matrix.shape[0]

        states: List[Tensor] = []
        log_probs: List[Tensor] = []
        actions: List[int] = []
        halted_by_policy = False
        halt_step = length
        for step in range(length):
            state = states_matrix[step]
            states.append(state)
            probability = self.policy(state)
            if mode == "sample":
                action = ACTION_HALT if self._action_rng.random() < float(probability.data) else ACTION_WAIT
            else:
                action = ACTION_HALT if float(probability.data) >= threshold else ACTION_WAIT
            actions.append(action)
            log_probs.append(self.policy.log_prob(state, action))
            if action == ACTION_HALT:
                halted_by_policy = True
                halt_step = step + 1
                break

        final_state = states[-1]
        logits = self.classifier(final_state)
        probabilities = F.softmax(logits, axis=-1).data
        return {
            "states": states,
            "log_probs": log_probs,
            "actions": actions,
            "halt_step": halt_step,
            "halted_by_policy": halted_by_policy,
            "logits": logits,
            "predicted": int(np.argmax(probabilities)),
            "confidence": float(np.max(probabilities)),
        }

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def fit(self, train_tangles: Sequence[TangledSequence], verbose: bool = False) -> "RLHaltingClassifier":
        sequences = tangles_to_sequences(train_tangles)
        if not sequences:
            raise ValueError("no training sequences")
        optimizer = Adam(self._policy_parameters(), lr=self.config.learning_rate)
        baseline_optimizer = Adam(self.baseline.parameters(), lr=self.config.baseline_learning_rate)
        shuffle_rng = np.random.default_rng(self.config.seed + 3)

        self.train()
        for epoch in range(1, self.config.epochs + 1):
            order = list(range(len(sequences)))
            shuffle_rng.shuffle(order)
            epoch_correct = 0
            epoch_loss = 0.0
            for start in range(0, len(order), self.config.batch_size):
                batch = [sequences[i] for i in order[start : start + self.config.batch_size]]
                optimizer.zero_grad()
                baseline_optimizer.zero_grad()
                for sequence in batch:
                    loss, baseline_loss, outcome = self._sequence_losses(sequence)
                    scale = 1.0 / len(batch)
                    (loss * scale).backward()
                    (baseline_loss * scale).backward()
                    epoch_loss += float(loss.data)
                    epoch_correct += int(outcome["predicted"] == sequence.label)
                if self.config.grad_clip > 0:
                    clip_grad_norm(self._policy_parameters(), self.config.grad_clip)
                    clip_grad_norm(self.baseline.parameters(), self.config.grad_clip)
                optimizer.step()
                baseline_optimizer.step()
            if verbose:
                accuracy = epoch_correct / len(sequences)
                print(f"[{self.name}] epoch {epoch:3d}  loss={epoch_loss / len(sequences):8.3f}  acc={accuracy:.3f}")
        return self

    def _sequence_losses(self, sequence: KeyValueSequence):
        outcome = self.run_sequence(sequence, mode="sample")
        logits = outcome["logits"].reshape(1, self.num_classes)
        classification_loss = F.cross_entropy(logits, [sequence.label], reduction="sum")

        reward = 1.0 if outcome["predicted"] == sequence.label else -1.0
        policy_terms: List[Tensor] = []
        earliness_terms: List[Tensor] = []
        baseline_terms: List[Tensor] = []
        num_steps = len(outcome["states"])
        for step in range(num_steps):
            steps_remaining = num_steps - step
            observed_return = reward * steps_remaining
            detached = outcome["states"][step].detach()
            baseline_estimate = self.baseline(detached)
            baseline_terms.append((baseline_estimate - observed_return) ** 2)
            advantage = observed_return - float(baseline_estimate.data)
            policy_terms.append(outcome["log_probs"][step] * (-advantage))
            if outcome["actions"][step] == ACTION_HALT:
                earliness_terms.append(-outcome["log_probs"][step])
            else:
                earliness_terms.append(-self.policy.log_prob(outcome["states"][step], ACTION_HALT))

        policy_loss = _sum_terms(policy_terms)
        earliness_loss = _sum_terms(earliness_terms)
        baseline_loss = _sum_terms(baseline_terms)
        total = classification_loss + policy_loss * 0.1 + earliness_loss * self.config.lam
        return total, baseline_loss, outcome

    def _policy_parameters(self):
        baseline_ids = {id(p) for p in self.baseline.parameters()}
        return [p for p in self.parameters() if id(p) not in baseline_ids]

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #
    def predict_tangle(self, tangle: TangledSequence) -> List[PredictionRecord]:
        records: List[PredictionRecord] = []
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                for key, sequence in tangle.per_key_sequences().items():
                    if not len(sequence):
                        continue
                    outcome = self.run_sequence(sequence, mode="greedy")
                    records.append(
                        PredictionRecord(
                            key=key,
                            predicted=outcome["predicted"],
                            label=tangle.label_of(key),
                            halt_observation=outcome["halt_step"],
                            sequence_length=len(sequence),
                            confidence=outcome["confidence"],
                            halted_by_policy=outcome["halted_by_policy"],
                        )
                    )
        finally:
            self.train(was_training)
        return records


def _sum_terms(terms: List[Tensor]) -> Tensor:
    if not terms:
        return Tensor(0.0)
    total = terms[0]
    for term in terms[1:]:
        total = total + term
    return total
