"""Network serving tier: stdlib HTTP front end + multi-cluster routing.

Everything below the wire — sessions, shards, clusters, process-parallel
executors, shm transport, fault supervision, push gateways — already
exists; this package is the layer that makes it reachable without
importing the package:

* :mod:`~repro.serving.net.protocol` — hand-rolled HTTP/1.1 framing over
  ``asyncio`` streams (no third-party dependencies) plus the JSON wire
  codecs for events, decisions and submit results,
* :class:`~repro.serving.net.server.ServingHTTPServer` — ``POST
  /v1/streams/{id}/events`` with admission statuses mapped to response
  codes (decided/accepted → 200/202, rejected → 429, shed →
  503-with-``Retry-After``, degraded → 503), ``GET /v1/decisions`` as a
  chunked NDJSON server-push stream fed by a bounded
  :class:`~repro.serving.sinks.AsyncQueueSink` (real backpressure into
  the serving layer), ``/v1/stats`` / ``/v1/health`` and
  drain/flush/snapshot admin verbs,
* :class:`~repro.serving.net.client.ServingHTTPClient` — a wire-speaking
  asyncio client so tests and examples exercise the real protocol over
  loopback,
* :class:`~repro.serving.net.router.ClusterRouter` — consistent-hashes
  stream ids across N independent :class:`~repro.serving.cluster.
  ServingCluster` nodes (the same CRC32 ``stable_key_slot`` the shards
  use), aggregates merged stats/health, and migrates live streams
  between nodes via :meth:`~repro.serving.cluster.ServingCluster.
  extract_stream` / ``install_stream`` — decisions before and after a
  move stay bit-identical to an unmoved reference.

``python -m repro.serve`` (see :mod:`repro.serve`) starts a server over a
demo model from the command line.
"""

from repro.serving.net.client import (
    NetDecision,
    NetSubmitResult,
    ServingHTTPClient,
    ServingUnavailableError,
)
from repro.serving.net.protocol import (
    STATUS_TO_HTTP,
    HTTPRequest,
    HTTPResponse,
    WireFormatError,
    decision_to_wire,
    event_from_wire,
    event_to_wire,
    submit_result_to_wire,
)
from repro.serving.net.router import ClusterRouter, RouterSnapshot
from repro.serving.net.server import ServingHTTPServer

__all__ = [
    "STATUS_TO_HTTP",
    "HTTPRequest",
    "HTTPResponse",
    "WireFormatError",
    "event_to_wire",
    "event_from_wire",
    "decision_to_wire",
    "submit_result_to_wire",
    "ServingHTTPServer",
    "ServingHTTPClient",
    "ServingUnavailableError",
    "NetDecision",
    "NetSubmitResult",
    "ClusterRouter",
    "RouterSnapshot",
]
