"""Reproduction of "Representation Learning of Tangled Key-Value Sequence Data
for Early Classification" (KVEC, ICDE 2024).

The package is organised as a small stack of subsystems:

``repro.nn``
    A from-scratch numpy autograd / neural-network substrate (the paper uses
    PyTorch on GPU; no deep-learning framework is available offline, so we
    implement the required subset ourselves).

``repro.data``
    The tangled key-value sequence data model: items, per-key sequences,
    tangled streams, sessions, key-disjoint splits and streaming batching.

``repro.datasets``
    Synthetic generators standing in for the paper's datasets
    (USTC-TFC2016, MovieLens-1M, Traffic-FG, Traffic-App, Synthetic-Traffic).

``repro.core``
    The KVEC model itself: KVRL representation learning (correlation-masked
    attention + gated fusion) and the ECTL halting policy, with the joint
    REINFORCE-with-baseline training loop of Algorithm 1.

``repro.baselines``
    EARLIEST and the SRN-* baselines used in the paper's evaluation.

``repro.eval`` / ``repro.experiments``
    Metrics (earliness, accuracy, HM, ...), streaming evaluation, and the
    registry of experiments reproducing every table and figure.
"""

from repro.version import __version__

__all__ = ["__version__"]
