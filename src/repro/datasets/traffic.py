"""Synthetic network-traffic key-value sequence generator.

Stands in for USTC-TFC2016, Traffic-FG and Traffic-App, which are either
large downloads or unreleased campus captures.  Each *flow* (key-value
sequence) is a packet stream whose value vector is ``(packet size bucket,
direction)`` — exactly the representation the paper extracts from those
datasets — and whose key is a synthetic five-tuple identifier.

What makes the generator a faithful substitute is that it reproduces the
structural properties KVEC exploits:

* **class-conditional burst structure** — each application class has its own
  distribution of burst lengths and direction-switch behaviour, so sessions
  (bursts) are discriminative;
* **early discriminative signal** — the first ``handshake_length`` packets of
  a flow follow a class-specific size template (the paper cites [48]: "the
  first few packets of a flow carry crucial information for identifying it");
* **shared cross-flow patterns** — flows of the same class share size/burst
  profiles, so *value correlations across concurrent flows* are informative,
  which is the property the tangled-sequence attention is designed to use;
* **noise** — sizes and burst lengths are sampled, and a fraction of packets
  is replaced by uniform noise, so classification from very few packets is
  genuinely uncertain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.items import Item, KeyValueSequence, ValueSpec
from repro.datasets.base import GeneratedDataset

#: Direction codes (client->server / server->client).
DIRECTION_UPLINK = 0
DIRECTION_DOWNLINK = 1


@dataclass
class SyntheticTrafficConfig:
    """Configuration of the synthetic traffic generator.

    The defaults correspond to the USTC-TFC2016 analogue; the factory
    functions below override them to match each dataset's Table I statistics.
    """

    name: str = "USTC-TFC2016"
    num_classes: int = 9
    num_flows: int = 320
    mean_flow_length: float = 31.2
    min_flow_length: int = 10
    mean_burst_length: float = 8.3
    num_size_buckets: int = 16
    handshake_length: int = 4
    noise_probability: float = 0.08
    mean_interarrival: float = 1.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("need at least two classes")
        if self.num_flows < self.num_classes:
            raise ValueError("need at least one flow per class")
        if self.mean_flow_length < self.min_flow_length:
            raise ValueError("mean_flow_length must be >= min_flow_length")
        if self.mean_burst_length < 1:
            raise ValueError("mean_burst_length must be >= 1")


def traffic_value_spec(num_size_buckets: int = 16) -> ValueSpec:
    """Value schema of the traffic datasets: (size bucket, direction)."""
    return ValueSpec(
        field_names=("size", "direction"),
        cardinalities=(num_size_buckets, 2),
        session_field=1,
    )


class _ClassProfile:
    """Class-conditional generative profile of one application type."""

    def __init__(self, label: int, config: SyntheticTrafficConfig, rng: np.random.Generator) -> None:
        self.label = label
        buckets = config.num_size_buckets
        # Size profile per direction: a Dirichlet-random distribution with a
        # class-specific concentration peak, so different classes prefer
        # different packet-size regions.
        peak_up = rng.integers(0, buckets)
        peak_down = rng.integers(0, buckets)
        self.size_probs = {
            DIRECTION_UPLINK: _peaked_distribution(buckets, peak_up, rng),
            DIRECTION_DOWNLINK: _peaked_distribution(buckets, peak_down, rng),
        }
        # Burst lengths per direction: class-specific Poisson means centred on
        # the dataset's average session length.
        base = config.mean_burst_length
        self.burst_mean = {
            DIRECTION_UPLINK: max(1.0, base * float(rng.uniform(0.5, 1.5))),
            DIRECTION_DOWNLINK: max(1.0, base * float(rng.uniform(0.5, 1.5))),
        }
        # Handshake template: the first few packets have a fixed class
        # signature (size codes + directions).
        self.handshake: List[Tuple[int, int]] = [
            (int(rng.integers(0, buckets)), int(rng.integers(0, 2)))
            for _ in range(config.handshake_length)
        ]
        # Probability the flow starts with an uplink burst.
        self.start_uplink = float(rng.uniform(0.3, 0.7))


def _peaked_distribution(size: int, peak: int, rng: np.random.Generator) -> np.ndarray:
    """A probability vector concentrated around ``peak`` with random spread."""
    positions = np.arange(size)
    width = rng.uniform(0.8, 2.5)
    weights = np.exp(-((positions - peak) ** 2) / (2.0 * width**2)) + 0.02
    weights *= rng.uniform(0.5, 1.5, size=size)
    return weights / weights.sum()


def generate_traffic_dataset(config: SyntheticTrafficConfig) -> GeneratedDataset:
    """Generate a synthetic traffic dataset according to ``config``."""
    rng = np.random.default_rng(config.seed)
    spec = traffic_value_spec(config.num_size_buckets)
    profiles = [_ClassProfile(c, config, rng) for c in range(config.num_classes)]

    sequences: List[KeyValueSequence] = []
    for flow_index in range(config.num_flows):
        label = flow_index % config.num_classes
        profile = profiles[label]
        key = f"flow-{config.name}-{flow_index}"
        items = _generate_flow(key, profile, config, rng)
        sequences.append(KeyValueSequence(key, items, label))

    class_names = tuple(f"app-{c}" for c in range(config.num_classes))
    return GeneratedDataset(
        name=config.name,
        sequences=sequences,
        spec=spec,
        num_classes=config.num_classes,
        class_names=class_names,
    )


def _generate_flow(
    key: str,
    profile: _ClassProfile,
    config: SyntheticTrafficConfig,
    rng: np.random.Generator,
) -> List[Item]:
    """Generate the packet items of one flow."""
    length = max(
        config.min_flow_length,
        int(rng.poisson(max(config.mean_flow_length - config.min_flow_length, 1)))
        + config.min_flow_length,
    )
    items: List[Item] = []
    time = float(rng.exponential(config.mean_interarrival))

    # Class-specific handshake prefix.
    for size_code, direction in profile.handshake:
        items.append(_packet(key, size_code, direction, time, config, rng))
        time += float(rng.exponential(config.mean_interarrival))
        if len(items) >= length:
            return items

    # Alternating bursts with class-conditional lengths and sizes.
    direction = (
        DIRECTION_UPLINK if rng.random() < profile.start_uplink else DIRECTION_DOWNLINK
    )
    while len(items) < length:
        burst_length = 1 + int(rng.poisson(max(profile.burst_mean[direction] - 1, 0.1)))
        for _ in range(burst_length):
            size_code = int(rng.choice(config.num_size_buckets, p=profile.size_probs[direction]))
            items.append(_packet(key, size_code, direction, time, config, rng))
            time += float(rng.exponential(config.mean_interarrival))
            if len(items) >= length:
                break
        direction = DIRECTION_DOWNLINK if direction == DIRECTION_UPLINK else DIRECTION_UPLINK
    return items


def _packet(
    key: str,
    size_code: int,
    direction: int,
    time: float,
    config: SyntheticTrafficConfig,
    rng: np.random.Generator,
) -> Item:
    """Build one packet item, possibly replaced by uniform noise."""
    if rng.random() < config.noise_probability:
        size_code = int(rng.integers(0, config.num_size_buckets))
        direction = int(rng.integers(0, 2))
    return Item(key=key, value=(int(size_code), int(direction)), time=time)


# --------------------------------------------------------------------------- #
# dataset factories matching Table I
# --------------------------------------------------------------------------- #
def make_ustc_tfc2016(num_flows: int = 320, seed: int = 7) -> GeneratedDataset:
    """USTC-TFC2016 analogue: 9 classes, avg |Sk| ~ 31, avg burst ~ 8."""
    config = SyntheticTrafficConfig(
        name="USTC-TFC2016",
        num_classes=9,
        num_flows=num_flows,
        mean_flow_length=31.2,
        mean_burst_length=8.3,
        seed=seed,
    )
    return generate_traffic_dataset(config)


def make_traffic_fg(num_flows: int = 600, seed: int = 11) -> GeneratedDataset:
    """Traffic-FG analogue: 12 fine-grained service classes, avg |Sk| ~ 50."""
    config = SyntheticTrafficConfig(
        name="Traffic-FG",
        num_classes=12,
        num_flows=num_flows,
        mean_flow_length=50.7,
        mean_burst_length=2.4,
        seed=seed,
    )
    return generate_traffic_dataset(config)


def make_traffic_app(num_flows: int = 500, seed: int = 13) -> GeneratedDataset:
    """Traffic-App analogue: 10 application classes, avg |Sk| ~ 57."""
    config = SyntheticTrafficConfig(
        name="Traffic-App",
        num_classes=10,
        num_flows=num_flows,
        mean_flow_length=57.5,
        mean_burst_length=2.7,
        seed=seed,
    )
    return generate_traffic_dataset(config)
