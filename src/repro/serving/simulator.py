"""Simulation of a live tangled key-value arrival process.

The generators in :mod:`repro.datasets` produce *complete* labelled per-key
sequences.  A deployment never sees those: it sees an unbounded stream in
which new keys start, interleave with the currently active keys and finish.
:class:`ArrivalSimulator` reconstructs that process from a pool of labelled
sequences:

* key *start times* follow a Poisson process with a configurable rate (or a
  fixed target number of concurrently active keys) — optionally modulated by
  a mean-preserving ``burst`` (on/off duty cycle) or ``diurnal`` (sinusoidal)
  rate profile,
* within a key, item inter-arrival gaps are taken from the source sequence
  (rescaled to a common unit), so bursts/sessions survive the simulation,
* the output is a single chronologically ordered stream of
  :class:`~repro.data.stream.StreamEvent` objects.

The simulator is deterministic for a fixed seed, which the serving tests and
the online-serving example rely on.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field, replace
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.items import Item, KeyValueSequence
from repro.data.stream import StreamEvent, merge_streams


@dataclass
class SimulatorConfig:
    """Knobs of the arrival simulation.

    Attributes
    ----------
    arrival_rate:
        Mean number of new keys starting per unit of simulated time.
    gap_scale:
        Multiplier applied to the source sequences' inter-item gaps; values
        below 1 compress flows (more overlap), above 1 stretch them.
    max_active:
        Upper bound on simultaneously active keys; when reached, new key
        starts are delayed until an active key finishes.  ``0`` disables the
        bound.  Delays follow FIFO ``c``-server queue semantics: each waiting
        key consumes exactly one slot release, and the Poisson *arrival*
        process is never advanced by waiting — so a busy period no longer
        collapses every delayed key onto the same release tick.
    key_skew:
        Zipf exponent of the per-key arrival-rate skew (``0`` = uniform, the
        default).  With skew ``s`` the ``r``-th key of the shuffled start
        order draws its start gap at a rate proportional to ``(r+1)^{-s}``
        (normalised so the expected total start span — the aggregate load —
        matches the unskewed schedule), so a few *hot* keys start in rapid
        succession while the cold tail spreads out — the hot-key traffic
        shape real clusters see.
    pattern:
        Temporal shape of the key-start process.  ``"poisson"`` (default) is
        the homogeneous process.  ``"burst"`` and ``"diurnal"`` modulate the
        instantaneous start rate by a periodic profile ``m(t)`` with mean 1
        over its period (inhomogeneous Poisson via the time-change theorem:
        exponential draws accumulate in integrated-hazard space and are
        mapped back through the inverse cumulative profile), so the **mean
        arrival rate is preserved exactly** — patterns redistribute load in
        time, they never add or remove it.  Within a key, item gaps still
        come from the source sequence; the pattern shapes key *starts*.
    burst_period / burst_duty / burst_floor:
        ``"burst"`` is an on/off duty cycle: each period of ``burst_period``
        time units starts with an *on* phase covering ``burst_duty`` of the
        period at elevated rate, followed by an *off* phase at
        ``burst_floor`` (relative to the nominal rate; ``0`` = fully quiet).
        The on-rate is solved from mean-1: ``(1 - (1-duty)·floor) / duty``.
    diurnal_period / diurnal_amplitude:
        ``"diurnal"`` is a sinusoid ``m(t) = 1 + A·sin(2πt/period)`` —
        a smooth day/night load curve with peak-to-trough ratio
        ``(1+A)/(1-A)``.
    seed:
        Seed of the Poisson start-time draws.
    """

    arrival_rate: float = 1.0
    gap_scale: float = 1.0
    max_active: int = 0
    key_skew: float = 0.0
    pattern: str = "poisson"
    burst_period: float = 16.0
    burst_duty: float = 0.25
    burst_floor: float = 0.0
    diurnal_period: float = 64.0
    diurnal_amplitude: float = 0.8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.gap_scale <= 0:
            raise ValueError("gap_scale must be positive")
        if self.max_active < 0:
            raise ValueError("max_active must be non-negative")
        if self.key_skew < 0:
            raise ValueError("key_skew must be non-negative")
        if self.pattern not in ("poisson", "burst", "diurnal"):
            raise ValueError(f"unknown arrival pattern {self.pattern!r}")
        if self.burst_period <= 0:
            raise ValueError("burst_period must be positive")
        if not 0.0 < self.burst_duty <= 1.0:
            raise ValueError("burst_duty must be in (0, 1]")
        if not 0.0 <= self.burst_floor <= 1.0:
            raise ValueError("burst_floor must be in [0, 1]")
        if self.diurnal_period <= 0:
            raise ValueError("diurnal_period must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")


@dataclass
class _ScheduledKey:
    """One key's schedule: its start time and the relative item offsets."""

    key: Hashable
    label: int
    start: float
    offsets: List[float]
    values: List[Tuple[int, ...]]

    @property
    def end(self) -> float:
        return self.start + (self.offsets[-1] if self.offsets else 0.0)


class ArrivalSimulator:
    """Replay a pool of labelled sequences as one live arrival process."""

    def __init__(
        self,
        sequences: Sequence[KeyValueSequence],
        config: Optional[SimulatorConfig] = None,
    ) -> None:
        if not sequences:
            raise ValueError("the simulator needs at least one source sequence")
        for sequence in sequences:
            if sequence.label is None:
                raise ValueError(f"sequence {sequence.key!r} has no label")
            if not len(sequence):
                raise ValueError(f"sequence {sequence.key!r} is empty")
        self.sequences = list(sequences)
        self.config = config or SimulatorConfig()
        self._schedule = self._build_schedule()

    # ------------------------------------------------------------------ #
    # schedule construction
    # ------------------------------------------------------------------ #
    def _relative_offsets(self, sequence: KeyValueSequence) -> List[float]:
        times = sequence.times()
        base = times[0]
        return [(time - base) * self.config.gap_scale for time in times]

    # ------------------------------------------------------------------ #
    # arrival-pattern modulation (inhomogeneous Poisson via time change)
    # ------------------------------------------------------------------ #
    def modulated_rate(self, time: float) -> float:
        """Instantaneous key-start rate at ``time`` under the pattern."""
        return self.config.arrival_rate * self._profile(time % self._pattern_period())

    def _pattern_period(self) -> float:
        if self.config.pattern == "burst":
            return self.config.burst_period
        if self.config.pattern == "diurnal":
            return self.config.diurnal_period
        return 1.0  # any period works: the poisson profile is constant 1

    def _burst_on_rate(self) -> float:
        """On-phase relative rate solved from the mean-1 constraint."""
        duty, floor = self.config.burst_duty, self.config.burst_floor
        return (1.0 - (1.0 - duty) * floor) / duty

    def _profile(self, phase: float) -> float:
        """Relative rate ``m`` at ``phase`` within one period (mean 1)."""
        config = self.config
        if config.pattern == "burst":
            if phase < config.burst_duty * config.burst_period:
                return self._burst_on_rate()
            return config.burst_floor
        if config.pattern == "diurnal":
            return 1.0 + config.diurnal_amplitude * math.sin(
                2.0 * math.pi * phase / config.diurnal_period
            )
        return 1.0

    def _cumulative_profile(self, phase: float) -> float:
        """``∫₀^phase m(s) ds`` within one period."""
        config = self.config
        if config.pattern == "burst":
            on_span = config.burst_duty * config.burst_period
            if phase <= on_span:
                return self._burst_on_rate() * phase
            return self._burst_on_rate() * on_span + config.burst_floor * (
                phase - on_span
            )
        if config.pattern == "diurnal":
            period = config.diurnal_period
            return phase + (config.diurnal_amplitude * period / (2.0 * math.pi)) * (
                1.0 - math.cos(2.0 * math.pi * phase / period)
            )
        return phase

    def _invert_cumulative(self, target: float) -> float:
        """Earliest in-period phase whose cumulative profile reaches ``target``.

        The burst profile inverts in closed form (piecewise linear); the
        diurnal sinusoid is inverted by bisection (the cumulative profile is
        monotone because ``m >= 1 - amplitude > 0``).
        """
        config = self.config
        if config.pattern == "burst":
            on_rate = self._burst_on_rate()
            on_span = config.burst_duty * config.burst_period
            if target <= on_rate * on_span or config.burst_floor == 0.0:
                # With a fully quiet off phase the whole period's mass lives
                # in the on phase; the explicit floor==0 test keeps a ~1-ulp
                # shortfall of on_rate*on_span below the period from ever
                # reaching the off-phase division.
                return min(target / on_rate, on_span)
            return on_span + (target - on_rate * on_span) / config.burst_floor
        low, high = 0.0, self._pattern_period()
        for _ in range(64):  # ~2^-64 of a period; far below schedule noise
            mid = 0.5 * (low + high)
            if self._cumulative_profile(mid) < target:
                low = mid
            else:
                high = mid
        return high

    def _invert_hazard(self, hazard: float) -> float:
        """Map integrated-hazard time back to wall-clock time.

        The profile has mean 1, so each full period contributes exactly one
        period of hazard: split off the whole periods, invert the remainder
        inside one period.
        """
        period = self._pattern_period()
        full_periods = math.floor(hazard / period)
        remainder = hazard - full_periods * period
        return full_periods * period + self._invert_cumulative(remainder)

    def _skew_rates(self, count: int) -> Optional[np.ndarray]:
        """Per-rank arrival rates under the Zipf ``key_skew`` (None = uniform).

        Start gaps are drawn at rate ``arrival_rate * w_r``, so the expected
        *total* start span is ``sum(1 / (arrival_rate * w_r))``.  Normalising
        the weights to harmonic mean 1 (``mean(1/w) == 1``) keeps that span —
        and therefore the aggregate arrival rate — equal to the unskewed
        schedule's: skew redistributes traffic across keys, it does not add
        or remove load.  (A plain mean-1 normalisation would *stretch* the
        schedule by ``mean(1/w) > 1``, Jensen's inequality.)
        """
        skew = self.config.key_skew
        if not skew:
            return None
        weights = np.arange(1, count + 1, dtype=np.float64) ** (-skew)
        weights *= np.mean(1.0 / weights)
        return self.config.arrival_rate * weights

    def _build_schedule(self) -> List[_ScheduledKey]:
        rng = np.random.default_rng(self.config.seed)
        order = list(range(len(self.sequences)))
        rng.shuffle(order)
        rates = self._skew_rates(len(order))

        scheduled: List[_ScheduledKey] = []
        #: Arrival clock in integrated-hazard space: exponential gaps are
        #: accumulated here and mapped to wall-clock through the inverse
        #: cumulative rate profile (identity for the plain Poisson pattern,
        #: so the draws — and the schedule — are unchanged there).
        hazard_clock = 0.0
        modulated = self.config.pattern != "poisson"
        #: Min-heap of busy-slot release times (FIFO c-server queue).
        active_ends: List[float] = []
        for rank, index in enumerate(order):
            sequence = self.sequences[index]
            rate = self.config.arrival_rate if rates is None else float(rates[rank])
            hazard_clock += float(rng.exponential(1.0 / rate))
            start = self._invert_hazard(hazard_clock) if modulated else hazard_clock
            if self.config.max_active:
                # FIFO admission: free every slot released by the arrival
                # time, and when all slots are busy the key waits for — and
                # consumes — exactly ONE release.  The arrival clock itself
                # is untouched, so later keys keep their own Poisson gaps
                # instead of being serialised after the busy period (the old
                # behaviour released every delayed key in the same tick,
                # a synchronized burst).
                while active_ends and active_ends[0] <= start:
                    heapq.heappop(active_ends)
                if len(active_ends) >= self.config.max_active:
                    start = heapq.heappop(active_ends)
            entry = _ScheduledKey(
                key=sequence.key,
                label=int(sequence.label),
                start=start,
                offsets=self._relative_offsets(sequence),
                values=[item.value for item in sequence.items],
            )
            scheduled.append(entry)
            if self.config.max_active:
                heapq.heappush(active_ends, entry.end)
        return scheduled

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    @property
    def labels(self) -> Dict[Hashable, int]:
        """Ground-truth label per simulated key (for evaluation only)."""
        return {entry.key: entry.label for entry in self._schedule}

    @property
    def sequence_lengths(self) -> Dict[Hashable, int]:
        """Total number of items each simulated key will emit."""
        return {entry.key: len(entry.offsets) for entry in self._schedule}

    def events(self) -> Iterator[StreamEvent]:
        """Yield every arrival event in chronological order."""
        arrivals: List[Tuple[float, int, StreamEvent]] = []
        counter = 0
        for entry in self._schedule:
            for offset, value in zip(entry.offsets, entry.values):
                time = entry.start + offset
                event = StreamEvent(time=time, item=Item(entry.key, value, time))
                arrivals.append((time, counter, event))
                counter += 1
        arrivals.sort(key=lambda record: (record[0], record[1]))
        for _, _, event in arrivals:
            yield event

    def concurrency_profile(self, resolution: int = 50) -> List[Tuple[float, int]]:
        """Sampled ``(time, #active keys)`` curve of the simulated process."""
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        if not self._schedule:
            return []
        horizon = max(entry.end for entry in self._schedule)
        start = min(entry.start for entry in self._schedule)
        points: List[Tuple[float, int]] = []
        for step in range(resolution + 1):
            time = start + (horizon - start) * step / resolution
            active = sum(1 for entry in self._schedule if entry.start <= time <= entry.end)
            points.append((time, active))
        return points

    def peak_concurrency(self) -> int:
        """Largest number of simultaneously active keys in the schedule."""
        boundaries: List[Tuple[float, int]] = []
        for entry in self._schedule:
            boundaries.append((entry.start, +1))
            boundaries.append((entry.end, -1))
        # Ends sort before starts at equal times, matching the scheduling rule
        # that a slot freed at time t can be reused by a key starting at t.
        boundaries.sort(key=lambda boundary: (boundary[0], boundary[1]))
        active = 0
        peak = 0
        for _, delta in boundaries:
            active += delta
            peak = max(peak, active)
        return peak


@dataclass
class MultiStreamConfig:
    """Knobs of the multi-stream arrival process.

    Attributes
    ----------
    num_streams:
        Number of independent stream ids the sequence pool is partitioned
        across (the cluster's routing/sharding unit).
    stream_skew:
        Zipf exponent of the per-stream traffic share (``0`` = uniform).
        With skew ``s``, stream ``r`` receives sequences with probability
        proportional to ``(r+1)^{-s}`` — a few *hot* streams carry most of
        the traffic, the shape that makes shard load-balancing interesting.
    stream_prefix:
        Stream ids are ``f"{stream_prefix}-{index}"``.
    simulator:
        Per-stream :class:`SimulatorConfig`; each stream derives its own
        seed from it, so streams are mutually independent but the whole
        process is deterministic.
    """

    num_streams: int = 4
    stream_skew: float = 0.0
    stream_prefix: str = "stream"
    simulator: SimulatorConfig = field(default_factory=SimulatorConfig)

    def __post_init__(self) -> None:
        if self.num_streams <= 0:
            raise ValueError("num_streams must be positive")
        if self.stream_skew < 0:
            raise ValueError("stream_skew must be non-negative")


class MultiStreamSimulator:
    """Many concurrent :class:`ArrivalSimulator` streams on one timeline.

    The serving cluster's traffic generator: the labelled sequence pool is
    partitioned across ``num_streams`` stream ids (Zipf-skewed when
    ``stream_skew`` is set), each stream replays its share as an independent
    arrival process, and :meth:`events` merges them into one chronological
    stream whose events carry their stream id in ``StreamEvent.source`` —
    exactly what :meth:`repro.serving.cluster.ServingCluster.submit` routes
    on.
    """

    def __init__(
        self,
        sequences: Sequence[KeyValueSequence],
        config: Optional[MultiStreamConfig] = None,
    ) -> None:
        if not sequences:
            raise ValueError("the simulator needs at least one source sequence")
        keys = [sequence.key for sequence in sequences]
        if len(set(keys)) != len(keys):
            raise ValueError("sequence keys must be unique across the pool")
        self.config = config or MultiStreamConfig()
        base = self.config.simulator
        rng = np.random.default_rng(base.seed)

        count = self.config.num_streams
        if self.config.stream_skew:
            shares = np.arange(1, count + 1, dtype=np.float64) ** (
                -self.config.stream_skew
            )
            shares /= shares.sum()
        else:
            shares = np.full(count, 1.0 / count)
        assignment = rng.choice(count, size=len(sequences), p=shares)

        self._simulators: Dict[str, ArrivalSimulator] = {}
        self._stream_of: Dict[Hashable, str] = {}
        for index in range(count):
            assigned = [
                sequence
                for sequence, stream in zip(sequences, assignment)
                if stream == index
            ]
            if not assigned:
                continue  # a cold stream drew no traffic at all
            stream_id = f"{self.config.stream_prefix}-{index}"
            # Distinct, deterministic per-stream seeds keep streams mutually
            # independent while the whole process stays reproducible.
            stream_config = replace(base, seed=base.seed + 7919 * (index + 1))
            self._simulators[stream_id] = ArrivalSimulator(assigned, stream_config)
            for sequence in assigned:
                self._stream_of[sequence.key] = stream_id

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    @property
    def stream_ids(self) -> List[str]:
        """Stream ids that carry at least one sequence."""
        return list(self._simulators)

    @property
    def stream_of(self) -> Dict[Hashable, str]:
        """Stream id serving each key (for evaluation bookkeeping)."""
        return dict(self._stream_of)

    @property
    def stream_share(self) -> Dict[str, int]:
        """Number of sequences assigned to each stream (the traffic skew)."""
        return {
            stream_id: len(simulator.sequences)
            for stream_id, simulator in self._simulators.items()
        }

    @property
    def labels(self) -> Dict[Hashable, int]:
        """Ground-truth label per simulated key, across all streams."""
        labels: Dict[Hashable, int] = {}
        for simulator in self._simulators.values():
            labels.update(simulator.labels)
        return labels

    @property
    def sequence_lengths(self) -> Dict[Hashable, int]:
        """Total item count per simulated key, across all streams."""
        lengths: Dict[Hashable, int] = {}
        for simulator in self._simulators.values():
            lengths.update(simulator.sequence_lengths)
        return lengths

    def events(self) -> Iterator[StreamEvent]:
        """All streams merged chronologically, each event source-tagged."""

        def tagged(stream_id: str, simulator: ArrivalSimulator):
            for event in simulator.events():
                yield StreamEvent(time=event.time, item=event.item, source=stream_id)

        return merge_streams(
            [
                tagged(stream_id, simulator)
                for stream_id, simulator in self._simulators.items()
            ]
        )

    def peak_concurrency(self) -> int:
        """Sum of per-stream peaks — the cluster-wide worst-case load bound."""
        return sum(
            simulator.peak_concurrency() for simulator in self._simulators.values()
        )
