"""SRN-Confidence: halt once the classifier's confidence exceeds a threshold.

The confidence threshold ``µ`` (Table II) is the single hyperparameter trading
off earliness against accuracy: a low threshold halts almost immediately, a
threshold close to 1 only halts when the classifier is certain (or the
sequence ends).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.prefix import PrefixSRNClassifier, PrefixSRNConfig
from repro.core.model import PredictionRecord
from repro.data.items import KeyValueSequence, ValueSpec


class SRNConfidence(PrefixSRNClassifier):
    """Prefix-supervised SRN with the confidence-threshold halting rule."""

    name = "SRN-Confidence"

    def __init__(
        self,
        spec: ValueSpec,
        num_classes: int,
        confidence_threshold: float = 0.9,
        config: Optional[PrefixSRNConfig] = None,
    ) -> None:
        super().__init__(spec, num_classes, config)
        if not 0.0 < confidence_threshold <= 1.0:
            raise ValueError("confidence_threshold must be in (0, 1]")
        self.confidence_threshold = confidence_threshold

    def _predict_sequence(self, key, sequence: KeyValueSequence, label: int) -> PredictionRecord:
        probabilities = self.prefix_probabilities(sequence)
        halt_step = len(sequence)
        halted_by_policy = False
        for step in range(probabilities.shape[0]):
            if float(np.max(probabilities[step])) >= self.confidence_threshold:
                halt_step = step + 1
                halted_by_policy = True
                break
        final = probabilities[halt_step - 1]
        return PredictionRecord(
            key=key,
            predicted=int(np.argmax(final)),
            label=label,
            halt_observation=halt_step,
            sequence_length=len(sequence),
            confidence=float(np.max(final)),
            halted_by_policy=halted_by_policy,
        )
