"""Submission outcomes for the push-based serving front end.

The pull-only serving API returned one flat ``List[StreamDecision]`` from
``submit`` and made admission outcomes ambiguous: a shed arrival silently
returned an empty list (indistinguishable from "accepted, nothing decided
yet") and a rejected one raised.  :class:`SubmitResult` makes every outcome
explicit — ``status`` says what admission control did, ``decisions`` carries
whatever a triggered drain emitted, and the shard/queue-depth telemetry says
where the arrival landed and how loaded that shard is.

Backward compatibility (the deprecation shim): a :class:`SubmitResult` is a
:class:`~collections.abc.Sequence` over its emitted decisions, so legacy
call sites that iterated, indexed, ``len()``-ed or truth-tested the old
returned list keep working unchanged.  New code should read ``status`` /
``decisions`` / ``admitted`` explicitly; the sequence protocol is kept only
for migration and may eventually go away.  ``ShardOverloadError`` is still
raised by ``overflow="reject"`` unless the caller opts into
``raise_on_reject=False``, in which case the rejection comes back as a
``status="rejected"`` result instead.

:class:`ConsumeSummary` is the bulk-ingest counterpart: a list of every
emitted decision (it *is* a list, so legacy consumers of
``ServingCluster.consume`` are untouched) that additionally tallies the
per-event admission outcomes the old API swallowed.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Hashable, Iterator, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster imports us)
    from repro.serving.cluster import StreamDecision

__all__ = [
    "SUBMIT_STATUSES",
    "SubmitResult",
    "ConsumeSummary",
]

#: Every admission outcome a submission can have.  ``accepted`` — enqueued,
#: no decisions emitted yet; ``decided`` — enqueued and a triggered drain
#: emitted at least one decision; ``rejected`` — the shard queue was full
#: under ``overflow="reject"``; ``shed`` — the arrival was dropped under
#: ``overflow="shed"``; ``degraded`` — the shard's circuit breaker was open
#: (see :mod:`repro.serving.supervisor`) and the arrival was not admitted:
#: dropped under the ``degraded="shed"`` policy, or reported instead of the
#: :class:`~repro.serving.cluster.ShardDegradedError` raise under
#: ``degraded="reject"`` with ``raise_on_reject=False``.
SUBMIT_STATUSES = ("accepted", "decided", "rejected", "shed", "degraded")


@dataclass(frozen=True)
class SubmitResult(Sequence):
    """Explicit outcome of one ``submit`` call.

    Attributes
    ----------
    status:
        One of :data:`SUBMIT_STATUSES`.
    stream_id:
        The stream the arrival was routed for.
    shard_id:
        The shard it was routed to (admission control ran there even when
        the arrival was rejected or shed).
    decisions:
        Decisions emitted by drain rounds this submission triggered
        (``auto_drain`` or ``overflow="drain"`` backpressure), in emission
        order.  Empty unless ``status="decided"``.
    queue_depth:
        The shard's arrival-queue depth observed right after the call — the
        submitter-visible backpressure signal.
    """

    status: str
    stream_id: Hashable
    shard_id: int
    decisions: Tuple["StreamDecision", ...] = ()
    queue_depth: int = 0

    def __post_init__(self) -> None:
        if self.status not in SUBMIT_STATUSES:
            raise ValueError(f"unknown submit status {self.status!r}")

    # ------------------------------------------------------------------ #
    # outcome predicates
    # ------------------------------------------------------------------ #
    @property
    def admitted(self) -> bool:
        """Whether the arrival entered its shard's queue."""
        return self.status in ("accepted", "decided")

    @property
    def dropped(self) -> bool:
        """Whether admission control discarded the arrival."""
        return self.status in ("rejected", "shed", "degraded")

    # ------------------------------------------------------------------ #
    # deprecation shim: behave like the legacy returned decision list
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.decisions)

    def __getitem__(self, index):
        return self.decisions[index]

    def __iter__(self) -> Iterator["StreamDecision"]:
        return iter(self.decisions)

    def __bool__(self) -> bool:
        # Legacy semantics: truthy iff the submission emitted decisions.
        # Use ``admitted`` / ``status`` for admission outcomes.
        return bool(self.decisions)


class ConsumeSummary(List["StreamDecision"]):
    """Every decision a bulk ingest emitted, plus per-status admission counts.

    Subclasses ``list`` so existing consumers of
    :meth:`~repro.serving.cluster.ServingCluster.consume` — iteration,
    concatenation, ``extend`` — keep working; the new information rides along
    as the ``counts`` mapping and the per-status properties.
    """

    def __init__(self, decisions=(), counts: Dict[str, int] | None = None) -> None:
        super().__init__(decisions)
        self.counts: Dict[str, int] = {status: 0 for status in SUBMIT_STATUSES}
        if counts:
            self.counts.update(counts)

    def record(self, result: SubmitResult) -> None:
        """Fold one submission outcome in (decisions + status tally)."""
        self.counts[result.status] += 1
        self.extend(result.decisions)

    @property
    def accepted(self) -> int:
        return self.counts["accepted"]

    @property
    def decided(self) -> int:
        return self.counts["decided"]

    @property
    def rejected(self) -> int:
        return self.counts["rejected"]

    @property
    def shed(self) -> int:
        return self.counts["shed"]

    @property
    def degraded(self) -> int:
        return self.counts["degraded"]

    @property
    def submitted(self) -> int:
        """Total submissions the summary covers (all statuses)."""
        return sum(self.counts.values())

    @property
    def admitted(self) -> int:
        """Submissions that entered a shard queue."""
        return self.counts["accepted"] + self.counts["decided"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tallies = ", ".join(
            f"{status}={count}" for status, count in self.counts.items() if count
        )
        return f"ConsumeSummary({len(self)} decisions; {tallies or 'no submissions'})"
