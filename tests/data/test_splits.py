"""Tests for key-disjoint dataset splits and k-fold cross validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.items import Item, KeyValueSequence
from repro.data.splits import class_distribution, kfold_splits, split_by_key


def make_sequences(count, num_classes=3):
    sequences = []
    for index in range(count):
        items = [Item(f"k{index}", (0,), float(i)) for i in range(3)]
        sequences.append(KeyValueSequence(f"k{index}", items, label=index % num_classes))
    return sequences


class TestSplitByKey:
    def test_sizes_follow_proportions(self):
        split = split_by_key(make_sequences(100), rng=np.random.default_rng(0))
        train, validation, test = split.sizes()
        assert train + validation + test == 100
        # Stratified per-class rounding can shift a couple of keys between subsets.
        assert abs(train - 80) <= 3
        assert abs(validation - 10) <= 3
        assert abs(test - 10) <= 3

    def test_sizes_exact_when_classes_divide_evenly(self):
        split = split_by_key(make_sequences(100, num_classes=2), rng=np.random.default_rng(0))
        assert split.sizes() == (80, 10, 10)

    def test_keys_are_disjoint(self):
        split = split_by_key(make_sequences(50), rng=np.random.default_rng(1))
        assert split.all_keys_disjoint()

    def test_all_sequences_are_assigned(self):
        sequences = make_sequences(37)
        split = split_by_key(sequences, rng=np.random.default_rng(2))
        assert sum(split.sizes()) == len(sequences)

    def test_stratified_split_keeps_all_classes_in_train(self):
        split = split_by_key(make_sequences(30, num_classes=3), rng=np.random.default_rng(3))
        assert set(class_distribution(split.train)) == {0, 1, 2}

    def test_unstratified_split_also_assigns_everything(self):
        sequences = make_sequences(23)
        split = split_by_key(sequences, rng=np.random.default_rng(4), stratify=False)
        assert sum(split.sizes()) == len(sequences)

    def test_invalid_proportions_rejected(self):
        with pytest.raises(ValueError):
            split_by_key(make_sequences(10), proportions=(0.5, 0.2, 0.2))

    def test_deterministic_given_seed(self):
        sequences = make_sequences(40)
        first = split_by_key(sequences, rng=np.random.default_rng(7))
        second = split_by_key(sequences, rng=np.random.default_rng(7))
        assert [s.key for s in first.train] == [s.key for s in second.train]

    @given(st.integers(min_value=10, max_value=80))
    @settings(max_examples=25, deadline=None)
    def test_split_is_a_partition(self, count):
        sequences = make_sequences(count)
        split = split_by_key(sequences, rng=np.random.default_rng(count))
        keys = sorted(
            [s.key for s in split.train]
            + [s.key for s in split.validation]
            + [s.key for s in split.test]
        )
        assert keys == sorted(s.key for s in sequences)
        assert split.all_keys_disjoint()


class TestKFold:
    def test_number_of_folds(self):
        folds = kfold_splits(make_sequences(25), folds=5, rng=np.random.default_rng(0))
        assert len(folds) == 5

    def test_each_sequence_is_tested_exactly_once(self):
        sequences = make_sequences(23)
        folds = kfold_splits(sequences, folds=5, rng=np.random.default_rng(1))
        tested = sorted(key for fold in folds for key in (s.key for s in fold.test))
        assert tested == sorted(s.key for s in sequences)

    def test_folds_are_key_disjoint(self):
        folds = kfold_splits(make_sequences(30), folds=3, rng=np.random.default_rng(2))
        for fold in folds:
            assert fold.all_keys_disjoint()

    def test_requires_at_least_two_folds(self):
        with pytest.raises(ValueError):
            kfold_splits(make_sequences(10), folds=1)

    def test_class_distribution_counts(self):
        distribution = class_distribution(make_sequences(9, num_classes=3))
        assert distribution == {0: 3, 1: 3, 2: 3}
