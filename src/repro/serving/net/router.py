"""Consistent-hash routing + live stream migration across cluster nodes.

One :class:`~repro.serving.cluster.ServingCluster` scales to the cores of
one machine; :class:`ClusterRouter` is the tier above it — N *independent*
clusters ("nodes", each with its own shards, executor and supervision)
behind one submit/flush/stats surface:

* **routing** — a stream id maps to ``stable_key_slot(stream_id, N)``,
  the same process-independent CRC32 bucketing the shards use, so
  placement is reproducible across routers and restarts.  A migration
  overlay (stream id → node) takes precedence, which is what lets
  placement *change* while the hash stays stable.
* **live migration** — :meth:`migrate_stream` detaches one stream
  (session + queued arrivals, via
  :meth:`~repro.serving.cluster.ServingCluster.extract_stream`) from its
  current node and installs it on another; serving resumes bit-for-bit
  (the single-stream application of the snapshot/restore parity the
  cluster matrix proves).  :meth:`drain_node` migrates *everything* off a
  node — rebalancing the departing streams across the survivors by the
  same consistent hash — so a node can be taken down mid-run with zero
  decision drift.
* **recovery** — the router keeps a per-node checkpoint (a
  :class:`~repro.serving.cluster.ClusterSnapshot`) plus a journal of every
  admission since; :meth:`recover_node` restores the checkpoint and
  replays the journal.  A SIGKILLed node comes back serving the same
  streams with *at-least-once* delivery: every admitted arrival is
  re-served (replayed decisions are bit-identical, so duplicates are
  harmless repeats, and per-key outcomes match an unfailed reference).

The router is synchronous, like the cluster; put it behind
:class:`~repro.serving.aio.AsyncServingGateway` +
:class:`~repro.serving.net.server.ServingHTTPServer` per node for the
networked deployment (each node is its own process/host then, and the
router moves :class:`~repro.serving.cluster.StreamState` payloads, which
pickle cleanly).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.embeddings import stable_key_slot
from repro.serving.cluster import (
    ClusterSnapshot,
    ServingCluster,
    StreamDecision,
)
from repro.serving.results import SubmitResult
from repro.serving.sinks import DecisionSink

__all__ = ["ClusterRouter", "RouterSnapshot"]


@dataclass
class RouterSnapshot:
    """Opaque restorable copy of the router's state: nodes + placement."""

    node_snapshots: List[ClusterSnapshot]
    overrides: Dict[Hashable, int]


class ClusterRouter:
    """Hash-route streams across independent serving clusters.

    The nodes are caller-built (their shard counts, executors and engine
    configs may differ; decision parity across placements requires the
    same model/spec/engine config on every node, which is the intended
    deployment).  The router closes its nodes only when told to
    (:meth:`close`); it never builds them.
    """

    def __init__(self, nodes: Sequence[ServingCluster]) -> None:
        if not nodes:
            raise ValueError("ClusterRouter needs at least one node")
        self.nodes: List[ServingCluster] = list(nodes)
        #: Migration overlay: stream id → node index, consulted before the
        #: consistent hash.  Entries whose target equals the hash slot are
        #: dropped eagerly, so the overlay only holds actual deviations.
        self._overrides: Dict[Hashable, int] = {}
        self._lock = threading.Lock()
        #: Per-node recovery basis: the last checkpoint and every admitted
        #: (stream_id, event) since.  ``checkpoint + journal ≡ node state``
        #: is the invariant every mutation below maintains.
        self._checkpoints: List[ClusterSnapshot] = [
            node.snapshot() for node in self.nodes
        ]
        self._journals: List[List[Tuple[Hashable, object]]] = [
            [] for _ in self.nodes
        ]

    # ------------------------------------------------------------------ #
    # placement
    # ------------------------------------------------------------------ #
    def node_index(self, stream_id: Hashable) -> int:
        """The node currently serving a stream (overlay, then hash)."""
        with self._lock:
            override = self._overrides.get(stream_id)
        if override is not None:
            return override
        return stable_key_slot(stream_id, len(self.nodes))

    def node_of(self, stream_id: Hashable) -> ServingCluster:
        return self.nodes[self.node_index(stream_id)]

    @property
    def overrides(self) -> Dict[Hashable, int]:
        """A copy of the migration overlay (stream id → node index)."""
        with self._lock:
            return dict(self._overrides)

    # ------------------------------------------------------------------ #
    # serving API (mirrors ServingCluster)
    # ------------------------------------------------------------------ #
    def submit(
        self,
        event,
        stream_id: Optional[Hashable] = None,
        raise_on_reject: bool = True,
    ) -> SubmitResult:
        """Route one arrival to its stream's node; journal admissions."""
        sid = event.source if stream_id is None else stream_id
        index = self.node_index(sid)
        result = self.nodes[index].submit(
            event, stream_id=stream_id, raise_on_reject=raise_on_reject
        )
        if result.admitted:
            with self._lock:
                self._journals[index].append((result.stream_id, event))
        return result

    def drain(self) -> List[StreamDecision]:
        return [sd for node in self.nodes for sd in node.drain()]

    def flush(self) -> List[StreamDecision]:
        return [sd for node in self.nodes for sd in node.flush()]

    def flush_stream(self, stream_id: Hashable) -> List[StreamDecision]:
        return self.node_of(stream_id).flush_stream(stream_id)

    def expire(self, now: Optional[float] = None) -> List[StreamDecision]:
        return [sd for node in self.nodes for sd in node.expire(now)]

    def subscribe(self, sink: DecisionSink) -> DecisionSink:
        """Subscribe a sink to every node's emissions."""
        for node in self.nodes:
            node.subscribe(sink)
        return sink

    def unsubscribe(self, sink: DecisionSink) -> bool:
        removed = False
        for node in self.nodes:
            removed = node.unsubscribe(sink) or removed
        return removed

    def close(self) -> None:
        for node in self.nodes:
            node.close()

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # live migration
    # ------------------------------------------------------------------ #
    def migrate_stream(self, stream_id: Hashable, target: int) -> bool:
        """Move one live stream to another node; False if already there.

        Safe mid-run between submissions: the extracted state carries the
        session *and* any queued arrivals, so decisions before and after
        the move are bit-identical to an unmoved run.  Both touched nodes
        are re-checkpointed (their journals reset) so a later
        :meth:`recover_node` replays against post-migration placement.
        """
        if not 0 <= target < len(self.nodes):
            raise ValueError(f"no node {target} (have {len(self.nodes)})")
        source = self.node_index(stream_id)
        if source == target:
            return False
        state = self.nodes[source].extract_stream(stream_id)
        self.nodes[target].install_stream(state)
        with self._lock:
            if stable_key_slot(stream_id, len(self.nodes)) == target:
                self._overrides.pop(stream_id, None)
            else:
                self._overrides[stream_id] = target
        self._checkpoint_node(source)
        self._checkpoint_node(target)
        return True

    def drain_node(self, index: int) -> Dict[Hashable, int]:
        """Migrate every stream off a node; returns the new placements.

        Departing streams are rebalanced across the surviving nodes with
        the same consistent hash (over ``N - 1`` slots), so a re-run with
        the same survivors places them identically.  The node itself is
        left running and empty — decommission it with ``node.close()``
        when traffic has moved.
        """
        if len(self.nodes) < 2:
            raise ValueError("cannot drain the only node")
        survivors = [i for i in range(len(self.nodes)) if i != index]
        placements: Dict[Hashable, int] = {}
        for stream_id in self.nodes[index].stream_ids():
            target = survivors[stable_key_slot(stream_id, len(survivors))]
            self.migrate_stream(stream_id, target)
            placements[stream_id] = target
        return placements

    # ------------------------------------------------------------------ #
    # checkpoint / recovery
    # ------------------------------------------------------------------ #
    def _checkpoint_node(self, index: int) -> None:
        with self._lock:
            self._journals[index] = []
        self._checkpoints[index] = self.nodes[index].snapshot()

    def checkpoint(self) -> None:
        """Refresh every node's recovery basis (snapshot now, empty journal)."""
        for index in range(len(self.nodes)):
            self._checkpoint_node(index)

    def recover_node(self, index: int) -> List[StreamDecision]:
        """Rebuild a failed node: restore its checkpoint, replay its journal.

        Built for *external* failures (a SIGKILLed worker fleet, a wedged
        node) — :meth:`~repro.serving.cluster.ServingCluster.restore`
        respawns dead worker processes and reseeds their replicas, then the
        journal replay re-serves every admitted arrival since the
        checkpoint.  Delivery is at-least-once: arrivals the dead node had
        already decided are decided again, bit-identically (subscribed
        sinks see repeats of the same decisions, never conflicting ones).
        Returns the decisions the replay emitted.
        """
        node = self.nodes[index]
        with self._lock:
            journal = list(self._journals[index])
        node.restore(self._checkpoints[index])
        emitted: List[StreamDecision] = []
        for stream_id, event in journal:
            result = node.submit(
                event, stream_id=stream_id, raise_on_reject=False
            )
            emitted.extend(result.decisions)
        return emitted

    # ------------------------------------------------------------------ #
    # snapshot / restore (whole-router)
    # ------------------------------------------------------------------ #
    def snapshot(self) -> RouterSnapshot:
        """Deep-copy every node plus the placement overlay."""
        return RouterSnapshot(
            node_snapshots=[node.snapshot() for node in self.nodes],
            overrides=self.overrides,
        )

    def restore(self, snapshot: RouterSnapshot) -> None:
        if len(snapshot.node_snapshots) != len(self.nodes):
            raise ValueError(
                f"snapshot has {len(snapshot.node_snapshots)} nodes, router "
                f"has {len(self.nodes)}"
            )
        for node, node_snapshot in zip(self.nodes, snapshot.node_snapshots):
            node.restore(node_snapshot)
        with self._lock:
            self._overrides = dict(snapshot.overrides)
        self.checkpoint()

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        """``running`` if every node runs; else the most-degraded state."""
        states = {node.state for node in self.nodes}
        for state in ("closed", "draining"):
            if state in states:
                return state
        return "running"

    def stats(self) -> Dict[str, object]:
        """Merged cluster stats plus per-node breakdowns (pure JSON)."""
        node_stats = [node.stats() for node in self.nodes]
        return {
            "num_nodes": len(self.nodes),
            "state": self.state,
            "overrides": len(self.overrides),
            "num_sessions": sum(s["num_sessions"] for s in node_stats),
            "num_decided": sum(s["num_decided"] for s in node_stats),
            "rejected": sum(s["rejected"] for s in node_stats),
            "shed": sum(s["shed"] for s in node_stats),
            "drained": sum(s["drained"] for s in node_stats),
            "rounds": sum(s["rounds"] for s in node_stats),
            "items_per_s": sum(s["items_per_s"] for s in node_stats),
            "decisions_per_s": sum(s["decisions_per_s"] for s in node_stats),
            "journal_depths": [len(journal) for journal in self._journals],
            "nodes": node_stats,
        }

    def health(self) -> Dict[str, object]:
        """Merged fault-tolerance view across nodes (pure JSON)."""
        node_health = [node.health() for node in self.nodes]
        return {
            "nodes": node_health,
            "breaker_open_nodes": [
                index
                for index, view in enumerate(node_health)
                if view["breaker_open"]
            ],
            "failures": sum(view["failures"] for view in node_health),
            "restores": sum(view["restores"] for view in node_health),
            "lost_arrivals": sum(view["lost_arrivals"] for view in node_health),
            "worker_respawns": sum(
                view["worker_respawns"] for view in node_health
            ),
        }
