"""Figure 4: macro precision vs earliness (shares the Fig. 3 sweep via caching)."""

from benchmarks.conftest import run_and_record


def test_fig4_precision_vs_earliness(benchmark, scale_name):
    result = run_and_record(benchmark, "fig4_precision", scale_name)
    for curves in result.curves.values():
        for curve in curves.values():
            for _, value in curve.series("precision"):
                assert 0.0 <= value <= 1.0
