"""KVEC: Key-Value sequence Early Co-classification (the paper's contribution).

The model has two cooperating modules (Fig. 2 of the paper):

* **KVRL** (key-value sequence representation learning):
  :class:`~repro.core.embeddings.InputEmbedding` builds per-item embeddings
  (value + membership + relative position + time),
  :class:`~repro.core.correlation.CorrelationTracker` derives the dynamic
  key/value-correlation mask, :class:`~repro.core.kvrl.KVRLEncoder` applies
  correlation-masked self-attention blocks, and
  :class:`~repro.core.fusion.GatedFusion` folds the refined item embeddings
  into one running representation per key-value sequence.

* **ECTL** (early co-classification timing learning):
  :class:`~repro.core.ectl.HaltingPolicy` decides Halt/Wait per observation,
  :class:`~repro.core.ectl.BaselineValue` is the REINFORCE variance-reduction
  baseline, and :class:`~repro.core.classifier.SequenceClassifier` produces
  the label distribution once a sequence halts.

:class:`~repro.core.model.KVEC` ties the pieces together and
:class:`~repro.core.trainer.KVECTrainer` implements the joint training loop of
Algorithm 1 (cross-entropy + REINFORCE-with-baseline + earliness penalty).
"""

from repro.core.config import KVECConfig
from repro.core.correlation import CorrelationStructure, CorrelationTracker, build_correlation_structure
from repro.core.embeddings import InputEmbedding
from repro.core.kvrl import KVRLEncoder
from repro.core.fusion import GatedFusion, MeanFusion, LastItemFusion
from repro.core.ectl import BaselineValue, HaltingPolicy
from repro.core.classifier import SequenceClassifier
from repro.core.model import KVEC, EpisodeResult, KeyEpisode
from repro.core.trainer import KVECTrainer, TrainingHistory
from repro.core.ablations import make_kvec_variant, ABLATION_VARIANTS
from repro.core.checkpoint import load_checkpoint, save_checkpoint

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "KVECConfig",
    "CorrelationTracker",
    "CorrelationStructure",
    "build_correlation_structure",
    "InputEmbedding",
    "KVRLEncoder",
    "GatedFusion",
    "MeanFusion",
    "LastItemFusion",
    "HaltingPolicy",
    "BaselineValue",
    "SequenceClassifier",
    "KVEC",
    "EpisodeResult",
    "KeyEpisode",
    "KVECTrainer",
    "TrainingHistory",
    "make_kvec_variant",
    "ABLATION_VARIANTS",
]
