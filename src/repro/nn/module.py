"""Module / Parameter abstractions mirroring a small subset of ``torch.nn``."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a learnable parameter of a module."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules.

    Sub-modules and parameters assigned as attributes are registered
    automatically, so :meth:`parameters`, :meth:`state_dict` and
    :meth:`zero_grad` traverse the whole tree.
    """

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------ #
    # attribute registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[Parameter]:
        """Return all parameters of this module and its children."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs for the module tree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant module."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def children(self) -> Iterator["Module"]:
        """Yield the direct child modules."""
        yield from self._modules.values()

    # ------------------------------------------------------------------ #
    # training state
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Reset gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar parameters in the module tree."""
        return int(sum(param.size for param in self.parameters()))

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of parameter names to arrays (copies)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values from a :meth:`state_dict` mapping."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: expected {param.shape}, got {value.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------ #
    # call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_repr = ", ".join(self._modules)
        return f"{type(self).__name__}({child_repr})"


class ModuleList(Module):
    """A list container whose elements are registered as sub-modules."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
