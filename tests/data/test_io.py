"""Tests for JSONL/CSV serialization of key-value sequence data."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import PredictionRecord
from repro.data import io as data_io
from repro.data.items import Item, KeyValueSequence, TangledSequence, ValueSpec
from repro.data.tangle import interleave_sequences
from repro.datasets.traffic import make_ustc_tfc2016

SPEC = ValueSpec(("size", "direction"), (8, 2), 1)


def make_sequence(key, length, label=0):
    rng = np.random.default_rng(abs(hash(key)) % 2**32)
    items = [
        Item(key, (int(rng.integers(0, 8)), int(rng.integers(0, 2))), float(i))
        for i in range(length)
    ]
    return KeyValueSequence(key, items, label)


class TestItemCodec:
    def test_round_trip(self):
        item = Item("flow-1", (3, 1), 2.5)
        assert data_io.item_from_dict(data_io.item_to_dict(item)) == item

    def test_tuple_keys_survive(self):
        item = Item(("10.0.0.1", 443), (1, 0), 0.0)
        decoded = data_io.item_from_dict(data_io.item_to_dict(item))
        assert decoded.key == ("10.0.0.1", 443)

    def test_spec_round_trip(self):
        assert data_io.spec_from_dict(data_io.spec_to_dict(SPEC)) == SPEC


class TestSequenceFiles:
    def test_sequences_round_trip(self, tmp_path):
        sequences = [make_sequence(f"k{i}", 5 + i, label=i % 3) for i in range(6)]
        path = tmp_path / "sequences.jsonl"
        written = data_io.save_sequences(sequences, path)
        assert written == 6
        loaded = data_io.load_sequences(path)
        assert len(loaded) == 6
        for original, restored in zip(sequences, loaded):
            assert restored.key == original.key
            assert restored.label == original.label
            assert [item.value for item in restored] == [item.value for item in original]
            assert [item.time for item in restored] == [item.time for item in original]

    def test_empty_file_loads_empty_list(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert data_io.load_sequences(path) == []


class TestTangleFiles:
    def test_tangles_round_trip(self, tmp_path):
        tangles = [
            interleave_sequences([make_sequence("a", 4, 0), make_sequence("b", 3, 1)], SPEC),
            interleave_sequences([make_sequence("c", 5, 2)], SPEC),
        ]
        path = tmp_path / "tangles.jsonl"
        data_io.save_tangles(tangles, SPEC, path)
        loaded = data_io.load_tangles(path)
        assert len(loaded) == 2
        assert loaded[0].labels == tangles[0].labels
        assert len(loaded[0]) == len(tangles[0])
        assert loaded[0].spec == SPEC

    def test_wrong_kind_rejected(self, tmp_path):
        from repro.datasets.base import GeneratedDataset

        sequences = [make_sequence("a", 3)]
        path = tmp_path / "sequences.jsonl"
        dataset = GeneratedDataset(name="x", sequences=sequences, spec=SPEC, num_classes=2)
        data_io.save_dataset(dataset, path)
        with pytest.raises(ValueError):
            data_io.load_tangles(path)


class TestDatasetFiles:
    def test_generated_dataset_round_trip(self, tmp_path):
        dataset = make_ustc_tfc2016(num_flows=12, seed=3)
        path = tmp_path / "ustc.jsonl"
        data_io.save_dataset(dataset, path)
        restored = data_io.load_dataset(path)
        assert restored.name == dataset.name
        assert restored.num_classes == dataset.num_classes
        assert len(restored.sequences) == len(dataset.sequences)
        assert restored.spec == dataset.spec
        assert restored.labels() == dataset.labels()

    def test_true_stop_positions_preserved(self, tmp_path):
        sequences = [make_sequence("a", 5, 0), make_sequence("b", 4, 1)]
        from repro.datasets.base import GeneratedDataset

        dataset = GeneratedDataset(
            name="stops",
            sequences=sequences,
            spec=SPEC,
            num_classes=2,
            true_stop_positions={"a": 2, "b": 3},
        )
        path = tmp_path / "stops.jsonl"
        data_io.save_dataset(dataset, path)
        assert data_io.load_dataset(path).true_stop_positions == {"a": 2, "b": 3}


class TestRecordFiles:
    def test_records_round_trip(self, tmp_path):
        records = [
            PredictionRecord("a", 1, 1, 3, 10, confidence=0.9, halted_by_policy=True),
            PredictionRecord("b", 0, 2, 7, 7, confidence=0.4, halted_by_policy=False),
        ]
        path = tmp_path / "records.jsonl"
        data_io.save_records(records, path)
        loaded = data_io.load_records(path)
        assert loaded == records

    @settings(max_examples=25, deadline=None)
    @given(
        predicted=st.integers(0, 5),
        label=st.integers(0, 5),
        halt=st.integers(1, 50),
        extra=st.integers(0, 50),
        confidence=st.floats(0, 1),
    )
    def test_record_codec_property(self, predicted, label, halt, extra, confidence):
        record = PredictionRecord(
            key="k", predicted=predicted, label=label,
            halt_observation=halt, sequence_length=halt + extra, confidence=confidence,
        )
        restored = data_io.record_from_dict(data_io.record_to_dict(record))
        assert restored == record
        assert restored.earliness == pytest.approx(record.earliness)


class TestCsvExport:
    def test_export_items_csv(self, tmp_path):
        tangle = interleave_sequences([make_sequence("a", 4, 0), make_sequence("b", 2, 1)], SPEC)
        path = tmp_path / "items.csv"
        written = data_io.export_items_csv(tangle, path)
        assert written == 6
        lines = path.read_text().strip().splitlines()
        assert lines[0].split(",") == ["time", "key", "label", "position", "size", "direction"]
        assert len(lines) == 7  # header + 6 items
