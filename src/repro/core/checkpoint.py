"""Saving and restoring trained KVEC models.

A downstream user trains KVEC once and serves it online (see
:mod:`repro.serving`); that requires persisting everything needed to rebuild
the model: the value schema, the number of classes, the configuration and
all learned parameters.  Checkpoints are a directory containing

* ``config.json`` — schema, class count and :class:`KVECConfig` fields,
* ``weights.npz`` — the flat ``state_dict`` of the model.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

from repro.core.config import KVECConfig
from repro.core.model import KVEC
from repro.data.items import ValueSpec
from repro.nn.serialization import load_state_dict, save_state_dict

PathLike = Union[str, Path]

CONFIG_FILE = "config.json"
WEIGHTS_FILE = "weights.npz"


def save_checkpoint(model: KVEC, directory: PathLike) -> Path:
    """Write a complete checkpoint of ``model``; returns the directory path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "spec": {
            "field_names": list(model.spec.field_names),
            "cardinalities": list(int(c) for c in model.spec.cardinalities),
            "session_field": int(model.spec.session_field),
        },
        "num_classes": int(model.num_classes),
        "config": dataclasses.asdict(model.config),
    }
    (directory / CONFIG_FILE).write_text(json.dumps(payload, indent=2, sort_keys=True))
    save_state_dict(model, directory / WEIGHTS_FILE)
    return directory


def load_checkpoint(directory: PathLike) -> KVEC:
    """Rebuild a KVEC model from a checkpoint directory."""
    directory = Path(directory)
    config_path = directory / CONFIG_FILE
    weights_path = directory / WEIGHTS_FILE
    if not config_path.exists() or not weights_path.exists():
        raise FileNotFoundError(f"{directory} is not a KVEC checkpoint directory")
    payload = json.loads(config_path.read_text())
    spec = ValueSpec(
        field_names=tuple(payload["spec"]["field_names"]),
        cardinalities=tuple(int(c) for c in payload["spec"]["cardinalities"]),
        session_field=int(payload["spec"]["session_field"]),
    )
    config = KVECConfig(**payload["config"])
    model = KVEC(spec, int(payload["num_classes"]), config)
    state = load_state_dict(weights_path)
    _load_weights(model, state)
    return model


def _load_weights(model: KVEC, state: dict) -> None:
    """Copy a flat state dict into the model, checking names and shapes."""
    named = dict(model.named_parameters())
    missing = sorted(set(named) - set(state))
    unexpected = sorted(set(state) - set(named))
    if missing or unexpected:
        raise ValueError(
            f"checkpoint mismatch: missing={missing[:5]} unexpected={unexpected[:5]}"
        )
    for name, parameter in named.items():
        weights = state[name]
        if weights.shape != parameter.data.shape:
            raise ValueError(
                f"shape mismatch for {name}: checkpoint {weights.shape}, model {parameter.data.shape}"
            )
        parameter.data = weights.copy()
