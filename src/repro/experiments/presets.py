"""Scale presets for the experiment harness.

The paper trains 100 epochs on datasets with up to 60,000 flows using GPUs.
The numpy substrate runs on CPU, so each experiment accepts a scale preset:

* ``unit``  — the smallest sizes, used by the test suite (seconds),
* ``bench`` — the sizes used by the shipped benchmark outputs (tens of
  seconds to a few minutes per figure),
* ``paper`` — the paper's published sizes, documented and runnable but slow.

What is preserved across scales is the *shape* of each result (method
ordering, ablation directions, attention/halting trends), not the absolute
numbers; EXPERIMENTS.md records the paper-reported values next to the
``bench``-scale measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.baselines.prefix import PrefixSRNConfig
from repro.baselines.rl_policy import RLBaselineConfig
from repro.core.config import KVECConfig


@dataclass
class ExperimentScale:
    """All knobs that change between the unit / bench / paper scales."""

    name: str
    #: number of keys generated per dataset (dataset name -> count)
    dataset_keys: Dict[str, int]
    #: extra keyword arguments forwarded to specific dataset generators
    dataset_overrides: Dict[str, Dict] = field(default_factory=dict)
    #: number of concurrent key-value sequences per tangled stream
    concurrency: int = 4
    #: model configurations
    kvec: KVECConfig = field(default_factory=KVECConfig)
    rl_baseline: RLBaselineConfig = field(default_factory=RLBaselineConfig)
    prefix: PrefixSRNConfig = field(default_factory=PrefixSRNConfig)
    #: trade-off hyperparameter sweeps (Table II)
    kvec_beta_sweep: Tuple[float, ...] = (0.0001, 0.01, 0.1)
    lambda_sweep: Tuple[float, ...] = (0.0001, 0.01, 0.1)
    fixed_tau_sweep: Tuple[int, ...] = (3, 8, 20)
    confidence_sweep: Tuple[float, ...] = (0.5, 0.8, 0.95)
    #: sensitivity sweeps (Fig. 8)
    alpha_sweep: Tuple[float, ...] = (0.0, 0.001, 0.01, 0.1, 1.0, 10.0)
    beta_sensitivity_sweep: Tuple[float, ...] = (-0.05, -0.01, 0.0, 0.0001, 0.005, 0.05, 0.5)
    #: earliness levels probed by the attention analysis (Fig. 10)
    attention_levels: Tuple[float, ...] = (0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0)
    #: concurrency levels probed by the Fig. 12 experiment
    concurrency_levels: Tuple[int, ...] = (1, 2, 3, 4, 5)
    #: halting-threshold sweep used to trace per-K curves in Fig. 12
    halt_threshold_sweep: Tuple[float, ...] = (0.3, 0.5, 0.7, 0.9)
    seed: int = 0


def _unit_scale() -> ExperimentScale:
    kvec = KVECConfig(
        d_model=16, num_blocks=1, num_heads=1, ffn_hidden=32, d_state=24,
        dropout=0.0, epochs=3, batch_size=4, learning_rate=3e-3,
    )
    rl = RLBaselineConfig(d_model=16, num_blocks=1, epochs=2, batch_size=8)
    prefix = PrefixSRNConfig(d_model=16, num_blocks=1, epochs=2, batch_size=8)
    return ExperimentScale(
        name="unit",
        dataset_keys={
            "USTC-TFC2016": 36,
            "MovieLens-1M": 16,
            "Traffic-FG": 48,
            "Traffic-App": 40,
            "Synthetic-Traffic": 24,
        },
        dataset_overrides={
            "MovieLens-1M": {"mean_sequence_length": 40.0, "min_sequence_length": 15},
            "Synthetic-Traffic": {"flow_length": 40},
        },
        concurrency=3,
        kvec=kvec,
        rl_baseline=rl,
        prefix=prefix,
        kvec_beta_sweep=(0.0001, 0.05),
        lambda_sweep=(0.0001, 0.05),
        fixed_tau_sweep=(3, 10),
        confidence_sweep=(0.6, 0.9),
        alpha_sweep=(0.0, 0.1, 1.0),
        beta_sensitivity_sweep=(-0.01, 0.0001, 0.05),
        attention_levels=(0.1, 0.4, 1.0),
        concurrency_levels=(1, 2, 3),
        halt_threshold_sweep=(0.4, 0.6),
    )


def _bench_scale() -> ExperimentScale:
    kvec = KVECConfig(
        d_model=24, num_blocks=2, num_heads=2, ffn_hidden=48, d_state=32,
        dropout=0.0, epochs=12, batch_size=8, learning_rate=3e-3,
    )
    rl = RLBaselineConfig(d_model=24, num_blocks=2, epochs=8, batch_size=16, learning_rate=2e-3)
    prefix = PrefixSRNConfig(d_model=24, num_blocks=2, epochs=8, batch_size=16, learning_rate=2e-3)
    return ExperimentScale(
        name="bench",
        dataset_keys={
            "USTC-TFC2016": 90,
            "MovieLens-1M": 36,
            "Traffic-FG": 84,
            "Traffic-App": 70,
            "Synthetic-Traffic": 48,
        },
        dataset_overrides={
            "MovieLens-1M": {"mean_sequence_length": 60.0, "min_sequence_length": 20},
            "Synthetic-Traffic": {"flow_length": 60},
        },
        concurrency=4,
        kvec=kvec,
        rl_baseline=rl,
        prefix=prefix,
        kvec_beta_sweep=(0.0001, 0.01, 0.1),
        lambda_sweep=(0.0001, 0.01, 0.1),
        fixed_tau_sweep=(3, 8, 20),
        confidence_sweep=(0.5, 0.8, 0.95),
        alpha_sweep=(0.0, 0.001, 0.01, 0.1, 1.0, 10.0),
        beta_sensitivity_sweep=(-0.05, -0.01, 0.0, 0.0001, 0.005, 0.05, 0.5),
        attention_levels=(0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
        concurrency_levels=(1, 2, 3, 4, 5),
        halt_threshold_sweep=(0.3, 0.5, 0.7, 0.9),
    )


def _paper_scale() -> ExperimentScale:
    kvec = KVECConfig().paper_scale()
    rl = RLBaselineConfig(d_model=128, num_blocks=6, epochs=100, batch_size=64, learning_rate=1e-4)
    prefix = PrefixSRNConfig(d_model=128, num_blocks=6, epochs=100, batch_size=64, learning_rate=1e-4)
    return ExperimentScale(
        name="paper",
        dataset_keys={
            "USTC-TFC2016": 3200,
            "MovieLens-1M": 6040,
            "Traffic-FG": 60000,
            "Traffic-App": 50000,
            "Synthetic-Traffic": 10000,
        },
        concurrency=5,
        kvec=kvec,
        rl_baseline=rl,
        prefix=prefix,
        kvec_beta_sweep=(-0.05, -0.01, 0.0001, 0.001, 0.01, 0.05, 0.5, 5.0),
        lambda_sweep=(0.0001, 0.001, 0.01, 0.05, 0.5),
        fixed_tau_sweep=(2, 5, 10, 20, 40),
        confidence_sweep=(0.3, 0.5, 0.7, 0.9, 0.99),
    )


SCALES: Dict[str, ExperimentScale] = {
    "unit": _unit_scale(),
    "bench": _bench_scale(),
    "paper": _paper_scale(),
}


def get_scale(name: str) -> ExperimentScale:
    """Look up a scale preset by name."""
    if name not in SCALES:
        raise KeyError(f"unknown scale {name!r}; known: {sorted(SCALES)}")
    return SCALES[name]
