"""Loopback end-to-end suite for the HTTP serving tier.

Every test runs a real :class:`ServingHTTPServer` on an ephemeral loopback
port and drives it with the wire-speaking :class:`ServingHTTPClient` — every
byte crosses a socket, nothing shortcuts into the gateway.  Stdlib
``asyncio.run`` only (no pytest-asyncio), same as the aio suite.

Covered here: per-stream decision parity over HTTP, the admission-status →
response-code mapping (decided/accepted/rejected/shed/degraded), decision
push-stream ordering against the pull API, malformed-request 400s, and the
running → draining → closed lifecycle.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.core.config import KVECConfig
from repro.core.model import KVEC
from repro.data.items import Item, ValueSpec
from repro.data.stream import StreamEvent
from repro.serving import (
    AsyncServingGateway,
    CheckpointConfig,
    ClusterConfig,
    EngineConfig,
    FaultInjector,
    FaultSpec,
    OnlineClassificationEngine,
    ServingCluster,
    SupervisorConfig,
)
from repro.serving.net import ServingHTTPClient, ServingHTTPServer, protocol
from repro.serving.net.client import ServingUnavailableError

SPEC = ValueSpec(field_names=("size", "direction"), cardinalities=(8, 2), session_field=1)


def make_model(seed: int = 3) -> KVEC:
    config = KVECConfig(
        d_model=12,
        num_blocks=2,
        num_heads=2,
        ffn_hidden=20,
        d_state=16,
        dropout=0.0,
        encoding="rotary",
        seed=seed,
    )
    return KVEC(SPEC, num_classes=3, config=config)


def engine_config(**overrides) -> EngineConfig:
    kwargs = dict(window_items=7, halt_threshold=0.5, reencode_every=2)
    kwargs.update(overrides)
    return EngineConfig(**kwargs)


def multi_stream_events(seed: int, num_events=200, num_streams=4, num_keys=4):
    rng = np.random.default_rng(seed)
    streams = [f"stream-{i}" for i in range(num_streams)]
    events = []
    clock = 0.0
    for _ in range(num_events):
        clock += 1.0
        stream_id = streams[int(rng.integers(num_streams))]
        item = Item(
            f"k{rng.integers(num_keys)}",
            (int(rng.integers(8)), int(rng.integers(2))),
            clock,
        )
        events.append(StreamEvent(time=clock, item=item, source=stream_id))
    return streams, events


def reference_decisions(model, streams, events):
    engines = {
        stream_id: OnlineClassificationEngine(model, SPEC, engine_config())
        for stream_id in streams
    }
    ordered = {stream_id: [] for stream_id in streams}
    for event in events:
        ordered[event.source].extend(engines[event.source].offer(event))
    for stream_id, engine in engines.items():
        ordered[stream_id].extend(engine.flush())
    return ordered


def assert_wire_parity(got_by_stream, expected):
    """Wire-side NetDecisions against reference engine Decisions."""
    for stream_id, reference in expected.items():
        got = got_by_stream.get(stream_id, [])
        assert [d.key for d in got] == [d.key for d in reference], stream_id
        for mine, ref in zip(got, reference):
            assert mine.predicted == ref.predicted, (stream_id, mine.key)
            assert mine.confidence == pytest.approx(ref.confidence, abs=1e-9)
            assert mine.observations == ref.observations, (stream_id, mine.key)


async def _wait_for_stream_registration(server, count=1, timeout=5.0):
    """Poll until `count` decision-stream subscriptions are live server-side."""
    deadline = time.monotonic() + timeout
    while server.stats()["server"]["decision_streams"] < count:
        if time.monotonic() > deadline:
            raise AssertionError("decision stream never registered")
        await asyncio.sleep(0.01)


class TestHTTPParity:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_http_submissions_match_reference_per_stream(self, executor):
        """Submitting over the wire changes nothing: decision-for-decision
        parity with one sequential single-stream engine per stream."""
        model = make_model()
        streams, events = multi_stream_events(seed=41, num_events=160)
        expected = reference_decisions(model, streams, events)

        async def scenario():
            config = ClusterConfig(
                num_shards=2,
                batch_size=4,
                executor=executor,
                engine=engine_config(),
            )
            collected = []
            async with ServingHTTPServer(
                model=model, spec=SPEC, config=config
            ) as server:
                async with ServingHTTPClient(server.host, server.port) as client:
                    for event in events:
                        result = await client.submit(event.source, event)
                        assert result.admitted
                        assert result.http_status in (200, 202)
                        # decided iff the round inlined decisions
                        assert (result.http_status == 200) == bool(result.decisions)
                        collected.extend(result.decisions)
                    collected.extend(await client.shutdown())
            return collected

        collected = asyncio.run(scenario())
        got_by_stream = {}
        for decision in collected:
            got_by_stream.setdefault(decision.stream_id, []).append(decision)
        assert_wire_parity(got_by_stream, expected)

    def test_decision_push_stream_matches_pull_api(self):
        """The chunked NDJSON push stream carries exactly the pull-API
        decisions, field-for-field in the same order."""
        model = make_model()
        streams, events = multi_stream_events(seed=43, num_events=120)

        async def scenario():
            config = ClusterConfig(num_shards=2, batch_size=4, engine=engine_config())
            async with ServingHTTPServer(
                model=model, spec=SPEC, config=config, heartbeat_s=0.2
            ) as server:
                async with ServingHTTPClient(server.host, server.port) as client:
                    pushed = []

                    async def consume():
                        async for decision in client.decisions():
                            pushed.append(decision)

                    consumer = asyncio.create_task(consume())
                    await _wait_for_stream_registration(server)
                    pulled = []
                    for event in events:
                        result = await client.submit(event.source, event)
                        pulled.extend(result.decisions)
                    pulled.extend(await client.shutdown())
                    await asyncio.wait_for(consumer, timeout=10)
            return pulled, pushed

        pulled, pushed = asyncio.run(scenario())
        assert len(pushed) == len(pulled) > 0
        assert pushed == pulled  # NetDecision dataclasses: field equality

    def test_vanished_stream_consumer_is_unsubscribed(self):
        """Breaking out of the client iteration closes the connection; the
        heartbeat detects the dead socket and tears the subscription down."""
        model = make_model()
        streams, events = multi_stream_events(seed=47, num_events=60)

        async def scenario():
            config = ClusterConfig(num_shards=1, batch_size=4, engine=engine_config())
            async with ServingHTTPServer(
                model=model, spec=SPEC, config=config, heartbeat_s=0.05
            ) as server:
                async with ServingHTTPClient(server.host, server.port) as client:
                    async def consume_one():
                        async for decision in client.decisions():
                            return decision  # abandon the stream immediately

                    consumer = asyncio.create_task(consume_one())
                    await _wait_for_stream_registration(server)
                    for event in events:
                        await client.submit(event.source, event)
                    first = await asyncio.wait_for(consumer, timeout=10)
                    assert first is not None
                    # the server notices on its next heartbeat/write attempt
                    deadline = time.monotonic() + 5.0
                    while server.stats()["server"]["decision_streams"]:
                        assert time.monotonic() < deadline, "sink never unsubscribed"
                        await asyncio.sleep(0.02)
                    # serving keeps flowing without the dead stream
                    flushed = await client.flush()
                    return flushed

        flushed = asyncio.run(scenario())
        assert isinstance(flushed, list)


class TestStatusMapping:
    def test_decided_and_accepted_codes(self):
        model = make_model()

        async def scenario():
            # batch_size=4 with auto-drain: three queued arrivals come back
            # 202, the fourth triggers the round and returns 200 + decisions
            config = ClusterConfig(num_shards=1, batch_size=4, engine=engine_config())
            async with ServingHTTPServer(model=model, spec=SPEC, config=config) as server:
                async with ServingHTTPClient(server.host, server.port) as client:
                    codes = []
                    for step in range(8):
                        result = await client.submit(
                            "alpha", key=f"k{step % 2}",
                            value=[step % 8, step % 2], time=float(step),
                        )
                        codes.append((result.http_status, result.status))
                    await client.shutdown()
            return codes

        codes = asyncio.run(scenario())
        assert (202, "accepted") in codes
        assert any(code == 200 and status == "decided" for code, status in codes)
        assert all(code in (200, 202) for code, _ in codes)

    def test_rejected_maps_to_429(self):
        model = make_model()

        async def scenario():
            config = ClusterConfig(
                num_shards=1,
                batch_size=4,
                max_queue=2,
                overflow="reject",
                auto_drain=False,
                engine=engine_config(),
            )
            async with ServingHTTPServer(model=model, spec=SPEC, config=config) as server:
                async with ServingHTTPClient(server.host, server.port) as client:
                    results = []
                    for step in range(3):
                        results.append(
                            await client.submit(
                                "alpha", key="k0", value=[step, 0], time=float(step)
                            )
                        )
                    await client.shutdown()
            return results

        results = asyncio.run(scenario())
        assert [r.http_status for r in results] == [202, 202, 429]
        assert results[-1].status == "rejected"
        assert not results[-1].admitted

    def test_shed_maps_to_503_with_retry_after(self):
        model = make_model()

        async def scenario():
            config = ClusterConfig(
                num_shards=1,
                batch_size=4,
                max_queue=2,
                overflow="shed",
                auto_drain=False,
                engine=engine_config(),
            )
            async with ServingHTTPServer(model=model, spec=SPEC, config=config) as server:
                async with ServingHTTPClient(server.host, server.port) as client:
                    results = []
                    for step in range(3):
                        results.append(
                            await client.submit(
                                "alpha", key="k0", value=[step, 0], time=float(step)
                            )
                        )
                    await client.shutdown()
            return results

        results = asyncio.run(scenario())
        assert [r.http_status for r in results] == [202, 202, 503]
        assert results[-1].status == "shed"
        assert results[-1].retry_after == 1  # Retry-After crossed the wire

    def test_degraded_maps_to_503(self):
        """A breaker-open shard serves degraded submissions as 503s."""
        model = make_model()
        streams, events = multi_stream_events(seed=15, num_events=8)
        injector = FaultInjector(
            specs=[FaultSpec(site="shard-round", shard_id=0, limit=2)]
        )
        config = ClusterConfig(
            num_shards=1,
            batch_size=2,
            auto_drain=False,
            supervision=SupervisorConfig(
                failure_threshold=2,
                backoff_base_s=10.0,
                backoff_max_s=40.0,
                degraded="shed",
                checkpoint=CheckpointConfig(every_rounds=2),
            ),
            faults=injector,
            engine=engine_config(),
        )
        cluster = ServingCluster(model, SPEC, config)
        for event in events[:4]:
            cluster.submit(event)
        for _ in range(2):  # two failing rounds trip the threshold-2 breaker
            cluster.drain()
        assert cluster.health()["breaker_open"] == [0]

        async def scenario():
            gateway = AsyncServingGateway(cluster=cluster)
            async with ServingHTTPServer(gateway) as server:
                async with ServingHTTPClient(server.host, server.port) as client:
                    result = await client.submit(
                        events[4].source, events[4]
                    )
                    health = await client.health()
            await gateway.close()
            return result, health

        result, health = asyncio.run(scenario())
        cluster.close()
        assert result.http_status == 503
        assert result.status == "degraded"
        assert health["breaker_open"] == [0]
        assert health["degraded_submits"] == 1


class TestMalformedRequests:
    def _server(self, model):
        config = ClusterConfig(num_shards=1, batch_size=4, engine=engine_config())
        return ServingHTTPServer(model=model, spec=SPEC, config=config)

    def test_framing_and_body_errors_return_400(self):
        model = make_model()

        async def scenario():
            async with self._server(model) as server:
                client = ServingHTTPClient(server.host, server.port)
                async with client:
                    target = f"{server.host}:{server.port}"
                    # unparseable request line
                    garbage = await client.raw_request(b"NOT A REQUEST\r\n\r\n")
                    # body that is not JSON
                    bad_json = await client.raw_request(
                        protocol.render_request(
                            "POST", "/v1/streams/s/events", target, b"{nope"
                        )
                    )
                    # structurally valid JSON, invalid event payloads
                    unknown_field = await client.request(
                        "POST",
                        "/v1/streams/s/events",
                        {"time": 0.1, "key": "k", "value": [0, 0], "bogus": 1},
                    )
                    out_of_range = await client.request(
                        "POST",
                        "/v1/streams/s/events",
                        {"time": 0.1, "key": "k", "value": [9, 0]},
                    )
                    wrong_arity = await client.request(
                        "POST",
                        "/v1/streams/s/events",
                        {"time": 0.1, "key": "k", "value": [1]},
                    )
                    not_a_dict = await client.request(
                        "POST", "/v1/streams/s/events", [1, 2, 3]
                    )
                    bad_expire = await client.request(
                        "POST", "/v1/admin/expire", {"now": "later"}
                    )
            return [
                garbage, bad_json, unknown_field, out_of_range,
                wrong_arity, not_a_dict, bad_expire,
            ]

        responses = asyncio.run(scenario())
        for response in responses:
            assert response.status == 400
            assert "error" in response.json()

    def test_unknown_paths_and_methods(self):
        model = make_model()

        async def scenario():
            async with self._server(model) as server:
                async with ServingHTTPClient(server.host, server.port) as client:
                    wrong_root = await client.request("GET", "/v2/stats")
                    wrong_leaf = await client.request("POST", "/v1/streams/s/nope")
                    get_events = await client.request("GET", "/v1/streams/s/events")
                    post_stats = await client.request("POST", "/v1/stats")
                    bad_admin = await client.request("POST", "/v1/admin/explode")
                    with pytest.raises(RuntimeError, match="restore"):
                        await client.restore("snap-404")
            return wrong_root, wrong_leaf, get_events, post_stats, bad_admin

        wrong_root, wrong_leaf, get_events, post_stats, bad_admin = asyncio.run(
            scenario()
        )
        assert wrong_root.status == 404
        assert wrong_leaf.status == 404
        assert get_events.status == 405
        assert post_stats.status == 405
        assert bad_admin.status == 404


class TestLifecycleOverHTTP:
    def test_shutdown_then_submit_is_503(self):
        model = make_model()
        streams, events = multi_stream_events(seed=53, num_events=40)

        async def scenario():
            config = ClusterConfig(num_shards=2, batch_size=4, engine=engine_config())
            async with ServingHTTPServer(model=model, spec=SPEC, config=config) as server:
                async with ServingHTTPClient(server.host, server.port) as client:
                    inline = []
                    for event in events:
                        result = await client.submit(event.source, event)
                        inline.extend(result.decisions)
                    final = await client.shutdown()
                    inline.extend(final)
                    # reads are still served after the drain...
                    stats = await client.stats()
                    health = await client.health()
                    # ...but submissions are refused for lifecycle reasons
                    with pytest.raises(ServingUnavailableError) as refused:
                        await client.submit("alpha", key="k0", value=[0, 0])
                    # cluster-wide admin ops on a closed gateway 503 too
                    with pytest.raises(RuntimeError):
                        await client.flush()
            return inline, stats, health, refused.value

        emitted, stats, health, refusal = asyncio.run(scenario())
        assert len(emitted) > 0  # inline + shutdown-flush decisions arrived
        assert stats["gateway_state"] == "closed"
        assert stats["server"]["state"] == "draining"
        assert refusal.http_status == 503

    def test_snapshot_restore_round_trip_over_http(self):
        """Admin snapshot/restore replays the tail bit-identically."""
        model = make_model()
        streams, events = multi_stream_events(seed=59, num_events=80)
        split = 50

        async def scenario():
            config = ClusterConfig(num_shards=2, batch_size=4, engine=engine_config())
            async with ServingHTTPServer(model=model, spec=SPEC, config=config) as server:
                async with ServingHTTPClient(server.host, server.port) as client:
                    for event in events[:split]:
                        await client.submit(event.source, event)
                    snapshot_id = await client.snapshot()
                    first = []
                    for event in events[split:]:
                        result = await client.submit(event.source, event)
                        first.extend(result.decisions)
                    first.extend(await client.flush())
                    await client.restore(snapshot_id)
                    second = []
                    for event in events[split:]:
                        result = await client.submit(event.source, event)
                        second.extend(result.decisions)
                    second.extend(await client.flush())
                    await client.shutdown()
            return first, second

        first, second = asyncio.run(scenario())
        assert len(first) > 0
        assert first == second  # bit-identical replay through the wire

    def test_constructor_validation(self):
        model = make_model()
        with pytest.raises(ValueError, match="either"):
            ServingHTTPServer()
        gateway = AsyncServingGateway(
            model, SPEC, ClusterConfig(num_shards=1, engine=engine_config())
        )
        with pytest.raises(ValueError, match="either"):
            ServingHTTPServer(gateway, model=model)
        with pytest.raises(ValueError, match="max_buffered"):
            ServingHTTPServer(model=model, spec=SPEC, max_buffered=-1)
        gateway.cluster.close()


class TestServeEntrypoint:
    def test_selftest_smoke(self, capsys):
        from repro.serve import main as serve_main

        assert serve_main(["--selftest", "40", "--port", "0", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "selftest: 40 events" in out
