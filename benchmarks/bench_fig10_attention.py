"""Figure 10: internal vs external attention score at varied halting positions."""

from benchmarks.conftest import run_and_record


def test_fig10_attention_distribution(benchmark, scale_name):
    result = run_and_record(benchmark, "fig10_attention", scale_name)
    assert result.points
    # Shape check from the paper: once most of the sequence is observed,
    # intra-sequence (internal) attention dominates inter-sequence attention.
    assert result.internal_dominates_late()
    # Externally-sourced attention mass must be non-trivial early on (the
    # tangled correlations are actually used when data is scarce).
    assert result.points[0].external_score > 0.0
