"""Tests for the Synthetic-Traffic (early-stop / late-stop) generator."""

import pytest

from repro.datasets.synthetic_stop import (
    SyntheticStopConfig,
    generate_synthetic_stop_dataset,
    make_synthetic_traffic,
)


class TestConfig:
    def test_defaults_valid(self):
        SyntheticStopConfig()

    def test_signal_longer_than_flow_rejected(self):
        with pytest.raises(ValueError):
            SyntheticStopConfig(flow_length=10, signal_length=10)

    def test_invalid_subset_rejected(self):
        with pytest.raises(ValueError):
            SyntheticStopConfig(subset="middle")

    def test_too_few_size_buckets_rejected(self):
        with pytest.raises(ValueError):
            SyntheticStopConfig(num_size_buckets=2)


class TestEarlyStop:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_synthetic_traffic(num_flows=30, subset="early", seed=1, flow_length=40)

    def test_all_flows_have_stop_positions(self, dataset):
        assert set(dataset.true_stop_positions) == {s.key for s in dataset.sequences}

    def test_stop_positions_equal_signal_length(self, dataset):
        assert all(position == 10 for position in dataset.true_stop_positions.values())

    def test_signal_occupies_the_prefix(self, dataset):
        empty_code = dataset.spec.cardinalities[0] - 1
        for sequence in dataset.sequences[:5]:
            signal_sizes = [item.value[0] for item in sequence.items[:10]]
            filler_sizes = [item.value[0] for item in sequence.items[10:]]
            assert all(code == empty_code for code in filler_sizes)
            # Most signal packets use non-empty codes (a few may be noise).
            assert sum(code != empty_code for code in signal_sizes) >= 7

    def test_binary_balanced_labels(self, dataset):
        labels = [sequence.label for sequence in dataset.sequences]
        assert labels.count(0) == labels.count(1)

    def test_classes_use_disjoint_signal_codes(self):
        dataset = make_synthetic_traffic(
            num_flows=20, subset="early", seed=2, flow_length=30, noise_probability=0.0
        )
        empty_code = dataset.spec.cardinalities[0] - 1
        per_class_codes = {0: set(), 1: set()}
        for sequence in dataset.sequences:
            for item in sequence.items[:10]:
                if item.value[0] != empty_code:
                    per_class_codes[sequence.label].add(item.value[0])
        assert per_class_codes[0].isdisjoint(per_class_codes[1])


class TestLateStop:
    def test_stop_positions_at_the_end(self):
        dataset = make_synthetic_traffic(num_flows=10, subset="late", seed=3, flow_length=40)
        assert all(position == 40 for position in dataset.true_stop_positions.values())

    def test_signal_occupies_the_suffix(self):
        dataset = make_synthetic_traffic(
            num_flows=10, subset="late", seed=4, flow_length=40, noise_probability=0.0
        )
        empty_code = dataset.spec.cardinalities[0] - 1
        for sequence in dataset.sequences[:5]:
            prefix_sizes = [item.value[0] for item in sequence.items[:30]]
            suffix_sizes = [item.value[0] for item in sequence.items[30:]]
            assert all(code == empty_code for code in prefix_sizes)
            assert all(code != empty_code for code in suffix_sizes)

    def test_dataset_name_encodes_subset(self):
        assert "late" in make_synthetic_traffic(num_flows=4, subset="late").name
