"""Parity suite for cross-sample batched training (the batched-training PR).

The contract under test: ``KVECTrainer.batched_episode_losses`` over a
minibatch is a numerical twin of summing ``episode_losses`` per tangle —
identical sampled actions and predictions (bit-for-bit, via identical
per-episode RNGs), identical losses and per-parameter gradients within 1e-8
(observed agreement is ~1e-14; the bound leaves room for BLAS summation
order), and bit-identical end-of-training accuracy at a fixed seed.  The
suite sweeps B in {1, 3, 8} x both position encodings over ragged-length
tangles, plus a forced multi-bucket batch (mixed concurrencies) so the
length-bucketed grouping path is pinned too.
"""

import time

import numpy as np
import pytest

from repro.core.config import KVECConfig
from repro.core.model import KVEC
from repro.core.trainer import KVECTrainer
from repro.data.splits import split_by_key
from repro.data.tangle import retangle_by_concurrency
from repro.datasets.traffic import make_ustc_tfc2016

PARITY_ATOL = 1e-8


def small_config(encoding: str, **overrides) -> KVECConfig:
    defaults = dict(
        d_model=16,
        num_blocks=1,
        num_heads=1,
        ffn_hidden=24,
        d_state=20,
        dropout=0.0,  # exact parity requires identical (absent) dropout masks
        epochs=2,
        batch_size=4,
        learning_rate=3e-3,
        seed=0,
        encoding=encoding,
    )
    defaults.update(overrides)
    return KVECConfig(**defaults)


@pytest.fixture(scope="module")
def workload():
    # 60 flows so the key-disjoint train split re-tangles into > 8 tangles at
    # concurrency 3 (the largest parametrised minibatch below).
    dataset = make_ustc_tfc2016(num_flows=60, seed=3)
    split = split_by_key(dataset.sequences, rng=np.random.default_rng(0))
    tangles = retangle_by_concurrency(
        split.train, dataset.spec, 3, rng=np.random.default_rng(1)
    )
    return dataset, tangles


def _per_sample_reference(dataset, config, batch, seed_base=100):
    """Summed per-sample losses, gradients and episode results."""
    model = KVEC(dataset.spec, dataset.num_classes, config)
    trainer = KVECTrainer(model, batched=False)
    model.zero_grad()
    total_value = 0.0
    baseline_value = 0.0
    results = []
    for offset, tangle in enumerate(batch):
        total, baseline_loss, result, _ = trainer.episode_losses(
            tangle, rng=np.random.default_rng(seed_base + offset)
        )
        total.backward()
        baseline_loss.backward()
        total_value += float(total.data)
        baseline_value += float(baseline_loss.data)
        results.append(result)
    grads = [None if p.grad is None else p.grad.copy() for p in model.parameters()]
    return total_value, baseline_value, grads, results


def _batched_run(dataset, config, batch, seed_base=100):
    model = KVEC(dataset.spec, dataset.num_classes, config)
    trainer = KVECTrainer(model, batched=True)
    model.zero_grad()
    rngs = [np.random.default_rng(seed_base + offset) for offset in range(len(batch))]
    total, baseline_loss, results, _ = trainer.batched_episode_losses(batch, rngs)
    total.backward()
    baseline_loss.backward()
    grads = [None if p.grad is None else p.grad.copy() for p in model.parameters()]
    return float(total.data), float(baseline_loss.data), grads, results


def _assert_episode_parity(reference_results, batched_results):
    assert len(reference_results) == len(batched_results)
    for reference, batched in zip(reference_results, batched_results):
        assert set(reference.episodes) == set(batched.episodes)
        for key, expected in reference.episodes.items():
            actual = batched.episodes[key]
            assert actual.actions == expected.actions, key
            assert actual.predicted == expected.predicted, key
            assert actual.halted_by_policy == expected.halted_by_policy, key
            assert actual.num_observations == expected.num_observations, key


@pytest.mark.parametrize("encoding", ["absolute", "rotary"])
@pytest.mark.parametrize("batch_size", [1, 3, 8])
class TestBatchedLossParity:
    def test_losses_gradients_actions_match_per_sample(
        self, workload, encoding, batch_size
    ):
        dataset, tangles = workload
        config = small_config(encoding)
        batch = tangles[:batch_size]
        assert len(batch) == batch_size
        if batch_size > 1:
            # The contract explicitly covers ragged minibatches.
            assert len({len(t) for t in batch}) > 1

        ref_total, ref_baseline, ref_grads, ref_results = _per_sample_reference(
            dataset, config, batch
        )
        total, baseline, grads, results = _batched_run(dataset, config, batch)

        assert total == pytest.approx(ref_total, abs=PARITY_ATOL)
        assert baseline == pytest.approx(ref_baseline, abs=PARITY_ATOL)
        assert len(grads) == len(ref_grads)
        for expected, actual in zip(ref_grads, grads):
            if expected is None:
                assert actual is None
            else:
                np.testing.assert_allclose(actual, expected, atol=PARITY_ATOL)
        _assert_episode_parity(ref_results, results)


@pytest.mark.parametrize("encoding", ["absolute", "rotary"])
def test_forced_multi_bucket_batch_preserves_parity(workload, encoding):
    """Mixed short/long tangles force the length-bucketed grouping path."""
    dataset, _ = workload
    split = split_by_key(dataset.sequences, rng=np.random.default_rng(0))
    short = retangle_by_concurrency(
        split.train, dataset.spec, 2, rng=np.random.default_rng(1)
    )
    long = retangle_by_concurrency(
        split.train, dataset.spec, 6, rng=np.random.default_rng(2)
    )
    batch = [short[0], long[0], short[1], long[1]]
    config = small_config(encoding)

    trainer = KVECTrainer(KVEC(dataset.spec, dataset.num_classes, config), batched=True)
    assert len(trainer._length_buckets(batch)) > 1, [len(t) for t in batch]

    ref_total, ref_baseline, ref_grads, ref_results = _per_sample_reference(
        dataset, config, batch
    )
    total, baseline, grads, results = _batched_run(dataset, config, batch)
    assert total == pytest.approx(ref_total, abs=PARITY_ATOL)
    assert baseline == pytest.approx(ref_baseline, abs=PARITY_ATOL)
    for expected, actual in zip(ref_grads, grads):
        if expected is not None:
            np.testing.assert_allclose(actual, expected, atol=PARITY_ATOL)
    _assert_episode_parity(ref_results, results)


@pytest.mark.parametrize("encoding", ["absolute", "rotary"])
def test_end_of_training_accuracy_matches_per_sample(workload, encoding):
    """Full train() runs of both paths agree at a fixed seed.

    Both trainers derive identical per-episode action RNGs from the master
    stream, so the sampled trajectories — and therefore every update and the
    final accuracy — coincide (losses within the 1e-8 parity bound)."""
    dataset, tangles = workload
    histories = {}
    for batched in (False, True):
        config = small_config(encoding)
        model = KVEC(dataset.spec, dataset.num_classes, config)
        trainer = KVECTrainer(model, batched=batched)
        histories[batched] = trainer.train(tangles[:8], epochs=2)
    per_sample, batched = histories[False], histories[True]
    assert batched.series("accuracy") == per_sample.series("accuracy")
    np.testing.assert_allclose(
        batched.series("loss"), per_sample.series("loss"), atol=PARITY_ATOL
    )
    np.testing.assert_allclose(
        batched.series("earliness"), per_sample.series("earliness"), atol=PARITY_ATOL
    )


def test_config_flag_selects_batched_path(workload):
    dataset, _ = workload
    config = small_config("absolute", batched_training=True)
    trainer = KVECTrainer(KVEC(dataset.spec, dataset.num_classes, config))
    assert trainer.batched is True
    override = KVECTrainer(KVEC(dataset.spec, dataset.num_classes, config), batched=False)
    assert override.batched is False


@pytest.mark.parametrize("encoding", ["absolute", "rotary"])
def test_batched_training_smoke_above_chance(encoding):
    """Both encodings train to above-chance accuracy via the batched path.

    Mirrors the ``trained_tiny_kvec`` recipe (36 flows, concurrency 3, six
    epochs) which the per-sample suite already pins above 0.3 accuracy; by
    the parity contract the batched path reproduces that training run
    bit-for-bit.  Budgeted well under the 30 s contract on an idle machine."""
    start = time.monotonic()
    dataset = make_ustc_tfc2016(num_flows=36, seed=3)
    split = split_by_key(dataset.sequences, rng=np.random.default_rng(0))
    tangles = retangle_by_concurrency(
        split.train, dataset.spec, 3, rng=np.random.default_rng(1)
    )
    config = small_config(encoding, epochs=6)
    model = KVEC(dataset.spec, dataset.num_classes, config)
    trainer = KVECTrainer(model, batched=True)
    history = trainer.train(tangles)
    final = history.final()
    assert final.accuracy > 1.5 / dataset.num_classes, final
    assert final.accuracy > 0.3, final
    assert time.monotonic() - start < 30.0
