"""Tests for the core data containers (Item, sequences, tangled sequences)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.items import Item, KeyValueSequence, TangledSequence, ValueSpec


@pytest.fixture
def spec():
    return ValueSpec(field_names=("size", "direction"), cardinalities=(8, 2), session_field=1)


class TestValueSpec:
    def test_valid_spec(self, spec):
        assert spec.num_fields == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ValueSpec(("a",), (2, 3), 0)

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            ValueSpec((), (), 0)

    def test_session_field_out_of_range(self):
        with pytest.raises(ValueError):
            ValueSpec(("a",), (2,), 1)

    def test_non_positive_cardinality(self):
        with pytest.raises(ValueError):
            ValueSpec(("a",), (0,), 0)

    def test_validate_value_accepts_in_range(self, spec):
        spec.validate_value((7, 1))

    def test_validate_value_rejects_wrong_arity(self, spec):
        with pytest.raises(ValueError):
            spec.validate_value((1,))

    def test_validate_value_rejects_out_of_range(self, spec):
        with pytest.raises(ValueError):
            spec.validate_value((8, 0))


class TestKeyValueSequence:
    def test_items_sorted_by_time(self):
        sequence = KeyValueSequence(
            "k",
            [Item("k", (0, 0), 5.0), Item("k", (1, 0), 1.0)],
            label=0,
        )
        assert [item.time for item in sequence] == [1.0, 5.0]

    def test_wrong_key_rejected_on_construction(self):
        with pytest.raises(ValueError):
            KeyValueSequence("k", [Item("other", (0, 0), 0.0)])

    def test_append_enforces_key_and_order(self):
        sequence = KeyValueSequence("k", [Item("k", (0, 0), 1.0)], label=0)
        with pytest.raises(ValueError):
            sequence.append(Item("x", (0, 0), 2.0))
        with pytest.raises(ValueError):
            sequence.append(Item("k", (0, 0), 0.5))
        sequence.append(Item("k", (1, 1), 2.0))
        assert len(sequence) == 2

    def test_prefix_returns_copy(self):
        sequence = KeyValueSequence(
            "k", [Item("k", (i, 0), float(i)) for i in range(5)], label=3
        )
        prefix = sequence.prefix(2)
        assert len(prefix) == 2
        assert prefix.label == 3
        assert len(sequence) == 5

    def test_indexing_and_iteration(self):
        sequence = KeyValueSequence("k", [Item("k", (i, 0), float(i)) for i in range(3)])
        assert sequence[1].value == (1, 0)
        assert [item.field(0) for item in sequence] == [0, 1, 2]


class TestTangledSequence:
    def make_tangle(self, spec):
        items = [
            Item("a", (0, 0), 0.0),
            Item("b", (1, 1), 1.0),
            Item("a", (2, 0), 2.0),
            Item("b", (3, 1), 3.0),
            Item("a", (4, 1), 4.0),
        ]
        return TangledSequence(items, labels={"a": 0, "b": 1}, spec=spec)

    def test_positions_within_key_sequences(self, spec):
        tangle = self.make_tangle(spec)
        assert [tangle.position_in_key_sequence(i) for i in range(5)] == [0, 0, 1, 1, 2]

    def test_key_order_by_first_appearance(self, spec):
        tangle = self.make_tangle(spec)
        assert tangle.keys == ["a", "b"]
        assert tangle.key_index("b") == 1
        assert tangle.num_keys == 2

    def test_sequence_lengths_and_labels(self, spec):
        tangle = self.make_tangle(spec)
        assert tangle.sequence_length("a") == 3
        assert tangle.sequence_length("b") == 2
        assert tangle.label_of("b") == 1

    def test_missing_label_rejected(self, spec):
        with pytest.raises(ValueError):
            TangledSequence([Item("a", (0, 0), 0.0)], labels={}, spec=spec)

    def test_invalid_value_rejected(self, spec):
        with pytest.raises(ValueError):
            TangledSequence([Item("a", (9, 0), 0.0)], labels={"a": 0}, spec=spec)

    def test_items_sorted_chronologically(self, spec):
        items = [Item("a", (0, 0), 3.0), Item("a", (1, 0), 1.0)]
        tangle = TangledSequence(items, labels={"a": 0}, spec=spec)
        assert [item.time for item in tangle] == [1.0, 3.0]

    def test_per_key_sequences_partition_items(self, spec):
        tangle = self.make_tangle(spec)
        per_key = tangle.per_key_sequences()
        assert set(per_key) == {"a", "b"}
        assert sum(len(sequence) for sequence in per_key.values()) == len(tangle)
        assert per_key["a"].label == 0

    def test_prefix_restricts_items_and_labels(self, spec):
        tangle = self.make_tangle(spec)
        prefix = tangle.prefix(1)
        assert len(prefix) == 1
        assert prefix.keys == ["a"]

    def test_validate_passes_on_well_formed(self, spec):
        self.make_tangle(spec).validate()

    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_positions_are_contiguous_per_key(self, num_items):
        spec = ValueSpec(("v",), (4,), 0)
        rng = np.random.default_rng(num_items)
        items = [
            Item(f"k{rng.integers(0, 3)}", (int(rng.integers(0, 4)),), float(i))
            for i in range(num_items)
        ]
        labels = {f"k{j}": 0 for j in range(3)}
        labels = {key: labels.get(key, 0) for key in {item.key for item in items}}
        tangle = TangledSequence(items, labels=labels, spec=spec)
        seen = {}
        for index in range(len(tangle)):
            key = tangle[index].key
            expected = seen.get(key, 0)
            assert tangle.position_in_key_sequence(index) == expected
            seen[key] = expected + 1
