"""Shared machinery for the prefix-based SRN baselines (SRN-Fixed, SRN-Confidence).

Both baselines train the same model — an SRN encoder plus a linear classifier
supervised at every prefix length of every training sequence — and differ
only in the *halting rule* applied at prediction time:

* SRN-Fixed halts after a fixed number of observed items ``τ``;
* SRN-Confidence halts once the classifier's maximum softmax probability
  exceeds a confidence threshold ``µ``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.common import EarlyClassifier, tangles_to_sequences
from repro.baselines.encoders import SRNEncoder
from repro.core.classifier import SequenceClassifier
from repro.core.model import PredictionRecord
from repro.data.items import KeyValueSequence, TangledSequence, ValueSpec
from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor, no_grad


@dataclass
class PrefixSRNConfig:
    """Hyperparameters of the prefix-supervised SRN baselines."""

    d_model: int = 32
    num_blocks: int = 2
    num_heads: int = 1
    dropout: float = 0.0
    learning_rate: float = 1e-3
    epochs: int = 10
    batch_size: int = 16
    grad_clip: float = 5.0
    #: supervise at most this many prefix positions per sequence (uniformly
    #: spread over the sequence), keeping CPU training affordable.
    max_supervised_prefixes: int = 16
    seed: int = 0


class PrefixSRNClassifier(EarlyClassifier, Module):
    """SRN encoder + classifier trained to classify every prefix."""

    name = "SRN-prefix"

    def __init__(
        self,
        spec: ValueSpec,
        num_classes: int,
        config: Optional[PrefixSRNConfig] = None,
    ) -> None:
        Module.__init__(self)
        self.config = config or PrefixSRNConfig()
        self.num_classes = num_classes
        rng = np.random.default_rng(self.config.seed)
        self.encoder = SRNEncoder(
            spec,
            d_model=self.config.d_model,
            num_blocks=self.config.num_blocks,
            num_heads=self.config.num_heads,
            dropout=self.config.dropout,
            rng=rng,
        )
        self.classifier = SequenceClassifier(self.config.d_model, num_classes, rng=rng)

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def fit(self, train_tangles: Sequence[TangledSequence], verbose: bool = False) -> "PrefixSRNClassifier":
        sequences = tangles_to_sequences(train_tangles)
        if not sequences:
            raise ValueError("no training sequences")
        optimizer = Adam(self.parameters(), lr=self.config.learning_rate)
        shuffle_rng = np.random.default_rng(self.config.seed + 5)

        self.train()
        for epoch in range(1, self.config.epochs + 1):
            order = list(range(len(sequences)))
            shuffle_rng.shuffle(order)
            epoch_loss = 0.0
            for start in range(0, len(order), self.config.batch_size):
                batch = [sequences[i] for i in order[start : start + self.config.batch_size]]
                optimizer.zero_grad()
                for sequence in batch:
                    loss = self._prefix_loss(sequence)
                    (loss * (1.0 / len(batch))).backward()
                    epoch_loss += float(loss.data)
                if self.config.grad_clip > 0:
                    clip_grad_norm(self.parameters(), self.config.grad_clip)
                optimizer.step()
            if verbose:
                print(f"[{self.name}] epoch {epoch:3d}  loss={epoch_loss / len(sequences):8.3f}")
        return self

    def _prefix_loss(self, sequence: KeyValueSequence) -> Tensor:
        """Average cross entropy over a spread of supervised prefix positions."""
        states = self.encoder(sequence)
        length = states.shape[0]
        positions = self._supervised_positions(length)
        selected = states[positions]
        logits = self.classifier.projection(selected)
        labels = [sequence.label] * len(positions)
        return F.cross_entropy(logits, labels, reduction="mean")

    def _supervised_positions(self, length: int) -> List[int]:
        limit = self.config.max_supervised_prefixes
        if length <= limit:
            return list(range(length))
        positions = np.linspace(0, length - 1, limit).round().astype(int)
        return sorted(set(int(p) for p in positions))

    # ------------------------------------------------------------------ #
    # prediction helpers shared by the halting rules
    # ------------------------------------------------------------------ #
    def prefix_probabilities(self, sequence: KeyValueSequence) -> np.ndarray:
        """Class probabilities after each observed item, shape ``(T, C)``."""
        with no_grad():
            states = self.encoder(sequence)
            logits = self.classifier.projection(states)
            return F.softmax(logits, axis=-1).data

    def predict_tangle(self, tangle: TangledSequence) -> List[PredictionRecord]:
        records: List[PredictionRecord] = []
        was_training = self.training
        self.eval()
        try:
            for key, sequence in tangle.per_key_sequences().items():
                if not len(sequence):
                    continue
                records.append(self._predict_sequence(key, sequence, tangle.label_of(key)))
        finally:
            self.train(was_training)
        return records

    def _predict_sequence(self, key, sequence: KeyValueSequence, label: int) -> PredictionRecord:
        raise NotImplementedError("use SRNFixed or SRNConfidence")
