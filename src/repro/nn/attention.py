"""Masked (multi-head) self-attention used by KVRL and the SRN baselines.

The paper's KVRL module modifies standard self-attention by adding a dynamic
mask matrix ``M`` (values in ``{0, -inf}``) to the attention scores before the
softmax, so that an item can only attend to earlier items it is correlated
with through the key correlation or value correlation.  This module provides
that additive-mask attention plus a convenience causal mask.

Eviction-stable relative encodings
----------------------------------
With ``rotary=True`` the module additionally supports the serving-oriented
relative scheme (``KVECConfig.encoding="rotary"``): queries and keys are
phase-rotated by each item's *global arrival index* (rotary position
embedding — logits then depend only on arrival-index differences), and a
learned per-head bias indexed by the relative position *within the same key
sequence* is added to the scores (zero for cross-key pairs).  Both signals
are invariant under dropping the oldest items, so a streaming K/V cache of
rotated keys stays valid across window evictions.  Per-row coordinates are
carried by :class:`RelativeCoords`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Dropout, Embedding, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor

#: Value used for masked-out attention logits.  A large negative finite number
#: is used instead of ``-inf`` so that fully-masked rows do not produce NaNs.
MASK_VALUE = -1e9

#: Wavelength base of the rotary phase spectrum (the standard RoPE base).
ROTARY_BASE = 10000.0


@dataclass(frozen=True)
class RelativeCoords:
    """Per-row coordinates consumed by rotary/relative attention.

    Attributes
    ----------
    positions:
        Global arrival index of every row (float array of shape ``(T,)``).
        Only *differences* of these indices affect the attention logits, so
        any consistent origin works — window-local ``arange(T)`` and true
        global stream indices produce identical scores.
    key_ranks:
        0-based rank of every row within its own key sequence (shape
        ``(T,)``).  Again only same-key differences matter.
    key_codes:
        Integer code identifying each row's key (shape ``(T,)``); only
        equality is used, to restrict the relative bias to same-key pairs.
    """

    positions: np.ndarray
    key_ranks: np.ndarray
    key_codes: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.positions) == len(self.key_ranks) == len(self.key_codes)):
            raise ValueError("RelativeCoords arrays must have equal length")


def rotary_frequencies(d_head: int, base: float = ROTARY_BASE) -> np.ndarray:
    """Per-pair angular frequencies for a ``d_head``-dimensional rotation.

    Dimensions are rotated in interleaved pairs ``(0,1), (2,3), ...``; an odd
    trailing dimension is left unrotated.
    """
    half = d_head // 2
    if half == 0:
        return np.zeros(0, dtype=np.float64)
    return base ** (-np.arange(half, dtype=np.float64) * 2.0 / d_head)


def rotary_phases(positions: np.ndarray, d_head: int, base: float = ROTARY_BASE) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(cos, sin)`` arrays of shape ``(T, d_head)`` for the positions.

    The trailing dimension of an odd ``d_head`` gets ``cos=1, sin=0`` so it
    passes through the rotation unchanged.
    """
    positions = np.atleast_1d(np.asarray(positions, dtype=np.float64))
    half = d_head // 2
    cos = np.ones((positions.shape[0], d_head), dtype=np.float64)
    sin = np.zeros((positions.shape[0], d_head), dtype=np.float64)
    if half:
        angles = np.outer(positions, rotary_frequencies(d_head, base=base))
        cos[:, : 2 * half] = np.repeat(np.cos(angles), 2, axis=1)
        sin[:, : 2 * half] = np.repeat(np.sin(angles), 2, axis=1)
    return cos, sin


def rotate_half_matrix(d_head: int) -> np.ndarray:
    """Constant matrix ``R`` with ``x @ R == rotate_half(x)``.

    ``rotate_half`` maps interleaved pairs ``(x1, x2)`` to ``(-x2, x1)``; as a
    matmul it also works on autograd tensors, giving the rotary rotation
    ``rot(x) = x * cos + (x @ R) * sin`` on both the graph and no-grad paths.
    """
    matrix = np.zeros((d_head, d_head), dtype=np.float64)
    for pair in range(d_head // 2):
        matrix[2 * pair + 1, 2 * pair] = -1.0
        matrix[2 * pair, 2 * pair + 1] = 1.0
    return matrix


def _rotate_half_array(x: np.ndarray) -> np.ndarray:
    """No-grad ``rotate_half``: pairs ``(x1, x2) -> (-x2, x1)``, odd tail zeroed."""
    out = np.zeros_like(x)
    even = (x.shape[-1] // 2) * 2
    out[..., 0:even:2] = -x[..., 1:even:2]
    out[..., 1:even:2] = x[..., 0:even:2]
    return out


def causal_mask(length: int) -> np.ndarray:
    """Return a (length, length) additive mask allowing attention to ``j <= i``."""
    mask = np.full((length, length), MASK_VALUE, dtype=np.float64)
    mask[np.tril_indices(length)] = 0.0
    return mask


def scaled_dot_product_attention(
    query: Tensor,
    key: Tensor,
    value: Tensor,
    mask: Optional[np.ndarray] = None,
    bias: Optional[Tensor] = None,
) -> Tuple[Tensor, Tensor]:
    """Compute ``softmax(Q K^T / sqrt(d) + M + B) V``.

    Parameters
    ----------
    query, key, value:
        Tensors of shape ``(..., T, d)``.
    mask:
        Optional additive mask broadcastable to ``(..., T, T)`` whose entries
        are ``0`` (visible) or a large negative value (invisible).
    bias:
        Optional additive (learned) score bias broadcastable to
        ``(..., T, T)``; unlike ``mask`` it participates in the graph.

    Returns
    -------
    (output, attention_weights)
        ``output`` has shape ``(..., T, d)`` and ``attention_weights`` has
        shape ``(..., T, T)``.
    """
    d_k = query.shape[-1]
    scores = query.matmul(key.swapaxes(-1, -2)) * (1.0 / math.sqrt(d_k))
    if bias is not None:
        scores = scores + bias
    if mask is not None:
        scores = scores + Tensor(np.asarray(mask, dtype=np.float64))
    weights = F.softmax(scores, axis=-1)
    return weights.matmul(value), weights


class MultiHeadAttention(Module):
    """Multi-head attention with an additive mask.

    The KVEC paper describes a single-head formulation (``Q = Wq E0`` etc.);
    we implement the standard multi-head generalisation and use ``num_heads=1``
    where the paper's exact formulation is required.
    """

    def __init__(
        self,
        d_model: int,
        num_heads: int = 1,
        dropout: float = 0.0,
        rotary: bool = False,
        max_relative_positions: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} must be divisible by num_heads={num_heads}")
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.q_proj = Linear(d_model, d_model, rng=rng)
        self.k_proj = Linear(d_model, d_model, rng=rng)
        self.v_proj = Linear(d_model, d_model, rng=rng)
        self.out_proj = Linear(d_model, d_model, rng=rng)
        self.dropout = Dropout(dropout, rng=rng) if dropout > 0 else None
        self.rotary = bool(rotary)
        self.max_relative_positions = int(max_relative_positions)
        if self.rotary:
            self._rotate_half = rotate_half_matrix(self.d_head)
            #: Learned per-head additive score bias, indexed by the clipped
            #: relative position within the key sequence (same-key pairs only).
            self.rel_bias = (
                Embedding(self.max_relative_positions, num_heads, rng=rng)
                if self.max_relative_positions > 0
                else None
            )
        else:
            self._rotate_half = None
            self.rel_bias = None
        #: Attention weights of the most recent forward pass (numpy array of
        #: shape ``(num_heads, T, T)``); used by the attention-score analysis
        #: reproducing Fig. 10 of the paper.
        self.last_attention: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # relative-encoding helpers
    # ------------------------------------------------------------------ #
    def _relative_bias_inputs(self, coords: RelativeCoords) -> Tuple[np.ndarray, np.ndarray]:
        """Clipped same-key rank-difference matrix and same-key indicator."""
        ranks = np.asarray(coords.key_ranks, dtype=np.int64)
        delta = np.clip(ranks[:, None] - ranks[None, :], 0, self.max_relative_positions - 1)
        codes = np.asarray(coords.key_codes)
        same = (codes[:, None] == codes[None, :]).astype(np.float64)
        return delta, same

    def relative_bias_row(self, delta_row: np.ndarray, same_row: np.ndarray) -> Optional[np.ndarray]:
        """No-grad ``(num_heads, T)`` bias row for one streaming query.

        ``delta_row`` holds the query's key-rank minus each cached row's rank
        (already clipped to the table range); ``same_row`` is 1.0 where the
        cached row shares the query's key, 0.0 otherwise.
        """
        if self.rel_bias is None:
            return None
        return (self.rel_bias.weight.data[delta_row] * same_row[:, None]).T

    def relative_bias_rows(
        self, delta_rows: np.ndarray, same_rows: np.ndarray
    ) -> Optional[np.ndarray]:
        """Batched :meth:`relative_bias_row`: ``B`` streams, one table gather.

        ``delta_rows`` / ``same_rows`` are ``(B, T_max)`` padded arrays (pad
        slots may hold any in-range delta — their ``same`` entry is 0, so
        they contribute a zero bias).  Returns ``(B, num_heads, T_max)``.
        """
        if self.rel_bias is None:
            return None
        return self.rel_bias.weight.data[delta_rows].transpose(0, 2, 1) * (
            same_rows[:, None, :]
        )

    def clip_rank_delta(self, delta: np.ndarray) -> np.ndarray:
        """Clip raw rank differences into the relative-bias table range."""
        return np.clip(delta, 0, self.max_relative_positions - 1)

    def forward(
        self,
        x: Tensor,
        mask: Optional[np.ndarray] = None,
        store_attention: bool = False,
        coords: Optional[RelativeCoords] = None,
    ) -> Tensor:
        """Self-attention over ``x`` of shape ``(T, d_model)``.

        ``mask`` is an additive ``(T, T)`` matrix as produced by
        :func:`causal_mask` or the KVEC dynamic correlation mask.
        ``store_attention`` keeps a copy of the ``(num_heads, T, T)`` weight
        matrix in :attr:`last_attention`; it is off by default because the
        copy is pure overhead on the hot path.  ``coords`` (rotary mode only)
        supplies the per-row arrival/key coordinates for the rotary phase
        rotation and relative within-key bias.
        """
        if x.ndim != 2:
            raise ValueError(f"expected (T, d_model) input, got shape {x.shape}")
        length = x.shape[0]

        query = self._split_heads(self.q_proj(x), length)
        key = self._split_heads(self.k_proj(x), length)
        value = self._split_heads(self.v_proj(x), length)

        bias = None
        if self.rotary and coords is not None:
            cos, sin = rotary_phases(coords.positions, self.d_head)
            rotate = Tensor(self._rotate_half)
            query = query * Tensor(cos) + query.matmul(rotate) * Tensor(sin)
            key = key * Tensor(cos) + key.matmul(rotate) * Tensor(sin)
            if self.rel_bias is not None:
                delta, same = self._relative_bias_inputs(coords)
                # (T, T, H) gather -> (H, T, T), zeroed on cross-key pairs.
                bias = self.rel_bias(delta).transpose(2, 0, 1) * Tensor(same[None, :, :])

        head_mask = None
        if mask is not None:
            head_mask = np.broadcast_to(
                np.asarray(mask, dtype=np.float64), (self.num_heads, length, length)
            )

        attended, weights = scaled_dot_product_attention(
            query, key, value, mask=head_mask, bias=bias
        )
        self.last_attention = weights.data.copy() if store_attention else None

        merged = attended.swapaxes(0, 1).reshape(length, self.d_model)
        out = self.out_proj(merged)
        if self.dropout is not None:
            out = self.dropout(out)
        return out

    def _split_heads(self, projected: Tensor, length: int) -> Tensor:
        # (T, d_model) -> (num_heads, T, d_head)
        return projected.reshape(length, self.num_heads, self.d_head).swapaxes(0, 1)

    # ------------------------------------------------------------------ #
    # no-grad fast path
    # ------------------------------------------------------------------ #
    def _split_heads_array(self, projected: np.ndarray) -> np.ndarray:
        # (T, d_model) -> (num_heads, T, d_head)
        length = projected.shape[0]
        return np.ascontiguousarray(
            projected.reshape(length, self.num_heads, self.d_head).swapaxes(0, 1)
        )

    def forward_inference(
        self,
        x: np.ndarray,
        mask: Optional[np.ndarray] = None,
        store_attention: bool = False,
        return_kv: bool = False,
        coords: Optional[RelativeCoords] = None,
    ):
        """Raw-array self-attention (evaluation mode, no autograd graph).

        When ``return_kv`` is set, also returns the per-head projected key and
        value tensors of shape ``(num_heads, T, d_head)`` so a streaming
        caller can seed its KV cache from a batched encode.  In rotary mode
        the returned keys are already phase-rotated by their own position —
        exactly the representation the streaming cache stores, stable under
        later evictions.
        """
        key = self._split_heads_array(self.k_proj.forward_inference(x))
        value = self._split_heads_array(self.v_proj.forward_inference(x))
        query = self._split_heads_array(self.q_proj.forward_inference(x))

        bias = None
        if self.rotary and coords is not None:
            cos, sin = rotary_phases(coords.positions, self.d_head)
            query = query * cos + _rotate_half_array(query) * sin
            key = key * cos + _rotate_half_array(key) * sin
            if self.rel_bias is not None:
                delta, same = self._relative_bias_inputs(coords)
                bias = self.rel_bias.weight.data[delta].transpose(2, 0, 1) * same[None, :, :]

        scores = query @ key.swapaxes(-1, -2) * (1.0 / math.sqrt(self.d_head))
        if bias is not None:
            scores = scores + bias
        if mask is not None:
            scores = scores + mask
        weights = F.softmax_array(scores)
        self.last_attention = weights.copy() if store_attention else None

        attended = weights @ value  # (num_heads, T, d_head)
        merged = attended.swapaxes(0, 1).reshape(x.shape[0], self.d_model)
        out = self.out_proj.forward_inference(merged)
        if return_kv:
            return out, key, value
        return out

    def project_qkv_row(self, x_row: np.ndarray, position: Optional[float] = None):
        """Project one input row to per-head ``(num_heads, d_head)`` q/k/v rows.

        In rotary mode pass the row's global arrival index as ``position``:
        the query and key rows are phase-rotated by it, which makes the
        returned key row safe to cache across window evictions.
        """
        query = self.q_proj.forward_inference(x_row).reshape(self.num_heads, self.d_head)
        key = self.k_proj.forward_inference(x_row).reshape(self.num_heads, self.d_head)
        value = self.v_proj.forward_inference(x_row).reshape(self.num_heads, self.d_head)
        if self.rotary and position is not None:
            cos, sin = rotary_phases(np.asarray([position]), self.d_head)
            query = query * cos + _rotate_half_array(query) * sin
            key = key * cos + _rotate_half_array(key) * sin
        return query, key, value

    def project_qkv_rows(
        self,
        x_rows: np.ndarray,
        positions: Optional[np.ndarray] = None,
        phases: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ):
        """Batched :meth:`project_qkv_row`: ``(B, d_model)`` inputs at once.

        Each of the ``B`` rows belongs to a *different* stream; projecting
        them together turns ``3B`` GEMVs into three ``(B, d_model)`` GEMMs.
        Returns per-head ``(B, num_heads, d_head)`` q/k/v arrays.  In rotary
        mode ``positions`` carries each row's own global arrival index; the
        returned key rows are phase-rotated and cache-safe exactly like the
        single-row path's.  ``phases`` optionally passes precomputed
        ``rotary_phases(positions, d_head)`` — positions are identical across
        a block stack, so callers encoding through several blocks compute the
        phases once.
        """
        batch = x_rows.shape[0]
        query = self.q_proj.forward_inference(x_rows).reshape(batch, self.num_heads, self.d_head)
        key = self.k_proj.forward_inference(x_rows).reshape(batch, self.num_heads, self.d_head)
        value = self.v_proj.forward_inference(x_rows).reshape(batch, self.num_heads, self.d_head)
        if self.rotary and (positions is not None or phases is not None):
            cos, sin = phases if phases is not None else rotary_phases(positions, self.d_head)
            cos = cos[:, None, :]  # broadcast over heads
            sin = sin[:, None, :]
            query = query * cos + _rotate_half_array(query) * sin
            key = key * cos + _rotate_half_array(key) * sin
        return query, key, value

    # ------------------------------------------------------------------ #
    # cross-sample batched training twin (autograd)
    # ------------------------------------------------------------------ #
    def forward_batch(
        self,
        x: Tensor,
        mask: Optional[np.ndarray] = None,
        phases: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        delta: Optional[np.ndarray] = None,
        same: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Autograd twin of :meth:`forward` over a stacked minibatch.

        ``x`` holds ``B`` independent sequences padded to a common length as
        one ``(B, T, d_model)`` tensor; ``mask`` is the per-sample additive
        ``(B, T, T)`` mask (padding rows must keep at least the diagonal
        visible so their softmax stays finite — their outputs are never
        selected and contribute no gradient).  In rotary mode ``phases`` is
        the shared ``rotary_phases`` ``(cos, sin)`` pair (positions are the
        same ``arange(T)`` for every sample) and ``delta`` / ``same`` the
        per-sample relative-bias coordinate matrices of shape ``(B, T, T)``.

        Parity contract: sample ``b``'s rows match :meth:`forward` on that
        sample alone up to BLAS summation order (1e-12-scale), which is what
        bounds batched-vs-per-sample loss and gradient drift at the
        documented 1e-8.  Projections, scores and the attention product each
        run as a single batched GEMM instead of ``B`` per-sample calls.
        """
        batch, length = x.shape[0], x.shape[1]
        query = self._split_heads_batch(self.q_proj(x), batch, length)
        key = self._split_heads_batch(self.k_proj(x), batch, length)
        value = self._split_heads_batch(self.v_proj(x), batch, length)

        bias = None
        if self.rotary and phases is not None:
            cos, sin = phases  # (T, d_head), broadcast over batch and heads
            rotate = Tensor(self._rotate_half)
            query = query * Tensor(cos) + query.matmul(rotate) * Tensor(sin)
            key = key * Tensor(cos) + key.matmul(rotate) * Tensor(sin)
            if self.rel_bias is not None and delta is not None:
                # (B, T, T, H) gather -> (B, H, T, T), zeroed cross-key.
                bias = self.rel_bias(delta).transpose(0, 3, 1, 2) * Tensor(
                    same[:, None, :, :]
                )

        head_mask = None
        if mask is not None:
            head_mask = np.asarray(mask, dtype=np.float64)[:, None, :, :]

        attended, _ = scaled_dot_product_attention(
            query, key, value, mask=head_mask, bias=bias
        )
        self.last_attention = None  # batched passes never keep maps

        merged = attended.transpose(0, 2, 1, 3).reshape(batch, length, self.d_model)
        out = self.out_proj(merged)
        if self.dropout is not None:
            out = self.dropout(out)
        return out

    def _split_heads_batch(self, projected: Tensor, batch: int, length: int) -> Tensor:
        # (B, T, d_model) -> (B, num_heads, T, d_head)
        return projected.reshape(batch, length, self.num_heads, self.d_head).transpose(
            0, 2, 1, 3
        )

    def attend_rows(
        self,
        query_rows: np.ndarray,
        key_pad: np.ndarray,
        value_pad: np.ndarray,
        mask_rows: Optional[np.ndarray] = None,
        bias_rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batched :meth:`attend_row`: ``B`` independent streams in one call.

        ``query_rows`` has shape ``(B, num_heads, d_head)``; ``key_pad`` /
        ``value_pad`` hold each stream's visible cache rows padded to a common
        length ``(B, num_heads, T_max, d_head)``.  ``mask_rows`` is the
        ``(B, T_max)`` additive mask whose padding slots carry
        :data:`MASK_VALUE` — padded scores underflow to exactly zero weight
        under the softmax, so padding never changes the numerics of a row.
        ``bias_rows`` is an optional ``(B, num_heads, T_max)`` additive score
        bias.  Returns the ``(B, d_model)`` attended outputs.
        """
        # matmul (batched BLAS) beats einsum ~2x at these shapes.
        scores = (key_pad @ query_rows[..., None])[..., 0] * (
            1.0 / math.sqrt(self.d_head)
        )
        if bias_rows is not None:
            scores = scores + bias_rows
        if mask_rows is not None:
            scores = scores + mask_rows[:, None, :]
        weights = F.softmax_array(scores)
        self.last_attention = None  # row passes never keep maps; drop stale ones
        context = (weights[..., None, :] @ value_pad)[..., 0, :]
        merged = context.reshape(query_rows.shape[0], self.d_model)
        return self.out_proj.forward_inference(merged)

    def attend_row(
        self,
        query_row: np.ndarray,
        key_cache: np.ndarray,
        value_cache: np.ndarray,
        mask_row: Optional[np.ndarray] = None,
        bias_row: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Attention output for one new row against cached K/V.

        ``query_row`` has shape ``(num_heads, d_head)``; the caches hold the
        projected rows of every item visible to the new one, shaped
        ``(num_heads, T, d_head)`` (the new row's own k/v included).
        ``bias_row`` is an optional additive ``(num_heads, T)`` score bias
        (see :meth:`relative_bias_row`).  Returns the ``(d_model,)`` attended
        output after the output projection.
        """
        scores = np.einsum("hd,htd->ht", query_row, key_cache) * (1.0 / math.sqrt(self.d_head))
        if bias_row is not None:
            scores = scores + bias_row
        if mask_row is not None:
            scores = scores + mask_row
        weights = F.softmax_array(scores)
        self.last_attention = None  # row passes never keep maps; drop stale ones
        context = np.einsum("ht,htd->hd", weights, value_cache)
        return self.out_proj.forward_inference(context.reshape(self.d_model))
