"""``python -m repro.serve`` — stand up the HTTP serving tier from the CLI.

Builds a seeded demo KVEC model (same construction as the serving tests:
deterministic weights from ``--seed``) over the canonical two-field value
spec, wraps it in a :class:`~repro.serving.cluster.ServingCluster` →
:class:`~repro.serving.aio.AsyncServingGateway` →
:class:`~repro.serving.net.server.ServingHTTPServer` stack and serves
until interrupted:

.. code-block:: console

   $ python -m repro.serve --port 8035 --num-shards 4 --executor thread
   serving on http://127.0.0.1:8035 (4 shards, thread executor)
   $ curl -X POST localhost:8035/v1/streams/alpha/events \\
         -d '{"time": 0.1, "key": "k1", "value": [3, 1]}'

``--selftest N`` instead drives a loopback
:class:`~repro.serving.net.client.ServingHTTPClient` through N synthetic
events, prints the summary and exits — the smoke path CI and the test
suite use to cover this entrypoint end to end.
"""

from __future__ import annotations

import argparse
import asyncio
from typing import Optional, Sequence

import numpy as np

from repro.core.config import KVECConfig
from repro.core.model import KVEC
from repro.data.items import ValueSpec
from repro.serving import ClusterConfig, EngineConfig
from repro.serving.net import ServingHTTPClient, ServingHTTPServer

__all__ = ["build_parser", "main"]

#: The demo value spec (matches the serving test fixtures).
SPEC = ValueSpec(
    field_names=("size", "direction"), cardinalities=(8, 2), session_field=1
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="HTTP serving tier over a demo early-classification model",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8035, help="0 binds an ephemeral port"
    )
    parser.add_argument("--num-shards", type=int, default=2)
    parser.add_argument(
        "--executor", choices=("serial", "thread", "process"), default="serial"
    )
    parser.add_argument("--batch-size", type=int, default=4)
    parser.add_argument("--window", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--max-buffered",
        type=int,
        default=256,
        help="decision-stream buffer bound (0 = unbounded)",
    )
    parser.add_argument(
        "--selftest",
        type=int,
        default=None,
        metavar="N",
        help="submit N synthetic loopback events, print a summary, exit",
    )
    return parser


def _build_stack(args) -> ServingHTTPServer:
    model = KVEC(
        SPEC,
        num_classes=3,
        config=KVECConfig(
            d_model=12,
            num_blocks=2,
            num_heads=2,
            ffn_hidden=20,
            d_state=16,
            dropout=0.0,
            encoding="rotary",
            seed=args.seed,
        ),
    )
    config = ClusterConfig(
        num_shards=args.num_shards,
        batch_size=args.batch_size,
        executor=args.executor,
        engine=EngineConfig(
            window_items=args.window, halt_threshold=0.5, reencode_every=2
        ),
    )
    return ServingHTTPServer(
        model=model,
        spec=SPEC,
        config=config,
        host=args.host,
        port=args.port,
        max_buffered=args.max_buffered,
    )


async def _selftest(server: ServingHTTPServer, num_events: int, seed: int) -> int:
    """Loopback smoke: submit synthetic traffic, stream decisions, flush."""
    rng = np.random.default_rng(seed)
    streams = [f"stream-{i}" for i in range(4)]
    async with server:
        client = ServingHTTPClient(server.host, server.port)
        async with client:
            statuses = {}
            for step in range(num_events):
                stream_id = streams[int(rng.integers(len(streams)))]
                result = await client.submit(
                    stream_id,
                    key=f"k{int(rng.integers(4))}",
                    value=[int(rng.integers(8)), int(rng.integers(2))],
                    time=float(step),
                )
                statuses[result.status] = statuses.get(result.status, 0) + 1
            flushed = await client.flush()
            stats = await client.stats()
        print(
            f"selftest: {num_events} events over {len(streams)} streams -> "
            f"statuses {statuses}, {len(flushed)} flushed decisions, "
            f"{stats['num_decided']} keys decided"
        )
    return 0


async def _serve_forever(server: ServingHTTPServer, executor: str) -> int:
    async with server:
        print(
            f"serving on http://{server.host}:{server.port} "
            f"({server.gateway.cluster.config.num_shards} shards, "
            f"{executor} executor)",
            flush=True,
        )
        try:
            await asyncio.Event().wait()
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    server = _build_stack(args)
    try:
        if args.selftest is not None:
            return asyncio.run(_selftest(server, args.selftest, args.seed))
        return asyncio.run(_serve_forever(server, args.executor))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
