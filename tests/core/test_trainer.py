"""Tests for the KVEC trainer (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.ablations import ABLATION_VARIANTS, make_kvec_variant
from repro.core.config import KVECConfig
from repro.core.model import KVEC
from repro.core.trainer import KVECTrainer, TrainingHistory


class TestEpisodeLosses:
    def test_loss_terms_are_finite(self, tiny_splits, tiny_kvec_config):
        model = KVEC(tiny_splits["spec"], tiny_splits["num_classes"], tiny_kvec_config)
        trainer = KVECTrainer(model)
        total, baseline_loss, result, parts = trainer.episode_losses(tiny_splits["train"][0])
        assert np.isfinite(total.data)
        assert np.isfinite(baseline_loss.data)
        assert all(np.isfinite(value) for value in parts.values())
        assert result.num_keys >= 1

    def test_backward_produces_gradients_for_model_and_baseline(self, tiny_splits, tiny_kvec_config):
        model = KVEC(tiny_splits["spec"], tiny_splits["num_classes"], tiny_kvec_config)
        trainer = KVECTrainer(model)
        total, baseline_loss, _, _ = trainer.episode_losses(tiny_splits["train"][0])
        total.backward()
        baseline_loss.backward()
        assert any(p.grad is not None for p in model.trainable_parameters())
        assert any(p.grad is not None for p in model.baseline.parameters())

    def test_baseline_loss_does_not_touch_encoder(self, tiny_splits, tiny_kvec_config):
        model = KVEC(tiny_splits["spec"], tiny_splits["num_classes"], tiny_kvec_config)
        trainer = KVECTrainer(model)
        _, baseline_loss, _, _ = trainer.episode_losses(tiny_splits["train"][0])
        model.zero_grad()
        baseline_loss.backward()
        encoder_grads = [p.grad for p in model.encoder.parameters()]
        assert all(grad is None for grad in encoder_grads)
        assert any(p.grad is not None for p in model.baseline.parameters())


class TestTraining:
    def test_history_length_matches_epochs(self, tiny_splits, tiny_kvec_config):
        model = KVEC(tiny_splits["spec"], tiny_splits["num_classes"], tiny_kvec_config)
        history = KVECTrainer(model).train(tiny_splits["train"], epochs=2)
        assert isinstance(history, TrainingHistory)
        assert len(history) == 2
        assert history.final().epoch == 2

    def test_training_improves_accuracy(self, trained_tiny_kvec):
        history = trained_tiny_kvec["history"]
        accuracies = history.series("accuracy")
        assert accuracies[-1] > accuracies[0]
        assert accuracies[-1] > 0.3

    def test_trained_model_beats_chance_on_test(self, trained_tiny_kvec):
        model = trained_tiny_kvec["model"]
        splits = trained_tiny_kvec["splits"]
        records = [r for tangle in splits["test"] for r in model.predict_tangle(tangle)]
        accuracy = np.mean([record.correct for record in records])
        assert accuracy > 1.5 / splits["num_classes"]

    def test_empty_training_set_rejected(self, tiny_splits, tiny_kvec_config):
        model = KVEC(tiny_splits["spec"], tiny_splits["num_classes"], tiny_kvec_config)
        with pytest.raises(ValueError):
            KVECTrainer(model).train([])

    def test_epoch_stats_serializable(self, trained_tiny_kvec):
        stats = trained_tiny_kvec["history"].final().as_dict()
        assert {"loss", "accuracy", "earliness", "epoch"} <= set(stats)

    def test_larger_beta_encourages_earlier_halting(self, tiny_splits):
        """The time-penalty weight beta is the earliness knob of KVEC."""
        config_late = KVECConfig(
            d_model=16, num_blocks=1, num_heads=1, ffn_hidden=24, d_state=20,
            dropout=0.0, epochs=5, batch_size=4, learning_rate=3e-3, beta=0.0, seed=1,
        )
        config_early = config_late.with_overrides(beta=0.5)
        earliness = {}
        for name, config in (("late", config_late), ("early", config_early)):
            model = KVEC(tiny_splits["spec"], tiny_splits["num_classes"], config)
            KVECTrainer(model).train(tiny_splits["train"])
            records = [r for tangle in tiny_splits["test"] for r in model.predict_tangle(tangle)]
            earliness[name] = np.mean([record.earliness for record in records])
        assert earliness["early"] <= earliness["late"] + 0.05


class TestAblationFactory:
    def test_all_variants_constructible(self, tiny_splits, tiny_kvec_config):
        for variant in ABLATION_VARIANTS:
            model = make_kvec_variant(
                variant, tiny_splits["spec"], tiny_splits["num_classes"], tiny_kvec_config
            )
            assert isinstance(model, KVEC)

    def test_variant_flags_applied(self, tiny_splits, tiny_kvec_config):
        model = make_kvec_variant(
            "w/o Value Correlation", tiny_splits["spec"], tiny_splits["num_classes"], tiny_kvec_config
        )
        assert not model.config.use_value_correlation
        model = make_kvec_variant(
            "w/o Membership Embed.", tiny_splits["spec"], tiny_splits["num_classes"], tiny_kvec_config
        )
        assert not model.config.use_membership_embedding

    def test_unknown_variant_rejected(self, tiny_splits, tiny_kvec_config):
        with pytest.raises(KeyError):
            make_kvec_variant("w/o Everything", tiny_splits["spec"], 2, tiny_kvec_config)
