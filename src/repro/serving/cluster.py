"""Sharded multi-stream serving: shard workers and the cluster front-end.

This module scales the per-stream :class:`~repro.serving.engine.StreamSession`
to many concurrent streams:

* :class:`ShardWorker` owns a dictionary of sessions keyed by stream id plus
  a bounded FIFO arrival queue.  Draining happens in *rounds*: each round
  dequeues at most ``batch_size`` arrivals, at most one per stream (a
  session's next mask row depends on its previous append having completed),
  runs every session's bookkeeping phase, then encodes all still-pending
  rows in **one cross-stream batch** via
  :func:`repro.core.incremental.append_batch` — one ``(B, d_model)`` GEMM per
  projection/FFN and one batched attention einsum per block instead of ``B``
  separate O(W·d) GEMV chains — and finally lets each session take its
  halting decisions.  Streams are independent, so the batch is pure
  math-level restructuring: per-stream decisions are identical to feeding a
  dedicated single-stream engine (the cluster parity suite pins this for
  evictions, flush and snapshot/restore alike).

* :class:`ServingCluster` hash-routes stream ids to shards with the same
  process-independent CRC32 bucket the rotary membership embedding uses
  (:func:`repro.core.embeddings.stable_key_slot` — deterministic across runs
  and machines), applies admission control when a shard queue is full
  (``overflow``: synchronously *drain* a round to make room, *reject* with
  :class:`ShardOverloadError`, or *shed* the newest arrival), and exposes the
  deployment API: :meth:`ServingCluster.submit`, :meth:`~ServingCluster.drain`,
  :meth:`~ServingCluster.flush`, :meth:`~ServingCluster.expire`,
  :meth:`~ServingCluster.snapshot` and :meth:`~ServingCluster.restore`.

Execution backends (:mod:`repro.serving.parallel`): with
``ClusterConfig.executor="serial"`` every shard runs inline on the calling
thread (the reference behaviour).  With ``executor="thread"`` the cluster
owns a persistent worker pool in which **every shard is pinned to one
worker thread**: cluster-level :meth:`~ServingCluster.drain`,
:meth:`~ServingCluster.flush` and :meth:`~ServingCluster.expire` fan their
per-shard work out across the pool and run shards concurrently (numpy
releases the GIL inside the batched GEMMs), while per-shard results are
merged back in stable (shard index, round, intra-round) order — the emitted
decision sequence is identical to the serial backend's, which the parity
suite pins.  Submission-path rounds (``auto_drain`` triggers and ``"drain"``
overflow backpressure) are dispatched to the owning shard's pinned worker
and waited on, so session state never crosses threads even on the submit
path.  Drain-round width is either the fixed ``batch_size`` or, with
``batch_size="auto"``, chosen per shard by an
:class:`~repro.serving.parallel.AdaptiveBatchController` from the observed
backlog and per-round latency EWMA (hot shards batch wide, cold shards stay
at per-arrival latency).

With ``executor="process"`` each pinned worker slot additionally owns a
long-lived **worker process** hosting a process-resident *replica* of every
shard pinned to it (:class:`~repro.serving.parallel.ProcessExecutor`).  The
arrival queue, admission control, supervision, checkpoints, meters and sink
publication all stay caller-side — sinks cannot cross the process
boundary — while each drain round's session work (ingest, cross-stream
batched encode, halting decisions) executes in the shard's worker process:
the round's dequeued arrivals travel down the pipe, the emitted decisions
and telemetry travel back, and the caller merges reports, mirrors counters
and publishes exactly where the thread backend does.  Checkpoints fetch the
replica's sessions over the pipe (model weights are detached in transit and
re-attached to the caller's live weights), and recovery *reseeds* the
replica from the checkpoint — respawning the worker process first if it
died.  Worker death (injected ``kill`` faults are real SIGKILLs here,
external kills, hard crashes) therefore heals through the ordinary
supervisor path: the in-flight round fails with
:class:`~repro.serving.parallel.WorkerCrashedError`, its dequeued arrivals
are the lost set, and sibling shards resident in the dead process fail
their next round with :class:`~repro.serving.parallel.ReplicaLostError`
and reseed themselves the same way.  Fault specs are evaluated caller-side
(one seeded injector, same determinism as the other backends); replicas
never fire faults of their own.

Push-based delivery (:mod:`repro.serving.results`,
:mod:`repro.serving.sinks`): :meth:`ShardWorker.submit` and
:meth:`ServingCluster.submit` return a
:class:`~repro.serving.results.SubmitResult` that makes every admission
outcome explicit (``accepted`` / ``decided`` / ``rejected`` / ``shed`` plus
shard and queue-depth telemetry); the result still iterates like the legacy
decision list, and ``overflow="reject"`` still raises
:class:`ShardOverloadError` unless ``raise_on_reject=False``.  Subscribed
:class:`~repro.serving.sinks.DecisionSink` instances receive every emitted
decision as it is published: submission-path rounds publish on the shard's
pinned execution context (per-stream order is exact even with concurrent
submitters), while cluster-level ``drain`` / ``flush`` / ``expire`` journal
per-shard emissions and publish the merged result in the same stable (shard,
round, intra-round) order as the returned list — sink delivery is
backend-deterministic and, for a single-threaded caller, list-identical to
the pull API (the parity suite pins both).

Fault tolerance (:mod:`repro.serving.supervisor`,
:mod:`repro.serving.faults`): every shard runs under a
:class:`~repro.serving.supervisor.ShardSupervisor` — periodic checkpoints
(shard-granular deep copies sharing the model, plus an admission journal),
automatic crash recovery (an exception escaping a drain round restores the
last checkpoint and requeues every journaled arrival except the dead
round's), a circuit breaker whose open state degrades submissions
(``status="degraded"`` shed, or :class:`ShardDegradedError`) instead of
failing them, and progress-aware round deadlines that abandon a wedged
worker (thread backend) rather than hang ``drain()``.  Sink subscribers are
fault-isolated and quarantined after consecutive publish failures.
``stats()["health"]`` (or :meth:`ServingCluster.health`) reports all of it.
``ClusterConfig.faults`` accepts a seeded
:class:`~repro.serving.faults.FaultInjector` so every one of these paths is
deterministically testable.

Lifecycle: a cluster is born ``running``, :meth:`ServingCluster.shutdown`
moves it through ``draining`` (a final flush, with deliveries published)
into ``closed``; :meth:`ServingCluster.close` releases the worker pool and
closes directly.  Submissions require a running cluster; drains and flushes
work while draining; everything but :meth:`ServingCluster.stats` is rejected
once closed.

Snapshots are deep copies of every shard's sessions, queues and counters
that *share* the (immutable at serving time) model weights: taking one does
not stop the cluster, restoring one rewinds it bit-for-bit, and a snapshot
can be restored any number of times — the basis for failover and shard
migration experiments.  Adaptive-batch controller state is runtime tuning,
not serving state: a restore resets it (round widths never affect which
decisions are emitted, so replays stay exact).  Sink subscriptions, pending
deliveries and throughput meters are delivery-time constructs, not serving
state: a restore neither rescinds nor re-fires anything already published
(replaying events after a restore re-emits the replayed decisions to
subscribers, exactly as the returned-list API hands the caller the replayed
lists).
"""

from __future__ import annotations

import copy
import heapq
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import (
    Callable,
    Deque,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from repro.core.embeddings import stable_key_slot
from repro.core.incremental import append_batch
from repro.data.items import ValueSpec
from repro.data.stream import StreamEvent
from repro.serving.engine import Decision, EngineConfig, StreamSession
from repro.serving.faults import FaultInjector, ShardKilled
from repro.serving.monitoring import ShardMonitor, ThroughputMeter
from repro.serving.results import ConsumeSummary, SubmitResult
from repro.serving.sinks import DecisionSink, FanOutSink
from repro.serving.supervisor import ShardSupervisor, SupervisorConfig
from repro.serving.parallel import (
    AbandonedJobError,
    AdaptiveBatchConfig,
    AdaptiveBatchController,
    JobHandle,
    ProcessExecutor,
    ReplicaLostError,
    SerialExecutor,
    ShardExecutor,
    WorkerCrashedError,
    make_executor,
)
from repro.serving.transport import DEFAULT_RING_BYTES


class ShardOverloadError(RuntimeError):
    """Raised by ``overflow="reject"`` admission control when a shard is full."""


class ShardDegradedError(RuntimeError):
    """Raised on submit to a breaker-open shard under ``degraded="reject"``.

    The degraded-mode sibling of :class:`ShardOverloadError`: the shard is
    not full but *failing* — its circuit breaker is open after consecutive
    round failures — and the supervision config says degraded submissions
    should be rejected rather than shed.  ``raise_on_reject=False`` turns
    the raise into a ``status="degraded"`` result.
    """


@dataclass(frozen=True)
class StreamDecision:
    """One session decision, attributed to its stream and shard.

    Stream ids are the cluster's routing unit; two different streams may
    legitimately use the same item keys, so cluster-level consumers need the
    ``stream_id`` to disambiguate what a bare :class:`Decision` cannot.
    """

    stream_id: Hashable
    shard_id: int
    decision: Decision


@dataclass
class ClusterConfig:
    """Configuration of the sharded serving cluster.

    Attributes
    ----------
    num_shards:
        Number of shard workers; stream ids are hash-routed across them.
    batch_size:
        Maximum arrivals drained per round — the cap on the cross-stream
        encoding batch.  ``1`` degenerates to the serial per-arrival loop.
        The string ``"auto"`` enables per-shard adaptive sizing: each
        shard's :class:`~repro.serving.parallel.AdaptiveBatchController`
        widens rounds from observed backlog and narrows them under the
        ``adaptive`` latency budget.  Requires ``auto_drain=False`` (drain
        scheduling): synchronous auto-drain serves every arrival the moment
        the queue reaches the current width, so no backlog can ever form
        and the controller would be pinned at its width floor — per-arrival
        GEMV serving with none of the cross-stream batching.  Rejected at
        construction instead of degrading silently.
    max_queue:
        Bound of each shard's arrival queue; admission control engages when
        an arrival finds the queue at this depth.
    overflow:
        Admission policy for a full queue: ``"drain"`` synchronously drains
        one round to make room (backpressure by doing the work now),
        ``"reject"`` raises :class:`ShardOverloadError`, ``"shed"`` drops the
        newest arrival and counts it.
    batched:
        Use the cross-stream batched encoding when a round has two or more
        encodable arrivals.  Off means every session encodes serially —
        same decisions, batch-level BLAS throughput forfeited.
    auto_drain:
        Drain whenever a shard's queue reaches the current round width (the
        default synchronous serving mode).  When off, arrivals only queue
        and the caller schedules :meth:`ServingCluster.drain` explicitly —
        the pattern that lets the thread executor overlap shards.
    executor:
        Execution backend: ``"serial"`` runs every shard inline on the
        caller (the reference), ``"thread"`` pins each shard to a worker
        thread of a persistent pool and runs cluster-level drain / flush /
        expire rounds concurrently across shards, ``"process"`` adds one
        long-lived worker *process* per slot and runs each shard's round
        work in its pinned process against a checkpoint-seeded replica
        (GIL-free scaling; see the module docstring).
    num_workers:
        Worker-pool size for ``executor="thread"`` / ``"process"`` (capped
        at ``num_shards`` — an excess worker could never receive a pinned
        shard).  Default: one thread per shard, or one process per usable
        core (``min(available_cpus(), num_shards)``).  Ignored by the
        serial backend.
    transport:
        How bulk round payloads cross the process boundary
        (``executor="process"`` only; see :mod:`repro.serving.transport`).
        ``"shm"`` (default) packs entries/decisions into per-slot
        shared-memory rings and shrinks the pipe to a small control
        message; ``"pipe"`` pickles them over the pipe.  ``"shm"`` falls
        back to ``"pipe"`` automatically where shared memory is unusable,
        and per-payload when a round outgrows its ring — decisions are
        identical either way, only the copy cost differs.
    transport_ring_bytes:
        Per-direction ring capacity of the ``"shm"`` transport (default
        1 MiB per direction per executor slot).
    adaptive:
        Controller knobs used when ``batch_size="auto"``
        (:class:`~repro.serving.parallel.AdaptiveBatchConfig`).
    stats_window:
        Wall-clock span (seconds) of the sliding throughput window behind
        ``stats()["items_per_s"]`` / ``["decisions_per_s"]``.
    supervision:
        Fault-tolerance knobs (:class:`~repro.serving.supervisor.SupervisorConfig`):
        per-shard checkpoint cadence, round deadlines, circuit-breaker
        thresholds and backoff, degraded-submission policy, and sink
        quarantine.  Every cluster is supervised; the defaults checkpoint
        every 64 rounds and never preempt (no deadline).
    faults:
        Optional :class:`~repro.serving.faults.FaultInjector` wired into the
        serving boundaries — testing/chaos only; ``None`` (default) injects
        nothing.
    engine:
        Per-stream :class:`~repro.serving.engine.EngineConfig` shared by
        every session the cluster creates.
    """

    num_shards: int = 1
    batch_size: Union[int, str] = 8
    max_queue: int = 1024
    overflow: str = "drain"
    batched: bool = True
    auto_drain: bool = True
    executor: str = "serial"
    num_workers: Optional[int] = None
    transport: str = "shm"
    transport_ring_bytes: int = DEFAULT_RING_BYTES
    adaptive: AdaptiveBatchConfig = field(default_factory=AdaptiveBatchConfig)
    stats_window: float = 60.0
    supervision: SupervisorConfig = field(default_factory=SupervisorConfig)
    faults: Optional[FaultInjector] = None
    engine: EngineConfig = field(default_factory=EngineConfig)

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if self.batch_size == "auto":
            if self.auto_drain:
                raise ValueError(
                    "batch_size='auto' requires auto_drain=False: synchronous "
                    "auto-drain never lets a backlog form, so the adaptive "
                    "controller would be stuck at its width floor (per-arrival "
                    "serving); schedule explicit drain()/flush() calls instead"
                )
        elif not isinstance(self.batch_size, int) or self.batch_size <= 0:
            raise ValueError("batch_size must be a positive int or 'auto'")
        if self.max_queue <= 0:
            raise ValueError("max_queue must be positive")
        if self.overflow not in ("drain", "reject", "shed"):
            raise ValueError(f"unknown overflow policy {self.overflow!r}")
        if self.executor not in ("serial", "thread", "process"):
            raise ValueError(f"unknown executor backend {self.executor!r}")
        if self.transport not in ("pipe", "shm"):
            raise ValueError(
                f"unknown transport {self.transport!r}; expected 'pipe' or 'shm'"
            )
        if self.transport_ring_bytes <= 0:
            raise ValueError("transport_ring_bytes must be positive")
        if self.num_workers is not None and self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if self.stats_window <= 0:
            raise ValueError("stats_window must be positive")

    @property
    def adaptive_batching(self) -> bool:
        """Whether drain-round widths are controller-driven."""
        return self.batch_size == "auto"


class ShardWorker:
    """Many stream sessions plus the bounded queue feeding them.

    Session state is single-threaded and deterministic: rounds process
    queued arrivals in FIFO order (restricted to the first pending arrival
    of each stream), so for a fixed submission sequence the emitted
    decisions are a fixed sequence too.  Under the thread executor all
    rounds run on the shard's pinned worker thread (callers dispatch and
    wait), so sessions, monitors and counters are still touched by exactly
    one thread; only the arrival queue is shared with submitters and is
    guarded by a lock.
    """

    def __init__(
        self,
        shard_id: int,
        model,
        spec: ValueSpec,
        config: ClusterConfig,
        executor: Optional[ShardExecutor] = None,
    ) -> None:
        self.shard_id = shard_id
        self.model = model
        self.spec = spec
        self.config = config
        self.sessions: Dict[Hashable, StreamSession] = {}
        #: Arrival queue, organised for O(batch·log S) rounds: one FIFO
        #: sub-queue of ``(seq, event)`` per stream plus a min-heap of
        #: ``(head seq, stream_id)`` over the streams with pending arrivals.
        #: ``seq`` is a per-shard arrival counter, so the heap yields streams
        #: in the order of their oldest queued event — exactly the global
        #: FIFO-of-distinct-streams order a flat queue scan would produce,
        #: without re-scanning held-back same-stream followers every round.
        self._pending: Dict[Hashable, Deque[Tuple[int, StreamEvent]]] = {}
        self._ready: List[Tuple[int, Hashable]] = []
        self._queue_length = 0
        self._seq = 0
        #: Guards the arrival queue (submitters enqueue from the caller
        #: thread while the pinned worker dequeues rounds).
        self._lock = threading.Lock()
        #: Execution backend; a standalone worker (outside a cluster) runs
        #: everything inline on the caller.
        self._executor: ShardExecutor = executor or SerialExecutor()
        #: Process-backend transport (the owning cluster sets it to the
        #: :class:`~repro.serving.parallel.ProcessExecutor`): when non-None,
        #: round/flush/expire session work and checkpoint captures detour
        #: through the shard's worker process, which hosts the live replica
        #: of this shard's sessions.  ``None`` (serial/thread/standalone)
        #: keeps every code path exactly as before.
        self._remote: Optional[ProcessExecutor] = None
        #: Round-width policy: fixed ``batch_size`` or adaptive controller.
        self.controller = (
            AdaptiveBatchController(config.adaptive)
            if config.adaptive_batching
            else None
        )
        #: Shard-local sink subscriptions (push delivery of this shard's
        #: emissions; see :mod:`repro.serving.sinks` for the ordering
        #: contract).  Children are fault-isolated and quarantined per the
        #: supervision config.
        self._sinks = FanOutSink(
            quarantine_after=config.supervision.sink_quarantine_after
        )
        #: Per-shard supervision (attached by the owning cluster); a
        #: standalone worker runs unsupervised, exactly as before.
        self.supervisor: Optional[ShardSupervisor] = None
        #: Optional chaos hook (``ClusterConfig.faults``).
        self.faults: Optional[FaultInjector] = config.faults
        #: Every arrival admitted since the supervisor's last checkpoint —
        #: the redo log a crash recovery replays on top of the checkpoint.
        #: Appended under ``self._lock`` on the submit path (only while a
        #: supervisor with checkpointing is attached), cleared atomically
        #: with each checkpoint's queue capture.
        self._journal: List[Tuple[Hashable, StreamEvent]] = []
        #: Arrivals dequeued by the currently running round; non-empty only
        #: between a round's dequeue and its successful completion, so after
        #: a crash it holds exactly the entries the dead round consumed (the
        #: recovery's *lost* set).
        self._round_entries: List[Tuple[Hashable, StreamEvent]] = []
        #: Set by the owning cluster so submission-path rounds can publish
        #: to cluster-level subscribers from the pinned execution context.
        self._cluster_publish: Optional[Callable[[List[StreamDecision]], None]] = None
        #: Drain-round telemetry (queue depth + round latency histograms).
        self.monitor = ShardMonitor()
        #: Admission-control counters.
        self.rejected = 0
        self.shed = 0
        #: Cross-stream batching counters (for the throughput bench/monitor).
        self.batch_rounds = 0
        self.batched_rows = 0
        self.drained = 0

    # ------------------------------------------------------------------ #
    # sessions
    # ------------------------------------------------------------------ #
    def session(self, stream_id: Hashable) -> StreamSession:
        """The stream's session, created on first use."""
        session = self.sessions.get(stream_id)
        if session is None:
            session = StreamSession(self.model, self.spec, self.config.engine)
            self.sessions[stream_id] = session
        return session

    def sessions_view(self) -> Dict[Hashable, StreamSession]:
        """The shard's live sessions, fetched from the replica when remote.

        Serial/thread backends return ``self.sessions`` (the live objects).
        Under the process backend the live sessions reside in the worker
        process; this fetches a fresh copy over the pipe, re-attaches the
        caller's shared model/spec/config objects, refreshes the caller-side
        mirror and returns it.  Intended for read-only inspection and
        snapshotting — mutations to the returned sessions do not reach the
        replica.
        """
        if self._remote is not None:
            self.sessions = self._fetch_remote_sessions()
        return self.sessions

    def counts(self) -> Dict[str, int]:
        """Cheap ``{"num_sessions", "num_decided"}`` tallies for reporting.

        A light remote op on the process backend (no session payload
        crosses the pipe); computed from the live sessions otherwise.
        """
        if self._remote is not None:
            return self._remote.remote_call(self.shard_id, "counts")
        return {
            "num_sessions": len(self.sessions),
            "num_decided": sum(
                session.num_decided for session in self.sessions.values()
            ),
        }

    # ------------------------------------------------------------------ #
    # worker-process replica transport (executor="process")
    # ------------------------------------------------------------------ #
    def _shared_refs(self) -> Tuple[object, ...]:
        """The objects sessions share with the cluster (never serialized)."""
        return (self.model, self.spec, self.config, self.config.engine)

    def _fetch_remote_sessions(self) -> Dict[Hashable, StreamSession]:
        """A fresh copy of the replica's sessions, weights re-attached."""
        fetched = self._remote.remote_call(self.shard_id, "capture")
        sessions = fetched["sessions"]
        _attach_shared_refs(sessions, self.model, self.spec, self.config.engine)
        return sessions

    def _seed_remote(self) -> None:
        """(Re)build this shard's replica inside its worker process.

        Respawns the worker process first if it died (injected or external
        SIGKILL, crash), then ships the model, spec, config and a
        *detached* copy of the caller-held sessions — the pickled-checkpoint
        seeding path of the process backend.  Used at cluster construction
        (empty sessions), by crash recovery, and by cluster-level restore.
        """
        payload = {
            "model": self.model,
            "spec": self.spec,
            "config": self.config,
            "sessions": _detached_sessions_copy(self.sessions, self._shared_refs()),
        }
        self._remote.ensure_worker(self.shard_id)
        try:
            self._remote.remote_call(self.shard_id, "seed", payload)
        except WorkerCrashedError:
            if self._remote.current_context_abandoned():
                raise  # stale context must not murder the replacement's worker
            # ensure_worker's is_alive() can race a just-SIGKILLed child that
            # has not been reaped yet, landing the seed on the dead pipe.
            # Reap the corpse (join makes the death visible), respawn, retry.
            self._remote.kill_worker(self.shard_id)
            self._remote.ensure_worker(self.shard_id)
            self._remote.remote_call(self.shard_id, "seed", payload)

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._queue_length

    def round_width(self) -> int:
        """Arrivals the next drain round will attempt (fixed or adaptive)."""
        if self.controller is not None:
            return self.controller.width
        return self.config.batch_size

    def _run_pinned(self, fn):
        """Run shard work with shard affinity on the execution backend."""
        return self._executor.run(self.shard_id, fn)

    def _fire_fault(self, site: str) -> None:
        """Fire the injector at a serving boundary, caller-side.

        On the process backend a ``"kill"`` fault is escalated to *real*
        worker death: the shard's worker process is SIGKILLed before the
        :class:`~repro.serving.faults.ShardKilled` propagates, so the chaos
        suite exercises genuine crash recovery — the in-flight round fails,
        its dequeued arrivals are lost, recovery respawns the process and
        reseeds the replica from the checkpoint.  Thread/serial semantics
        are untouched (the kill stays a raised exception).
        """
        if self.faults is None:
            return
        try:
            self.faults.fire(site, self.shard_id)
        except ShardKilled:
            if self._remote is not None:
                self._remote.kill_worker(self.shard_id)
            raise

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def _enqueue_locked(
        self, stream_id: Hashable, event: StreamEvent, journal: bool = True
    ) -> None:
        queue = self._pending.get(stream_id)
        if queue is None:
            queue = self._pending[stream_id] = deque()
        if not queue:
            heapq.heappush(self._ready, (self._seq, stream_id))
        queue.append((self._seq, event))
        self._seq += 1
        self._queue_length += 1
        # Journal fresh admissions only: checkpoint/restore queue loads are
        # already covered by the checkpoint itself.
        if (
            journal
            and self.supervisor is not None
            and self.config.supervision.checkpoint.every_rounds > 0
        ):
            self._journal.append((stream_id, event))

    def _pending_entries_locked(self) -> List[Tuple[Hashable, StreamEvent]]:
        entries = [
            (seq, stream_id, event)
            for stream_id, queue in self._pending.items()
            for seq, event in queue
        ]
        entries.sort(key=lambda entry: entry[0])
        return [(stream_id, event) for _, stream_id, event in entries]

    def pending_entries(self) -> List[Tuple[Hashable, StreamEvent]]:
        """Every queued arrival in global FIFO order (snapshot format)."""
        with self._lock:
            return self._pending_entries_locked()

    def load_pending(self, entries: List[Tuple[Hashable, StreamEvent]]) -> None:
        """Replace the queue contents (``entries`` in global FIFO order)."""
        with self._lock:
            self._pending = {}
            self._ready = []
            self._queue_length = 0
            self._seq = 0
            for stream_id, event in entries:
                self._enqueue_locked(stream_id, event, journal=False)

    # ------------------------------------------------------------------ #
    # live stream migration (extract / install one stream)
    # ------------------------------------------------------------------ #
    def _extract_pending_locked(self, stream_id: Hashable) -> List[StreamEvent]:
        """Remove one stream's queued arrivals; FIFO order preserved."""
        queue = self._pending.pop(stream_id, None)
        if queue is None:
            events: List[StreamEvent] = []
        else:
            events = [event for _, event in queue]
            self._queue_length -= len(queue)
            self._ready = [entry for entry in self._ready if entry[1] != stream_id]
            heapq.heapify(self._ready)
        # The stream's journaled admissions leave with it (they are exactly
        # its extracted pending entries); the follow-up checkpoint restores
        # the checkpoint-plus-journal invariant for the remaining streams.
        self._journal = [entry for entry in self._journal if entry[0] != stream_id]
        return events

    def extract_stream(
        self, stream_id: Hashable
    ) -> Tuple[Optional[StreamSession], List[StreamEvent]]:
        """Detach one stream from this shard: its session + queued arrivals.

        The session comes back as a *detached* deep copy (shared
        model/spec/config severed — portable across clusters and pickle
        boundaries), or ``None`` if the stream has no session yet.  Runs on
        the shard's pinned execution context, so it serializes against
        in-flight rounds; the supervisor re-checkpoints afterwards so crash
        recovery can never resurrect the departed stream.
        """

        def op() -> Tuple[Optional[StreamSession], List[StreamEvent]]:
            with self._lock:
                pending = self._extract_pending_locked(stream_id)
            if self._remote is not None:
                session = self._remote.remote_call(
                    self.shard_id, "extract_stream", {"stream_id": stream_id}
                )
                self.sessions.pop(stream_id, None)  # caller-side mirror
            else:
                session = self.sessions.pop(stream_id, None)
                if session is not None:
                    session = _detached_sessions_copy(
                        {stream_id: session}, self._shared_refs()
                    )[stream_id]
            return session, pending

        session, pending = self._run_pinned(op)
        if self.supervisor is not None:
            self.supervisor.checkpoint_now()
        return session, pending

    def install_stream(
        self,
        stream_id: Hashable,
        session: Optional[StreamSession],
        pending: List[StreamEvent],
    ) -> None:
        """Attach an extracted stream to this shard (inverse of extract).

        The incoming session is deep-copied (the caller's
        :class:`StreamState` stays pristine and re-installable) and pointed
        at this shard's live model/spec/config; queued arrivals are
        re-enqueued in their original FIFO order.  Re-checkpoints so the
        arrival lands inside the supervisor's recovery window.
        """

        def op() -> None:
            if session is not None:
                installed = copy.deepcopy(
                    {stream_id: session}, {id(obj): None for obj in self._shared_refs()}
                )[stream_id]
                _attach_shared_refs(
                    {stream_id: installed}, self.model, self.spec, self.config.engine
                )
                if self._remote is not None:
                    detached = _detached_sessions_copy(
                        {stream_id: installed}, self._shared_refs()
                    )
                    self._remote.remote_call(
                        self.shard_id,
                        "install_stream",
                        {"stream_id": stream_id, "session": detached[stream_id]},
                    )
                self.sessions[stream_id] = installed
            with self._lock:
                for event in pending:
                    self._enqueue_locked(stream_id, event, journal=False)

        self._run_pinned(op)
        if self.supervisor is not None:
            self.supervisor.checkpoint_now()

    def stream_ids(self) -> List[Hashable]:
        """Ids of every stream this shard holds (session or queued arrival).

        A light remote op on the process backend (ids only — no session
        payload crosses the pipe).
        """
        if self._remote is not None:
            ids = set(self._remote.remote_call(self.shard_id, "stream_ids"))
        else:
            ids = set(self.sessions.keys())
        with self._lock:
            ids.update(self._pending.keys())
        return sorted(ids, key=repr)

    # ------------------------------------------------------------------ #
    # checkpointing / crash recovery (driven by the shard supervisor)
    # ------------------------------------------------------------------ #
    def _shard_memo(self) -> Dict[int, object]:
        """Deepcopy memo sharing the immutable-at-serving-time objects."""
        shared = (self.model, self.spec, self.config, self.config.engine)
        return {id(obj): obj for obj in shared}

    def _capture_checkpoint(self) -> Dict[str, object]:
        """Deep-copy this shard's serving state; atomically reset the journal.

        The queue read and the journal clear happen under one lock hold, so
        the invariant *checkpoint queue + journal ≡ all unprocessed
        arrivals* holds at every instant — a submit landing during the
        capture is either in the captured queue or in the fresh journal,
        never neither.  Sessions and counters are only mutated by rounds,
        which are serialized against checkpoints by the supervisor, so they
        are copied outside the lock.  Queue entries are immutable events and
        are shared, not copied.

        Process backend: the live sessions are fetched from the shard's
        worker process instead of deep-copied locally (the pipe's pickling
        *is* the copy; model weights are detached in transit and re-attached
        to the caller's live objects so checkpoints stay state-only).  The
        remote fetch happens *before* the queue capture + journal clear —
        rounds are serialized against checkpoints so the replica cannot
        advance in between, and a fetch that fails (worker died between
        rounds) aborts the checkpoint with the journal intact.
        """
        if self._remote is not None:
            sessions = self._fetch_remote_sessions()
            remote_state: Dict[str, object] = {
                "sessions": sessions,
                "counters": {name: getattr(self, name) for name in _SHARD_COUNTERS},
                "monitor": copy.deepcopy(self.monitor, self._shard_memo()),
            }
            with self._lock:
                remote_state["queue"] = self._pending_entries_locked()
                self._journal.clear()
            return remote_state
        with self._lock:
            queue = self._pending_entries_locked()
            self._journal.clear()
        state = copy.deepcopy(
            {
                "sessions": self.sessions,
                "counters": {name: getattr(self, name) for name in _SHARD_COUNTERS},
                "monitor": self.monitor,
            },
            self._shard_memo(),
        )
        state["queue"] = queue
        return state

    def _restore_from_checkpoint(
        self,
        state: Dict[str, object],
        lost: List[Tuple[Hashable, StreamEvent]],
    ) -> List[Tuple[Hashable, StreamEvent]]:
        """Install a checkpoint; rebuild the queue around the crash.

        Sessions, counters and the monitor are replaced with fresh deep
        copies of the checkpoint (the checkpoint itself stays pristine and
        reusable — and an abandoned worker still wedged in the dead round
        holds references only to the orphaned pre-restore sessions; its
        late-bound reads of the live attributes are fenced off by the epoch
        gates in :meth:`_drain_round` and the abandoned-context checks in
        the drain/flush/expire loop bodies).  The arrival queue is
        rebuilt as ``checkpoint queue + journal − lost`` — every admission
        the checkpoint predates is replayed except the entries the dead
        round had already consumed, each removed once by value.  Returns the
        rebuilt entry list so the supervisor can refresh its checkpoint's
        queue without a second sessions copy.
        """
        restored = copy.deepcopy(
            {
                "sessions": state["sessions"],
                "counters": state["counters"],
                "monitor": state["monitor"],
            },
            self._shard_memo(),
        )
        self.sessions = restored["sessions"]
        for name, value in restored["counters"].items():
            setattr(self, name, value)
        self.monitor = restored["monitor"]
        if self.controller is not None:
            self.controller.reset()
        with self._lock:
            rebuilt = list(state["queue"]) + list(self._journal)
            for entry in lost:
                try:
                    rebuilt.remove(entry)
                except ValueError:
                    pass  # lost entry predates the checkpoint window
            self._journal.clear()
            self._pending = {}
            self._ready = []
            self._queue_length = 0
            self._seq = 0
            for stream_id, event in rebuilt:
                self._enqueue_locked(stream_id, event, journal=False)
        self._round_entries = []
        if self._remote is not None:
            # Process backend: recovery = respawn.  Restart the worker
            # process if it died and reseed its replica from the restored
            # sessions, so the next round serves from checkpoint state.
            self._seed_remote()
        return rebuilt

    def _take_round_entries(self) -> List[Tuple[Hashable, StreamEvent]]:
        """Claim the arrivals consumed by a round that died (the lost set)."""
        entries, self._round_entries = self._round_entries, []
        return list(entries)

    # ------------------------------------------------------------------ #
    # push delivery
    # ------------------------------------------------------------------ #
    def subscribe(self, sink: DecisionSink) -> DecisionSink:
        """Subscribe a sink to this shard's emissions; returns the sink."""
        return self._sinks.add(sink)

    def unsubscribe(self, sink: DecisionSink) -> bool:
        """Remove a subscribed sink; False when it was not subscribed."""
        return self._sinks.remove(sink)

    def _publish(self, decisions: List[StreamDecision]) -> None:
        """Push an ordered emission batch to shard + cluster subscribers."""
        if not decisions:
            return
        self._sinks.publish_all(decisions)
        if self._cluster_publish is not None:
            self._cluster_publish(decisions)

    def _drain_round_published(self) -> List[StreamDecision]:
        """One drain round whose emissions are published before returning.

        Runs on the shard's pinned execution context (the submission path
        dispatches it through :meth:`_run_pinned`), so for any one shard the
        publish order equals the round order — per-stream delivery order is
        exact even when many threads submit concurrently, and for a
        single-threaded caller it is identical to the returned lists.
        """
        emitted = self._supervised_round()
        self._publish(emitted)
        return emitted

    def _supervised_round(self) -> List[StreamDecision]:
        """One drain round under the shard supervisor's failure handling.

        A clean round reports success (which also drives the periodic
        checkpoint cadence).  A round that raises reports the failure with
        the arrivals it had dequeued — the supervisor trips the breaker,
        restores the last checkpoint and requeues everything except those
        lost arrivals — and the caller sees an empty emission list instead
        of the exception.  Reports carry the epoch the round started under,
        so a stale worker finishing after an abandonment cannot corrupt the
        recovered state's bookkeeping, and a round whose report is stale
        also yields no emissions (they were computed against replaced
        state).  Unsupervised (standalone) workers run the raw round:
        failures propagate exactly as before.

        Staleness ordering: the epoch is read *before* the abandoned-context
        check, so an abandoned-check that passes guarantees the epoch
        predates any in-flight abandonment's recovery — a zombie thread
        slipping past the check still reports (and gates its bookkeeping)
        under the pre-recovery epoch and is dropped.
        """
        sup = self.supervisor
        if sup is None:
            return self._drain_round()
        epoch = sup.epoch
        if self._executor.current_context_abandoned():
            return []  # zombie context: the replacement worker owns the shard
        try:
            emitted = self._drain_round(epoch)
        except Exception as error:
            sup.on_round_failure(error, epoch, self._take_round_entries())
            return []
        if not sup.note_round_success(epoch):
            return []
        return emitted

    def submit(
        self,
        stream_id: Hashable,
        event: StreamEvent,
        raise_on_reject: bool = True,
    ) -> SubmitResult:
        """Queue one arrival; returns the explicit submission outcome.

        Admission control and the enqueue happen under the queue lock on the
        calling thread; any round this submission triggers (``"drain"``
        overflow backpressure, ``auto_drain``) is executed with shard
        affinity — inline for the serial backend, dispatched to the shard's
        pinned worker and waited on for the thread backend — so the emitted
        decisions and their order are backend-independent.  Each triggered
        round publishes its emissions to subscribed sinks from that pinned
        context before the round returns.

        The returned :class:`~repro.serving.results.SubmitResult` still
        iterates like the legacy decision list; ``overflow="reject"`` keeps
        raising :class:`ShardOverloadError` unless ``raise_on_reject`` is
        False, in which case the rejection is reported as
        ``status="rejected"`` instead.

        Degradation: while the shard's circuit breaker is open the arrival
        is not admitted at all — the outcome follows the supervision
        config's ``degraded`` policy (``"shed"``: a ``status="degraded"``
        result; ``"reject"``: :class:`ShardDegradedError`, downgraded to the
        same result under ``raise_on_reject=False``).  A breaker whose
        backoff has elapsed admits normally — the triggered round is the
        half-open probe.
        """
        sup = self.supervisor
        if sup is not None and not sup.submission_allowed():
            return self._degraded_result(stream_id, raise_on_reject)
        emitted: List[StreamDecision] = []
        while True:
            with self._lock:
                if self._queue_length < self.config.max_queue:
                    self._enqueue_locked(stream_id, event)
                    break
                if self.config.overflow == "reject":
                    self.rejected += 1
                    if raise_on_reject:
                        raise ShardOverloadError(
                            f"shard {self.shard_id} queue is full "
                            f"({self.config.max_queue} arrivals)"
                        )
                    return SubmitResult(
                        status="rejected",
                        stream_id=stream_id,
                        shard_id=self.shard_id,
                        queue_depth=self._queue_length,
                    )
                if self.config.overflow == "shed":
                    self.shed += 1
                    return SubmitResult(
                        status="shed",
                        stream_id=stream_id,
                        shard_id=self.shard_id,
                        queue_depth=self._queue_length,
                    )
            # overflow == "drain": synchronous backpressure — do one round of
            # work now (a full queue is non-empty, so the round frees >= 1).
            # A supervised round that *fails* frees nothing (recovery
            # requeues the survivors), so once the breaker opens the arrival
            # degrades instead of spinning here forever.
            if sup is not None and not sup.allow_round():
                return self._degraded_result(stream_id, raise_on_reject)
            emitted.extend(self._run_pinned(self._drain_round_published))
        if self.config.auto_drain:
            while self.queue_depth >= self.round_width():
                if sup is not None and not sup.allow_round():
                    break  # admitted but unserved: drains later, post-probe
                emitted.extend(self._run_pinned(self._drain_round_published))
        return SubmitResult(
            status="decided" if emitted else "accepted",
            stream_id=stream_id,
            shard_id=self.shard_id,
            decisions=tuple(emitted),
            queue_depth=self.queue_depth,
        )

    def _degraded_result(self, stream_id: Hashable, raise_on_reject: bool) -> SubmitResult:
        """The breaker-open submission outcome, per the ``degraded`` policy."""
        sup = self.supervisor
        sup.note_degraded_submit()
        if self.config.supervision.degraded == "reject" and raise_on_reject:
            raise ShardDegradedError(
                f"shard {self.shard_id} is degraded (circuit breaker "
                f"{sup.breaker.state} after {sup.failures} round failure(s); "
                f"last error: {sup.last_error})"
            )
        return SubmitResult(
            status="degraded",
            stream_id=stream_id,
            shard_id=self.shard_id,
            queue_depth=self.queue_depth,
        )

    # ------------------------------------------------------------------ #
    # draining
    # ------------------------------------------------------------------ #
    def drain(self) -> List[StreamDecision]:
        """Process every queued arrival; returns the decisions in order.

        A standalone worker (outside a cluster) publishes the emitted batch
        to its subscribed sinks on the calling thread before returning; a
        cluster-level drain instead journals per-shard results and publishes
        the stable-ordered merge (see :meth:`ServingCluster.drain`).
        """
        emitted = self._run_pinned(self._drain_inline)
        self._publish(emitted)
        return emitted

    def _drain_inline(self) -> List[StreamDecision]:
        """Round loop body of :meth:`drain`, already running with affinity.

        Supervised workers stop early once the shard's breaker opens
        (recovery requeues a failed round's surviving arrivals, so without
        the gate a persistently failing shard would loop forever); the
        backlog then waits for a later drain's half-open probe.

        Zombie containment: a loop running on a worker thread the executor
        has *abandoned* (deadline abandonment replaced it) exits before the
        next round instead of re-entering the live queue — its wedged round
        ends under a bumped epoch, but without this check the loop would
        re-read ``queue_depth`` (non-empty after recovery requeued the
        survivors) and drain the shard concurrently with the replacement
        worker under the post-recovery epoch.
        """
        emitted: List[StreamDecision] = []
        sup = self.supervisor
        executor = self._executor
        while self.queue_depth:
            if executor.current_context_abandoned():
                break
            if sup is not None and not sup.allow_round():
                break
            emitted.extend(self._supervised_round())
        return emitted

    def _drain_round(self, epoch: Optional[int] = None) -> List[StreamDecision]:
        """Dequeue one round of arrivals (one per stream) and serve them.

        Streams enter the round in the order of their oldest queued arrival;
        same-stream followers stay queued for a later round, because a
        session can only encode one pending arrival at a time.  The round
        width is the fixed ``batch_size`` or the adaptive controller's
        current pick — width only schedules work: it never changes which
        decisions are emitted or any stream's decision sequence (it does
        pick how decisions of *different* streams interleave, see
        :mod:`repro.serving.parallel`).  The encodable rows of the round
        run as one cross-stream batch when enabled.

        ``epoch`` is the supervisor epoch the round started under (read by
        the supervised caller; defaults to the current epoch).  The round is
        epoch-gated at its two wedge-able boundaries: after the pre-dequeue
        fault site (a round abandoned while wedged there returns before
        touching the restored queue) and before the bookkeeping tail (an
        abandoned round that already did its work mutates only the orphaned
        pre-recovery sessions — the live counters, monitor and lost-entry
        tracking stay untouched).
        """
        start = time.perf_counter()
        sup = self.supervisor
        if epoch is None and sup is not None:
            epoch = sup.epoch
        # Pre-dequeue boundary: a fault here fails the round with no
        # arrivals consumed (recovery has an empty lost set).
        self._fire_fault("shard-round")
        if sup is not None and sup.epoch != epoch:
            # Abandoned during the pre-dequeue wedge: the queue now belongs
            # to the replacement worker — consume nothing.
            return []
        self._round_entries = []
        width = self.round_width()
        round_entries: List[Tuple[Hashable, StreamEvent]] = []
        with self._lock:
            depth_before = self._queue_length
            while self._ready and len(round_entries) < width:
                _, stream_id = heapq.heappop(self._ready)
                _, event = self._pending[stream_id].popleft()
                round_entries.append((stream_id, event))
            for stream_id, _ in round_entries:
                queue = self._pending[stream_id]
                if queue:
                    heapq.heappush(self._ready, (queue[0][0], stream_id))
                else:
                    del self._pending[stream_id]
            self._queue_length -= len(round_entries)
        if not round_entries:
            return []
        self._round_entries = round_entries

        reply: Optional[Dict[str, object]] = None
        if self._remote is not None:
            # Mid-encode boundary, evaluated caller-side *before* the pipe
            # send so a fault's lost set matches the dequeued arrivals (the
            # replica runs with ``faults=None`` — injector counters never
            # cross the process boundary, which is what keeps ``limit``-ed
            # specs from re-firing after a respawn).
            self._fire_fault("session-encode")
            transport_info: Dict[str, float] = {}
            reply = self._remote.remote_call(
                self.shard_id,
                "round",
                {"entries": round_entries},
                telemetry=transport_info,
            )
            emitted: List[StreamDecision] = list(reply["decisions"])
        else:
            emitted = self._serve_entries(round_entries)

        if sup is not None and sup.epoch != epoch:
            # Abandoned mid-round: the sessions above were the orphaned
            # pre-recovery copies (harmless), but ``drained``, the monitor
            # and ``_round_entries`` are the *live* restored objects — a
            # stale tail mutating them would corrupt the replacement
            # worker's bookkeeping (and clearing ``_round_entries`` could
            # erase a concurrently running round's lost-entry tracking).
            return []
        self.drained += len(round_entries)
        if reply is not None:
            # Mirror the replica's per-round counter deltas and the
            # worker-side encode latency into the caller-side bookkeeping —
            # report-merge, meters and sink publication all stay caller-side.
            self.batch_rounds += reply["batch_rounds"]
            self.batched_rows += reply["batched_rows"]
        self._round_entries = []

        elapsed_ms = (time.perf_counter() - start) * 1e3
        self.monitor.observe_round(depth_before, len(round_entries), elapsed_ms)
        if reply is not None:
            self.monitor.observe_encode(reply["encode_ms"])
            self.monitor.observe_transport(
                transport_info.get("bytes", 0.0),
                transport_info.get("serialize_ms", 0.0),
            )
        if self.controller is not None:
            self.controller.observe_round(
                self.queue_depth, len(round_entries), elapsed_ms
            )
        return emitted

    def _serve_entries(
        self, round_entries: List[Tuple[Hashable, StreamEvent]]
    ) -> List[StreamDecision]:
        """Serve one round's dequeued arrivals against the live sessions.

        The round's serving kernel, shared by both execution sites: the
        serial/thread backends call it in-process from :meth:`_drain_round`;
        the process backend's replica calls it inside the worker process
        (via :func:`shard_replica_handler`), where ``self`` is the seeded
        replica ``ShardWorker`` and ``self.faults`` is ``None`` (fault
        boundaries are evaluated caller-side).  Encodable rows run as one
        cross-stream batch when ``config.batched`` is set.
        """
        staged = [
            (stream_id, event, self.session(stream_id))
            for stream_id, event in round_entries
        ]
        appendable = [
            (session, event)
            for _, event, session in staged
            if session._ingest(event)
        ]
        # Mid-encode boundary: sessions are half-mutated (bookkeeping ran,
        # rows not appended) and the round's arrivals are consumed — the
        # worst case a checkpoint restore must undo bit-for-bit.  No-op on
        # process-backend replicas (``faults`` is ``None`` there).
        self._fire_fault("session-encode")
        if self.config.batched and len(appendable) > 1:
            representations = append_batch(
                [session._incremental for session, _ in appendable],
                [event.item for _, event in appendable],
            )
            probabilities = self.model.policy.halt_probabilities_inference(
                np.stack(representations)
            )
            for (session, _), probability in zip(appendable, probabilities):
                session._note_appended_row(probability)
            self.batch_rounds += 1
            self.batched_rows += len(appendable)
        else:
            for session, event in appendable:
                session._append_to_cache(event)

        emitted: List[StreamDecision] = []
        for stream_id, event, session in staged:
            for decision in session._complete_offer(event):
                emitted.append(StreamDecision(stream_id, self.shard_id, decision))
        return emitted

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def flush(self) -> List[StreamDecision]:
        """Drain, then force-decide every session's undecided keys."""
        emitted = self._run_pinned(self._flush_inline)
        self._publish(emitted)
        return emitted

    def _flush_inline(self) -> List[StreamDecision]:
        emitted = self._drain_inline()
        if self._executor.current_context_abandoned():
            return emitted  # zombie: self.sessions is the replacement's now
        if self._remote is not None:
            emitted.extend(self._remote.remote_call(self.shard_id, "flush_tail"))
            return emitted
        for stream_id, session in self.sessions.items():
            for decision in session.flush():
                emitted.append(StreamDecision(stream_id, self.shard_id, decision))
        return emitted

    def _flush_stream_inline(self, stream_id: Hashable) -> List[StreamDecision]:
        """Drain the shard, then force-decide one session's undecided keys.

        The whole shard queue must drain first (the target stream's pending
        arrivals sit behind other streams' in FIFO order), so the emitted
        list may contain other streams' drain decisions ahead of the target
        stream's flush decisions.
        """
        emitted = self._drain_inline()
        if self._executor.current_context_abandoned():
            return emitted  # zombie: self.sessions is the replacement's now
        if self._remote is not None:
            emitted.extend(
                self._remote.remote_call(
                    self.shard_id, "flush_stream_tail", {"stream_id": stream_id}
                )
            )
            return emitted
        session = self.sessions.get(stream_id)
        if session is not None:
            for decision in session.flush():
                emitted.append(StreamDecision(stream_id, self.shard_id, decision))
        return emitted

    def expire(self, now: Optional[float] = None) -> List[StreamDecision]:
        """Drain, then apply idle-timeout expiry to every session."""
        emitted = self._run_pinned(partial(self._expire_inline, now))
        self._publish(emitted)
        return emitted

    def _expire_inline(self, now: Optional[float] = None) -> List[StreamDecision]:
        emitted = self._drain_inline()
        if self._executor.current_context_abandoned():
            return emitted  # zombie: self.sessions is the replacement's now
        if self._remote is not None:
            emitted.extend(
                self._remote.remote_call(self.shard_id, "expire_tail", {"now": now})
            )
            return emitted
        for stream_id, session in self.sessions.items():
            for decision in session.expire(now):
                emitted.append(StreamDecision(stream_id, self.shard_id, decision))
        return emitted


@dataclass(frozen=True)
class ClusterSnapshot:
    """Opaque, restorable copy of a cluster's serving state.

    Holds deep copies of every shard's sessions, queue and counters (model
    weights are shared, not copied).  Treat as opaque: only
    :meth:`ServingCluster.restore` should consume it.
    """

    num_shards: int
    shard_states: List[Dict[str, object]]


@dataclass(frozen=True)
class StreamState:
    """One stream's portable serving state, detached from any cluster.

    Produced by :meth:`ServingCluster.extract_stream` and consumed by
    :meth:`ServingCluster.install_stream` — the unit of live stream
    migration between independent clusters (the
    :class:`~repro.serving.net.router.ClusterRouter` nodes).  ``session``
    is a *detached* deep copy (shared model/spec/config severed, exactly
    like a pickled checkpoint) or ``None`` when the stream had queued
    arrivals but no session yet; ``pending`` is the stream's queued
    arrivals in FIFO order.  Treat as opaque; it pickles cleanly.
    """

    stream_id: Hashable
    session: Optional[StreamSession]
    pending: Tuple[StreamEvent, ...]


#: Counter attributes snapshotted/restored per shard.
_SHARD_COUNTERS = ("rejected", "shed", "batch_rounds", "batched_rows", "drained")


def _detached_sessions_copy(
    sessions: Dict[Hashable, StreamSession],
    shared: Iterable[object],
) -> Dict[Hashable, StreamSession]:
    """Deep-copy sessions with the shared model/spec/config *detached*.

    The deepcopy memo maps every shared object to ``None``, so the copy
    carries only per-session serving state — what must cross a process
    boundary or live in a pickled snapshot.  :func:`_attach_shared_refs`
    is the inverse: it points a detached copy back at live shared objects.
    """
    memo = {id(obj): None for obj in shared}
    return copy.deepcopy(sessions, memo)


def _attach_shared_refs(
    sessions: Dict[Hashable, StreamSession],
    model: object,
    spec: ValueSpec,
    engine: EngineConfig,
) -> Dict[Hashable, StreamSession]:
    """Re-point detached sessions at live shared model/spec/config objects.

    Inverse of :func:`_detached_sessions_copy`, and the repair for sessions
    whose sharing was severed by a pickle round-trip (pickle has no memo
    bridge to the live process, so each unpickled session would otherwise
    own a private weight copy — multiplying memory per shard and breaking
    atomic weight hot-swap).  Mutates in place; returns ``sessions``.
    """
    for session in sessions.values():
        session.model = model
        session.spec = spec
        session.config = engine
        if session._incremental is not None:
            session._incremental.model = model
    return sessions


def shard_replica_handler(
    replicas: Dict[int, ShardWorker],
    op: str,
    shard_id: int,
    payload: Optional[Dict[str, object]],
) -> object:
    """Serve one pipe command against a worker process's shard replicas.

    Runs inside :func:`repro.serving.parallel._process_worker_main`.
    ``replicas`` is the process-local registry (shard id → seeded
    :class:`ShardWorker` replica); it starts empty and is populated by
    ``"seed"`` commands.  Replicas run with ``faults=None`` (fault
    boundaries are evaluated caller-side) and their queues stay empty —
    round arrivals arrive pre-dequeued in the command payload.

    A freshly respawned process has lost every replica it hosted, so any
    non-seed command addressed to an unknown shard raises
    :class:`~repro.serving.parallel.ReplicaLostError` — the caller-side
    shard fails its round and heals by reseeding from its checkpoint.
    """
    if op == "seed":
        replica = ShardWorker(
            shard_id, payload["model"], payload["spec"], payload["config"]
        )
        replica.faults = None
        sessions = payload["sessions"]
        _attach_shared_refs(
            sessions, replica.model, replica.spec, replica.config.engine
        )
        replica.sessions = sessions
        replicas[shard_id] = replica
        return None
    replica = replicas.get(shard_id)
    if replica is None:
        raise ReplicaLostError(
            f"worker process holds no replica for shard {shard_id} "
            "(respawned since the last seed?)"
        )
    if op == "round":
        start = time.perf_counter()
        batch_rounds_before = replica.batch_rounds
        batched_rows_before = replica.batched_rows
        decisions = replica._serve_entries(payload["entries"])
        return {
            "decisions": decisions,
            "batch_rounds": replica.batch_rounds - batch_rounds_before,
            "batched_rows": replica.batched_rows - batched_rows_before,
            "encode_ms": (time.perf_counter() - start) * 1e3,
        }
    if op == "capture":
        shared = (
            replica.model,
            replica.spec,
            replica.config,
            replica.config.engine,
        )
        return {"sessions": _detached_sessions_copy(replica.sessions, shared)}
    if op == "counts":
        return {
            "num_sessions": len(replica.sessions),
            "num_decided": sum(
                session.num_decided for session in replica.sessions.values()
            ),
        }
    if op == "flush_tail":
        return [
            StreamDecision(stream_id, replica.shard_id, decision)
            for stream_id, session in replica.sessions.items()
            for decision in session.flush()
        ]
    if op == "flush_stream_tail":
        session = replica.sessions.get(payload["stream_id"])
        if session is None:
            return []
        return [
            StreamDecision(payload["stream_id"], replica.shard_id, decision)
            for decision in session.flush()
        ]
    if op == "expire_tail":
        return [
            StreamDecision(stream_id, replica.shard_id, decision)
            for stream_id, session in replica.sessions.items()
            for decision in session.expire(payload["now"])
        ]
    if op == "extract_stream":
        session = replica.sessions.pop(payload["stream_id"], None)
        if session is None:
            return None
        shared = (
            replica.model,
            replica.spec,
            replica.config,
            replica.config.engine,
        )
        return _detached_sessions_copy({payload["stream_id"]: session}, shared)[
            payload["stream_id"]
        ]
    if op == "install_stream":
        session = payload["session"]
        _attach_shared_refs(
            {payload["stream_id"]: session},
            replica.model,
            replica.spec,
            replica.config.engine,
        )
        replica.sessions[payload["stream_id"]] = session
        return None
    if op == "stream_ids":
        return list(replica.sessions.keys())
    raise ValueError(f"unknown replica op: {op!r}")


class ServingCluster:
    """Hash-routed front-end over a fleet of shard workers.

    The deployment entry point for multi-stream serving: ``submit`` routes
    each arrival to its stream's shard (stable CRC32 bucketing — the same
    stream always lands on the same shard, across processes and restarts),
    shards batch-encode their queues, and ``flush`` / ``expire`` fan out to
    every session.  The API is synchronous: every call returns with its work
    complete.  With the serial backend the work runs on the calling thread;
    with ``executor="thread"`` cluster-level drain / flush / expire run all
    shards concurrently on the pinned worker pool and the caller waits for
    the merged, shard-ordered result — same decisions, overlapped wall
    clock.  Use :meth:`close` (or a ``with`` block) to release the pool.
    """

    #: Lifecycle states (``state`` property): ``running`` accepts
    #: submissions, ``draining`` only finishes in-flight work (drain /
    #: flush / expire), ``closed`` rejects everything but ``stats``.
    STATES = ("running", "draining", "closed")

    def __init__(
        self, model, spec: ValueSpec, config: Optional[ClusterConfig] = None
    ) -> None:
        self.model = model
        self.spec = spec
        self.config = config or ClusterConfig()
        self.config.engine.validate_for_model(model)
        self._executor = make_executor(
            self.config.executor,
            self.config.num_shards,
            self.config.num_workers,
            process_handler=shard_replica_handler,
            transport=self.config.transport,
            transport_ring_bytes=self.config.transport_ring_bytes,
        )
        self.shards = [
            ShardWorker(index, model, spec, self.config, executor=self._executor)
            for index in range(self.config.num_shards)
        ]
        self._state = "running"
        if isinstance(self._executor, ProcessExecutor):
            # Seed every shard's replica into its pinned worker process
            # before supervisors attach (supervisor construction captures an
            # initial checkpoint, which fetches sessions from the replica).
            for shard in self.shards:
                shard._remote = self._executor
                shard._seed_remote()
        #: Per-shard supervision: breaker, checkpoints, crash recovery
        #: (:mod:`repro.serving.supervisor`).  Attached before any arrival,
        #: so the initial checkpoint is the empty shard.
        for shard in self.shards:
            shard.supervisor = ShardSupervisor(shard, self.config.supervision)
        #: Cluster-level sink subscriptions (push delivery of every emitted
        #: decision; see :mod:`repro.serving.sinks`).  Children are
        #: fault-isolated and quarantined per the supervision config.
        self._sinks = FanOutSink(
            quarantine_after=self.config.supervision.sink_quarantine_after
        )
        #: Sliding-window throughput gauges (wall clock): admitted arrivals
        #: and published decisions.  Ticked from submit callers and shard
        #: workers alike, so both share one lock.  Cluster-global by choice:
        #: the tick is a few deque ops on the pure-Python bookkeeping path,
        #: which the GIL serializes across threads anyway — the BLAS rounds
        #: that actually overlap across shards never touch it.  If it ever
        #: shows in a profile, the escape is per-shard meters merged at
        #: stats() time.
        self._meter_lock = threading.Lock()
        # ~256 retained checkpoints per meter whatever the arrival rate:
        # ticks within window/256 of the last checkpoint coalesce into it.
        meter_granularity = self.config.stats_window / 256.0
        self._items_meter = ThroughputMeter(
            window=self.config.stats_window, granularity=meter_granularity
        )
        self._decisions_meter = ThroughputMeter(
            window=self.config.stats_window, granularity=meter_granularity
        )
        for shard in self.shards:
            shard._cluster_publish = self._publish

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        """Current lifecycle state: ``running`` / ``draining`` / ``closed``."""
        return self._state

    def _require_running(self, operation: str) -> None:
        if self._state != "running":
            raise RuntimeError(
                f"cannot {operation}: cluster is {self._state} (submissions "
                f"require a running cluster)"
            )

    def _require_open(self, operation: str) -> None:
        if self._state == "closed":
            raise RuntimeError(f"cannot {operation}: cluster is closed")

    def shutdown(self) -> List[StreamDecision]:
        """Graceful stop: drain + flush everything, then close the pool.

        Moves the cluster through ``draining`` (new submissions are rejected
        while the final flush publishes its emissions to subscribers) into
        ``closed``; returns the flush emissions.  Idempotent: a second call
        returns an empty list.

        Threading: lifecycle transitions are not synchronized against
        in-flight submissions — quiesce submitters before shutting down (a
        submit racing the transition can slip an arrival into the queue
        after the final flush).  The async gateway enforces this with its
        exclusive close gate; sync callers own the ordering themselves.
        """
        if self._state == "closed":
            return []
        self._state = "draining"
        emitted = self.flush()
        self.close()
        return emitted

    def close(self) -> None:
        """Shut down the executor's worker pool and mark the cluster closed.

        Immediate (queued arrivals are *not* drained — use
        :meth:`shutdown` for a graceful stop) and idempotent.
        """
        self._state = "closed"
        self._executor.close()

    def __enter__(self) -> "ServingCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # push delivery
    # ------------------------------------------------------------------ #
    def subscribe(self, sink: DecisionSink) -> DecisionSink:
        """Subscribe a sink to every decision the cluster emits.

        Delivery order: identical to the returned-list API for a
        single-threaded caller (backend-deterministic, pinned by the parity
        suite); per-stream order is always emission order, even with
        concurrent submitters.  Returns the sink for unsubscribe bookkeeping.
        """
        return self._sinks.add(sink)

    def unsubscribe(self, sink: DecisionSink) -> bool:
        """Remove a subscribed sink; False when it was not subscribed."""
        return self._sinks.remove(sink)

    def _publish(self, decisions: List[StreamDecision]) -> None:
        """Deliver an ordered emission batch to cluster-level subscribers.

        The single funnel for every published decision: submission-path
        rounds call it from the shard's pinned execution context, the
        cluster-level fan-outs from the merge point — so the decision meter
        counts exactly what subscribers see.
        """
        if not decisions:
            return
        with self._meter_lock:
            self._decisions_meter.tick(time.monotonic(), len(decisions))
        self._sinks.publish_all(decisions)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def shard_index(self, stream_id: Hashable) -> int:
        """Deterministic shard bucket of a stream id."""
        return stable_key_slot(stream_id, len(self.shards))

    def shard_of(self, stream_id: Hashable) -> ShardWorker:
        return self.shards[self.shard_index(stream_id)]

    def session(self, stream_id: Hashable, create: bool = False) -> Optional[StreamSession]:
        """The stream's session (``None`` unless seen before or ``create``).

        Process backend: returns a read-only copy fetched from the shard's
        replica (the live session resides in the worker process).
        """
        shard = self.shard_of(stream_id)
        if create:
            return shard.session(stream_id)
        return shard.sessions_view().get(stream_id)

    def sessions(self) -> Iterator[Tuple[Hashable, StreamSession]]:
        """All live ``(stream_id, session)`` pairs, shard by shard.

        Process backend: yields read-only copies fetched from the replicas.
        """
        for shard in self.shards:
            yield from shard.sessions_view().items()

    # ------------------------------------------------------------------ #
    # serving API
    # ------------------------------------------------------------------ #
    def submit(
        self,
        event: StreamEvent,
        stream_id: Optional[Hashable] = None,
        raise_on_reject: bool = True,
    ) -> SubmitResult:
        """Route one arrival to its stream's shard.

        The stream id defaults to the event's ``source`` tag (what the
        multi-stream simulator stamps); pass ``stream_id`` explicitly when
        events carry no source.  Returns a
        :class:`~repro.serving.results.SubmitResult`: the explicit admission
        outcome, any decisions a triggered drain emitted (the result
        iterates like the legacy decision list) and the shard's queue depth.
        ``overflow="reject"`` raises :class:`ShardOverloadError` unless
        ``raise_on_reject=False``.
        """
        self._require_running("submit")
        if stream_id is None:
            stream_id = event.source
        result = self.shard_of(stream_id).submit(
            stream_id, event, raise_on_reject=raise_on_reject
        )
        if result.admitted:
            with self._meter_lock:
                self._items_meter.tick(time.monotonic())
        return result

    def consume(
        self,
        events: Iterable[StreamEvent],
        stream_id: Optional[Hashable] = None,
        raise_on_reject: bool = True,
    ) -> ConsumeSummary:
        """Submit a whole stream of events.

        Returns a :class:`~repro.serving.results.ConsumeSummary` — a list of
        every decision emitted (legacy consumers are unchanged) that also
        tallies each submission's admission outcome, so shed or rejected
        arrivals are no longer silently swallowed.  With
        ``raise_on_reject=False`` a full ``overflow="reject"`` shard counts
        the rejection and the ingest continues.
        """
        summary = ConsumeSummary()
        for event in events:
            summary.record(
                self.submit(event, stream_id=stream_id, raise_on_reject=raise_on_reject)
            )
        return summary

    def _fan_out(self, fns) -> List[StreamDecision]:
        """Run one thunk per shard under supervision, merge, then publish.

        The executor returns per-shard decision journals indexed by shard;
        concatenating them yields the stable (shard index, round,
        intra-round) order — exactly the sequence the serial backend's
        shard-by-shard loop produces, whatever order the shards actually
        finished in.  Publication happens here at the merge point, in that
        same stable order: shard-level subscribers get their shard's
        journal, cluster-level subscribers the merged sequence — so sink
        delivery from cluster-level operations is backend-deterministic and
        list-identical to the returned value.

        Supervision: shards whose breaker is open are skipped (their journal
        is empty — graceful degradation instead of certain failure).  Each
        dispatched job is awaited with the configured round deadline; a job
        that raises outside a round's own handling (flush/expire faults,
        executor-job injection) feeds the shard's failure path, and a job
        making no progress for a full deadline window is abandoned — its
        worker replaced, the shard recovered from its checkpoint — so a
        drain call never blocks past its deadline on a wedged shard.
        """
        jobs: List[Optional[JobHandle]] = []
        for shard, fn in zip(self.shards, fns):
            sup = shard.supervisor
            if sup is not None and not sup.allow_round():
                jobs.append(None)
                continue
            jobs.append(self._executor.submit(shard.shard_id, partial(self._shard_job, shard, fn)))
        results: List[List[StreamDecision]] = []
        for shard, job in zip(self.shards, jobs):
            if job is None:
                results.append([])
            else:
                results.append(self._await_shard_job(shard, job))
        for shard, journal in zip(self.shards, results):
            if journal:
                shard._sinks.publish_all(journal)
        merged = [decision for result in results for decision in result]
        self._publish(merged)
        return merged

    @staticmethod
    def _shard_job(shard: ShardWorker, fn) -> List[StreamDecision]:
        """One fan-out job body, running on the shard's execution context."""
        shard._fire_fault("executor-job")
        return fn()

    def _worker_progress(self, shard: ShardWorker) -> int:
        """Completed-round count across every shard sharing this shard's
        worker.

        The fan-out deadline's progress signal.  With ``num_workers <
        num_shards`` a shard's job can sit queued behind a sibling shard's
        job on their shared worker: the queued shard completes no rounds of
        its own while the sibling legitimately churns, so a *per-shard*
        count would spuriously abandon it (and recover a shard whose state
        was never touched).  Counting the whole worker keeps the deadline
        meaningful: it only trips when the worker itself is wedged — in
        which case every shard pinned to it stalls together.
        """
        worker_index = getattr(self._executor, "worker_index", None)
        if worker_index is None:
            supervisors = [shard.supervisor]
        else:
            target = worker_index(shard.shard_id)
            supervisors = [
                sibling.supervisor
                for sibling in self.shards
                if worker_index(sibling.shard_id) == target
            ]
        return sum(sup.rounds_completed for sup in supervisors if sup is not None)

    def _await_shard_job(self, shard: ShardWorker, job: JobHandle) -> List[StreamDecision]:
        """Wait for a fan-out job — deadline-aware and failure-absorbing.

        Progress-aware deadline: the wait only gives up after a window of
        ``round_deadline_s`` with no completed round on the shard's *worker*
        (see :meth:`_worker_progress`), so a busy shard legitimately
        churning through a deep backlog — or a shard merely queued behind a
        churning sibling on a shared worker — is never abandoned mid-burn.
        Abandonment replaces the wedged worker
        (:meth:`~repro.serving.parallel.ThreadExecutor.abandon`) and
        recovers the shard; the wedged thread's eventual round report is
        rejected by the supervisor's epoch guard.  A job the abandonment
        dropped *unrun* from the shared queue
        (:class:`~repro.serving.parallel.AbandonedJobError`) touched no
        state and is simply resubmitted to the replacement worker — never
        forwarded without a waiter, so an orphaned job can never consume
        arrivals unobserved.  Inline (serial) jobs complete before the
        handle comes back, so the deadline branch only ever runs under the
        thread executor.
        """
        sup = shard.supervisor
        deadline = self.config.supervision.round_deadline_s
        if sup is None:
            return job.wait()  # type: ignore[return-value]
        while True:
            while not job.done.is_set():
                progress = self._worker_progress(shard)
                if job.done.wait(deadline):
                    break
                if self._worker_progress(shard) != progress:
                    continue  # rounds are completing; the job is just large
                self._executor.abandon(shard.shard_id)
                sup.on_deadline_abandon(deadline, shard._take_round_entries())
                return []
            if isinstance(job.error, AbandonedJobError):
                # Dropped from the queue when a sibling shard's deadline
                # abandon replaced the shared worker; it never ran.
                job = self._executor.submit(shard.shard_id, job.fn)
                continue
            break
        if job.error is not None:
            if isinstance(job.error, Exception):
                sup.on_round_failure(job.error, sup.epoch, shard._take_round_entries())
                return []
            raise job.error  # KeyboardInterrupt and friends propagate
        return job.result  # type: ignore[return-value]

    def drain(self) -> List[StreamDecision]:
        """Process every queued arrival on every shard (in parallel when the
        thread backend is active)."""
        self._require_open("drain")
        return self._fan_out([shard._drain_inline for shard in self.shards])

    def flush(self) -> List[StreamDecision]:
        """Drain all queues, then force-decide every undecided key."""
        self._require_open("flush")
        return self._fan_out([shard._flush_inline for shard in self.shards])

    def flush_stream(self, stream_id: Hashable) -> List[StreamDecision]:
        """Drain one stream's shard, then force-decide that stream's keys.

        The per-stream lifecycle hook behind
        :meth:`~repro.serving.gateway.StreamHandle.close`: other streams on
        the same shard only have their queued arrivals drained (their
        decisions, if any, are part of the returned/published batch); only
        the target stream is force-decided.
        """
        self._require_open("flush_stream")
        shard = self.shard_of(stream_id)
        sup = shard.supervisor
        if sup is not None and not sup.allow_round():
            return []  # degraded: the shard may not run work right now
        try:
            emitted = shard._run_pinned(partial(shard._flush_stream_inline, stream_id))
        except Exception as error:
            if sup is None:
                raise
            sup.on_round_failure(error, sup.epoch, shard._take_round_entries())
            return []
        shard._sinks.publish_all(emitted)
        self._publish(emitted)
        return emitted

    def expire(self, now: Optional[float] = None) -> List[StreamDecision]:
        """Drain all queues, then expire idle keys on every session."""
        self._require_open("expire")
        return self._fan_out(
            [partial(shard._expire_inline, now) for shard in self.shards]
        )

    # ------------------------------------------------------------------ #
    # live stream migration
    # ------------------------------------------------------------------ #
    def stream_ids(self) -> List[Hashable]:
        """Ids of every stream the cluster holds, deterministically ordered."""
        ids: set = set()
        for shard in self.shards:
            ids.update(shard.stream_ids())
        return sorted(ids, key=repr)

    def extract_stream(self, stream_id: Hashable) -> StreamState:
        """Detach one stream — session plus queued arrivals — for migration.

        The cluster forgets the stream entirely (a later submit for the same
        id would start a brand-new session); the returned
        :class:`StreamState` is self-contained and can be installed into any
        cluster built over the same model/spec/engine config, where serving
        resumes bit-for-bit — the decision parity the snapshot/restore
        matrix proves, applied to a single stream.  Call between rounds (no
        concurrent submit/drain for this stream) — the router serializes
        this for you.
        """
        self._require_open("extract_stream")
        shard = self.shard_of(stream_id)
        session, pending = shard.extract_stream(stream_id)
        return StreamState(
            stream_id=stream_id, session=session, pending=tuple(pending)
        )

    def install_stream(self, state: StreamState) -> None:
        """Attach an extracted stream to this cluster (inverse of extract).

        Routes by the cluster's own hash (the shard index need not match the
        source cluster's) and leaves ``state`` reusable.  Installing over an
        existing session with the same stream id replaces it.
        """
        self._require_open("install_stream")
        shard = self.shard_of(state.stream_id)
        shard.install_stream(state.stream_id, state.session, list(state.pending))

    # ------------------------------------------------------------------ #
    # snapshot / restore
    # ------------------------------------------------------------------ #
    def _shared_memo(self) -> Dict[int, object]:
        """Deepcopy memo pre-seeded with the objects snapshots must share.

        Model weights, the value spec and the config objects are identical
        across all sessions and immutable at serving time; sharing them keeps
        snapshots cheap (state only) and restores pointing at the live model.
        """
        shared = (self.model, self.spec, self.config, self.config.engine)
        return {id(obj): obj for obj in shared}

    def snapshot(self) -> ClusterSnapshot:
        """Deep-copy the cluster's serving state (sessions, queues, counters)."""
        self._require_open("snapshot")
        states: List[Dict[str, object]] = []
        for shard in self.shards:
            states.append(
                {
                    "sessions": shard.sessions_view(),
                    "queue": shard.pending_entries(),
                    "counters": {name: getattr(shard, name) for name in _SHARD_COUNTERS},
                    "monitor": shard.monitor,
                }
            )
        return ClusterSnapshot(
            num_shards=len(self.shards),
            shard_states=copy.deepcopy(states, self._shared_memo()),
        )

    def restore(self, snapshot: ClusterSnapshot) -> None:
        """Rewind the cluster to a snapshot (which stays reusable).

        Serving state — sessions, queues, counters, shard monitors — rewinds
        bit-for-bit.  Adaptive-batch controllers restart from their width
        floor: their state is wall-clock tuning, and round widths never
        affect which decisions a replay emits.  Sink subscriptions, pending
        deliveries and throughput meters are untouched: nothing already
        published is rescinded or re-fired by the restore itself; replaying
        events re-emits (and re-publishes) the replayed decisions.
        """
        self._require_open("restore")
        if snapshot.num_shards != len(self.shards):
            raise ValueError(
                f"snapshot has {snapshot.num_shards} shards, cluster has "
                f"{len(self.shards)}"
            )
        states = copy.deepcopy(snapshot.shard_states, self._shared_memo())
        for shard, state in zip(self.shards, states):
            shard.sessions = state["sessions"]
            # Re-attach the cluster's live model/spec/config unconditionally:
            # a snapshot that went through ``pickle`` (serialized failover)
            # has its ``_shared_memo`` sharing severed — without this every
            # restored session would own a private weight copy, multiplying
            # per-shard memory and breaking atomic weight hot-swap.
            _attach_shared_refs(
                shard.sessions, self.model, self.spec, self.config.engine
            )
            shard.load_pending(state["queue"])
            for name, value in state["counters"].items():
                setattr(shard, name, value)
            shard.monitor = state.get("monitor") or ShardMonitor()
            if shard.controller is not None:
                shard.controller.reset()
            if shard._remote is not None:
                # Process backend: push the restored sessions into the
                # shard's replica before supervision recaptures around them.
                shard._seed_remote()
            if shard.supervisor is not None:
                # Re-arm supervision around the restored state: fresh
                # checkpoint, closed breaker, new epoch (counters survive —
                # they are telemetry, like sinks and meters).
                shard.supervisor.reset()

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    @property
    def num_sessions(self) -> int:
        return sum(shard.counts()["num_sessions"] for shard in self.shards)

    @property
    def num_decided(self) -> int:
        return sum(shard.counts()["num_decided"] for shard in self.shards)

    def health(self) -> Dict[str, object]:
        """The cluster's fault-tolerance view (also ``stats()["health"]``).

        Per-shard supervisor snapshots (breaker state, failure / restore /
        abandon counters, checkpoint cadence position, lost arrivals) plus
        cluster-wide totals, sink quarantine counts and executor thread
        accounting.  Everything here is telemetry: reading it never touches
        serving state.
        """
        supervisors = [shard.supervisor for shard in self.shards]
        shard_health = [sup.health() if sup is not None else None for sup in supervisors]
        fanouts = [self._sinks] + [shard._sinks for shard in self.shards]
        delivery = [hub.delivery_health() for hub in fanouts]
        return {
            "shards": shard_health,
            "breaker_open": [
                shard.shard_id
                for shard, view in zip(self.shards, shard_health)
                if view is not None and view["breaker"] != "closed"
            ],
            "failures": sum(view["failures"] for view in shard_health if view),
            "restores": sum(view["restores"] for view in shard_health if view),
            "deadline_abandons": sum(
                view["deadline_abandons"] for view in shard_health if view
            ),
            "degraded_submits": sum(
                view["degraded_submits"] for view in shard_health if view
            ),
            "lost_arrivals": sum(view["lost_arrivals"] for view in shard_health if view),
            "checkpoints": sum(view["checkpoints"] for view in shard_health if view),
            "quarantined_sinks": sum(view["quarantined"] for view in delivery),
            "sink_publish_errors": sum(view["publish_errors"] for view in delivery),
            "abandoned_workers": getattr(self._executor, "abandoned_workers", 0),
            "leaked_workers": getattr(self._executor, "leaked_workers", 0),
            "worker_respawns": getattr(self._executor, "worker_respawns", 0),
        }

    def stats(self) -> Dict[str, object]:
        """Aggregate shard counters for monitoring/benchmarks."""
        merged_monitor = ShardMonitor.merged(shard.monitor for shard in self.shards)
        with self._meter_lock:
            # Zero-item ticks advance the sliding windows, so the reported
            # rates decay toward zero while the cluster idles instead of
            # freezing at the last active window's value.
            now = time.monotonic()
            self._items_meter.tick(now, 0)
            self._decisions_meter.tick(now, 0)
            items_per_s = self._items_meter.rate
            decisions_per_s = self._decisions_meter.rate
        return {
            "num_shards": len(self.shards),
            "executor": self.config.executor,
            # The transport the process executor actually runs (shm can
            # resolve to pipe where shared memory is unusable); None for
            # the in-process backends, which have no transport at all.
            "transport": getattr(self._executor, "transport", None),
            "state": self._state,
            "num_sessions": self.num_sessions,
            "num_decided": self.num_decided,
            "queue_depths": [shard.queue_depth for shard in self.shards],
            "rejected": sum(shard.rejected for shard in self.shards),
            "shed": sum(shard.shed for shard in self.shards),
            "rejected_per_shard": [shard.rejected for shard in self.shards],
            "shed_per_shard": [shard.shed for shard in self.shards],
            "items_per_s": items_per_s,
            "decisions_per_s": decisions_per_s,
            "batch_rounds": sum(shard.batch_rounds for shard in self.shards),
            "batched_rows": sum(shard.batched_rows for shard in self.shards),
            "drained": sum(shard.drained for shard in self.shards),
            "rounds": merged_monitor.rounds,
            "round_latency_ms": merged_monitor.round_latency_ms.summary(),
            "encode_latency_ms": merged_monitor.encode_latency_ms.summary(),
            "transport_bytes": merged_monitor.transport_bytes.summary(),
            "transport_serialize_ms": merged_monitor.serialize_ms.summary(),
            "round_queue_depth": merged_monitor.queue_depth.summary(),
            "round_widths": [shard.round_width() for shard in self.shards],
            # Plain dicts (``ShardMonitorSnapshot.to_dict``), not dataclass
            # instances: the whole stats payload must survive ``json.dumps``
            # unchanged so the HTTP tier serves it without a custom encoder.
            "shard_monitors": [
                shard.monitor.snapshot().to_dict() for shard in self.shards
            ],
            "health": self.health(),
        }
