"""The KVRL attention encoder (Section IV-B, "Attention Mechanism").

A stack of attention blocks refines the input embedding matrix ``E0`` into
``E``; each block is masked self-attention (with the dynamic correlation mask
added to the logits) followed by a position-wise feed-forward network, with
residual connections and layer normalisation.  Because the mask only permits
attention to positions ``j <= i``, row ``t`` of the output depends only on
items that arrived up to time ``t`` — so a single full-length forward pass
yields exactly the per-time-step representations the streaming model needs.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.attention import MultiHeadAttention, RelativeCoords
from repro.nn.layers import Dropout, FeedForward, LayerNorm
from repro.nn.module import Module, ModuleList
from repro.nn.tensor import Tensor


class KVRLBlock(Module):
    """One attention block: masked self-attention + FFN, residual + LayerNorm."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        ffn_hidden: int,
        dropout: float = 0.1,
        rotary: bool = False,
        max_relative_positions: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.attention = MultiHeadAttention(
            d_model,
            num_heads=num_heads,
            dropout=dropout,
            rotary=rotary,
            max_relative_positions=max_relative_positions,
            rng=rng,
        )
        self.feed_forward = FeedForward(d_model, ffn_hidden, dropout=dropout, rng=rng)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.dropout = Dropout(dropout, rng=rng) if dropout > 0 else None

    def forward(
        self,
        x: Tensor,
        mask: Optional[np.ndarray] = None,
        store_attention: bool = False,
        coords: Optional[RelativeCoords] = None,
    ) -> Tensor:
        attended = self.attention(x, mask=mask, store_attention=store_attention, coords=coords)
        if self.dropout is not None:
            attended = self.dropout(attended)
        x = self.norm1(x + attended)
        transformed = self.feed_forward(x)
        return self.norm2(x + transformed)

    def forward_batch(
        self,
        x: Tensor,
        mask: Optional[np.ndarray] = None,
        phases: Optional[tuple] = None,
        delta: Optional[np.ndarray] = None,
        same: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Autograd twin of :meth:`forward` over a stacked ``(B, T, d)`` batch.

        One block of the cross-sample batched trainer: ``B`` independent
        samples' sequences (padded to a common length, each under its own
        ``(T, T)`` additive mask) run the attention, residual/norm and FFN
        tail as single batched GEMMs — all graph nodes, so gradients reach
        every block parameter.  Parity contract: sample ``b`` matches
        :meth:`forward` on that sample alone up to BLAS summation order (the
        1e-8 batched-vs-per-sample bound); exact parity additionally requires
        ``dropout == 0`` since the two layouts draw dropout masks in
        different shapes.
        """
        attended = self.attention.forward_batch(
            x, mask=mask, phases=phases, delta=delta, same=same
        )
        if self.dropout is not None:
            attended = self.dropout(attended)
        x = self.norm1(x + attended)
        transformed = self.feed_forward(x)
        return self.norm2(x + transformed)

    def forward_inference(
        self,
        x: np.ndarray,
        mask: Optional[np.ndarray] = None,
        store_attention: bool = False,
        return_kv: bool = False,
        coords: Optional[RelativeCoords] = None,
    ):
        """Raw-array evaluation pass (dropout is a no-op in eval mode).

        With ``return_kv`` the block also returns its per-head projected K/V
        arrays so streaming callers can seed their caches (rotary mode: keys
        are returned already phase-rotated, i.e. cache-ready).
        """
        if return_kv:
            attended, key, value = self.attention.forward_inference(
                x, mask=mask, store_attention=store_attention, return_kv=True, coords=coords
            )
        else:
            attended = self.attention.forward_inference(
                x, mask=mask, store_attention=store_attention, coords=coords
            )
        x = self.norm1.forward_inference(x + attended)
        transformed = self.feed_forward.forward_inference(x)
        out = self.norm2.forward_inference(x + transformed)
        if return_kv:
            return out, key, value
        return out

    def forward_inference_row(
        self,
        x_row: np.ndarray,
        query_row: np.ndarray,
        key_cache: np.ndarray,
        value_cache: np.ndarray,
        mask_row: Optional[np.ndarray] = None,
        bias_row: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One-row streaming pass given cached K/V of all visible rows.

        ``query_row`` is the new row's projected query and ``key_cache`` /
        ``value_cache`` must already include the new row's own k/v (all three
        come from :meth:`MultiHeadAttention.project_qkv_row`).  ``bias_row``
        is the optional per-head relative-position score bias (rotary mode).
        """
        attended = self.attention.attend_row(
            query_row, key_cache, value_cache, mask_row, bias_row=bias_row
        )
        x_row = self.norm1.forward_inference(x_row + attended)
        transformed = self.feed_forward.forward_inference(x_row)
        return self.norm2.forward_inference(x_row + transformed)

    def forward_inference_rows(
        self,
        x_rows: np.ndarray,
        query_rows: np.ndarray,
        key_pad: np.ndarray,
        value_pad: np.ndarray,
        mask_rows: Optional[np.ndarray] = None,
        bias_rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batched :meth:`forward_inference_row`: ``B`` independent streams.

        Each of the ``B`` rows attends only against its *own* stream's padded
        K/V cache (``key_pad`` / ``value_pad`` of shape
        ``(B, num_heads, T_max, d_head)``, padding masked out by
        ``mask_rows``), so stacking different streams is pure math-level
        batching — the per-stream numerics match the single-row path.  The
        residual/norm/FFN tail runs as ``(B, d_model)`` GEMMs.
        """
        attended = self.attention.attend_rows(
            query_rows, key_pad, value_pad, mask_rows, bias_rows=bias_rows
        )
        x = self.norm1.forward_inference(x_rows + attended)
        transformed = self.feed_forward.forward_inference(x)
        return self.norm2.forward_inference(x + transformed)


class KVRLEncoder(Module):
    """Stack of :class:`KVRLBlock` modules sharing one correlation mask."""

    def __init__(
        self,
        d_model: int,
        num_blocks: int,
        num_heads: int = 1,
        ffn_hidden: Optional[int] = None,
        dropout: float = 0.1,
        rotary: bool = False,
        max_relative_positions: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        ffn_hidden = ffn_hidden or 4 * d_model
        self.blocks = ModuleList(
            [
                KVRLBlock(
                    d_model,
                    num_heads,
                    ffn_hidden,
                    dropout=dropout,
                    rotary=rotary,
                    max_relative_positions=max_relative_positions,
                    rng=rng,
                )
                for _ in range(num_blocks)
            ]
        )

    def forward(
        self,
        embeddings: Tensor,
        mask: Optional[np.ndarray] = None,
        store_attention: bool = False,
        coords: Optional[RelativeCoords] = None,
    ) -> Tensor:
        """Refine ``embeddings`` of shape ``(T, d_model)`` under ``mask``."""
        x = embeddings
        for block in self.blocks:
            x = block(x, mask=mask, store_attention=store_attention, coords=coords)
        return x

    def forward_batch(
        self,
        embeddings: Tensor,
        mask: Optional[np.ndarray] = None,
        phases: Optional[tuple] = None,
        delta: Optional[np.ndarray] = None,
        same: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Autograd twin of :meth:`forward` for a stacked ``(B, T, d)`` batch.

        See :meth:`KVRLBlock.forward_batch` for the per-sample parity
        contract; the rotary ``phases`` are shared across blocks (positions
        do not change between blocks) so callers compute them once.
        """
        x = embeddings
        for block in self.blocks:
            x = block.forward_batch(x, mask=mask, phases=phases, delta=delta, same=same)
        return x

    def forward_inference(
        self,
        embeddings: np.ndarray,
        mask: Optional[np.ndarray] = None,
        store_attention: bool = False,
        coords: Optional[RelativeCoords] = None,
    ) -> np.ndarray:
        """Raw-array evaluation pass over the whole block stack."""
        x = embeddings
        for block in self.blocks:
            x = block.forward_inference(x, mask=mask, store_attention=store_attention, coords=coords)
        return x

    def attention_maps(self) -> List[np.ndarray]:
        """Attention weights of the last forward pass, one ``(H, T, T)`` array per block."""
        maps: List[np.ndarray] = []
        for block in self.blocks:
            weights = block.attention.last_attention
            if weights is not None:
                maps.append(weights)
        return maps
