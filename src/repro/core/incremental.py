"""Incremental KV-cached streaming encoder state for online serving.

The KVRL correlation mask is strictly causal: row ``i`` of every attention
block may only attend to rows ``j <= i``.  Therefore, in an *append-only*
window, the representation of every already-encoded row is final — a new
arrival can be encoded by computing just its own row through the block stack,
attending against cached per-block key/value projections.  That drops the
per-arrival cost of the online engine from O(W²·d) (full re-encode of a
window of W items) to O(W·d).

:class:`IncrementalEncoderState` caches, per attention block, the projected
K/V rows of every item currently in the context, plus the per-key fusion
states, and extends the correlation-mask row for each new arrival
incrementally (via :class:`~repro.core.correlation.CorrelationTracker`, the
same machinery the batched mask builder uses), so that :meth:`append`
produces exactly the fused representation a full re-encode of the same
window would produce.

Two eviction strategies, selected by ``KVECConfig.encoding``:

**Absolute scheme** (``encoding="absolute"``, the paper's formulation).
Exactness only holds while the window is append-only.  When the sliding
window evicts an item, every remaining row shifts: the time embedding is
indexed by the item's position *within the window*, the relative position
and membership indices are window-relative too, and per-key fusion restarts
from the first retained item.  A full re-encode of the shrunken window
therefore changes every row, and no O(W) update can reproduce it.  The cache
must be invalidated: :meth:`rebuild` re-encodes the remaining window in one
*batched no-grad pass* and reseeds all caches from it — saturated-window
serving stays O(W²·d) per arrival.  :attr:`rebuilds` counts these passes.

**Rotary scheme** (``encoding="rotary"``, the eviction-stable ring buffer).
Time and position information live on the attention side (rotary phase
rotation of Q/K by *global* arrival index plus a relative within-key
position bias; see :mod:`repro.nn.attention`), and the membership embedding
is a stable key hash, so an item's embedding, its cached (rotated) K/V rows
and its fused representation never depend on its current offset in the
window.  Each row's representation is **frozen at arrival**: it is computed
once, attending over the window contents at that moment (equivalently, over
the ``W`` most recent arrivals — a banded attention mask in global indices),
and never recomputed.  Eviction becomes :meth:`evict_oldest` — drop row 0
and shift the caches left, an O(W·d) memmove — and the next arrival appends
one O(W·d) row; **no rebuild ever happens**, so saturated-window serving is
O(W·d) per arrival.  Per-key fusion states and latest representations
survive eviction (the fusion folds a key's *entire stream*, exactly like a
full-history reference encode under the banded mask).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.core.correlation import CorrelationTracker
from repro.data.items import Item
from repro.nn.attention import MASK_VALUE, RelativeCoords

#: Initial per-block cache capacity when none is given.
_DEFAULT_CAPACITY = 64


class IncrementalEncoderState:
    """Streaming KV cache over a bounded window of a tangled item stream.

    Parameters
    ----------
    model:
        A :class:`~repro.core.model.KVEC` instance (only its no-grad
        inference methods are used; no autograd graph is ever built).  The
        model's ``config.encoding`` selects the eviction strategy (see the
        module docstring).
    capacity:
        Expected maximum number of context rows (e.g. the engine's
        ``window_items``).  Caches grow automatically if exceeded.
    """

    def __init__(self, model, capacity: Optional[int] = None) -> None:
        self.model = model
        self._scheme = getattr(model.config, "encoding", "absolute")
        self._use_relative = (
            self._scheme == "rotary" and model.config.use_time_embeddings
        )
        self._capacity = max(int(capacity or _DEFAULT_CAPACITY), 1)
        self._num_blocks = len(model.encoder.blocks)
        #: Batched full re-encodes performed (absolute-scheme evictions only).
        self.rebuilds = 0
        #: Rows dropped via :meth:`evict_oldest` (rotary scheme only).
        self.evictions = 0
        self._check_absolute_bound(self._capacity)
        self._allocate_caches(self._capacity)
        self._clear_bookkeeping()

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def _check_absolute_bound(self, rows: int) -> None:
        """Fail fast when the absolute scheme cannot label ``rows`` rows.

        The absolute time-embedding table has ``max_time`` entries; rows
        beyond it would silently alias the last embedding.  Rejecting at the
        boundary (instead of deep inside an ``Embedding`` lookup, or not at
        all) is the contract the serving engine relies on.
        """
        max_time = getattr(self.model.config, "max_time", None)
        if self._scheme == "absolute" and max_time is not None and rows > max_time:
            raise ValueError(
                f"absolute encoding supports at most max_time={max_time} cached "
                f"rows, requested {rows}; raise KVECConfig.max_time or switch to "
                f"encoding='rotary' for unbounded streams"
            )

    def _allocate_caches(self, capacity: int) -> None:
        self._k_cache: List[np.ndarray] = []
        self._v_cache: List[np.ndarray] = []
        for block in self.model.encoder.blocks:
            attention = block.attention
            shape = (attention.num_heads, capacity, attention.d_head)
            self._k_cache.append(np.empty(shape, dtype=np.float64))
            self._v_cache.append(np.empty(shape, dtype=np.float64))
        self._capacity = capacity

    def _clear_bookkeeping(self) -> None:
        self._length = 0
        #: Global arrival index of ring row 0 (== rows evicted so far).
        self._base = 0
        self._key_order: Dict[Hashable, int] = {}
        self._key_counts: Dict[Hashable, int] = {}
        self._row_keys: List[Hashable] = []
        self._row_ranks: List[int] = []
        self._fused_rows: List[np.ndarray] = []
        self._fusion_states: Dict[Hashable, tuple] = {}
        self._latest_rep: Dict[Hashable, np.ndarray] = {}
        config = self.model.config
        self._tracker = CorrelationTracker(
            session_field=self.model.spec.session_field,
            use_key_correlation=config.use_key_correlation,
            use_value_correlation=config.use_value_correlation,
        )

    def _grow(self, minimum: int) -> None:
        self._check_absolute_bound(minimum)
        capacity = self._capacity
        while capacity < minimum:
            capacity *= 2
        if capacity == self._capacity:
            return
        for index in range(self._num_blocks):
            for caches in (self._k_cache, self._v_cache):
                old = caches[index]
                grown = np.empty((old.shape[0], capacity, old.shape[2]), dtype=np.float64)
                grown[:, : self._length, :] = old[:, : self._length, :]
                caches[index] = grown
        self._capacity = capacity

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._length

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def fused_rows(self) -> List[np.ndarray]:
        """Per-row fused key representation ``s_k^{(t)}``, in arrival order."""
        return self._fused_rows

    def row_key(self, index: int) -> Hashable:
        return self._row_keys[index]

    def key_index(self, key: Hashable) -> int:
        """0-based first-appearance rank of ``key`` in the cached context.

        Absolute scheme: resets with every rebuild, so it matches the key
        order of the window materialised as a
        :class:`~repro.data.items.TangledSequence`.  Rotary scheme: never
        resets, so it matches the key order of the full retained history —
        in both cases exactly the order the reference path's records use.
        """
        return self._key_order[key]

    def fused_row(self, index: int) -> np.ndarray:
        return self._fused_rows[index]

    def latest_representation(self, key: Hashable) -> Optional[np.ndarray]:
        """The key's fused representation after its newest item.

        Under the rotary scheme this survives window eviction (fusion folds
        the key's whole stream); under the absolute scheme it is forgotten by
        the rebuild that follows an eviction of the key's last cached item.
        """
        return self._latest_rep.get(key)

    def kv_cache_view(self, block_index: int):
        """The live ``(K, V)`` cache slices of one block (for tests/diagnostics)."""
        return (
            self._k_cache[block_index][:, : self._length, :],
            self._v_cache[block_index][:, : self._length, :],
        )

    # ------------------------------------------------------------------ #
    # streaming updates
    # ------------------------------------------------------------------ #
    def _register_item(self, item: Item, index: int):
        """Register row ``index``'s stream coordinates — the single source of
        truth for per-item bookkeeping, shared by :meth:`append` and
        :meth:`rebuild` so their exactness cannot drift apart.

        Returns ``(embedding_row, via_key, via_value)``: the item's raw
        embedding and the earlier *global* positions visible to it through
        each correlation type (global == window-local while ``_base`` is 0,
        i.e. always, for the absolute scheme).
        """
        key = item.key
        key_index = self._key_order.setdefault(key, len(self._key_order))
        position = self._key_counts.get(key, 0)
        self._key_counts[key] = position + 1
        row = self.model.input_embedding.embed_item_inference(
            item, key_index=key_index, position=position, time_index=self._base + index
        )
        via_key, via_value = self._tracker.observe(key, item.value)
        self._row_keys.append(key)
        self._row_ranks.append(position)
        return row, via_key, via_value

    @staticmethod
    def _fill_mask_row(row: np.ndarray, index: int, via_key, via_value) -> None:
        """Zero the visible positions of one additive mask row in place.

        Shared by :meth:`append` and :meth:`rebuild` so the visibility rule
        cannot drift between the two paths.
        """
        row[index] = 0.0
        if via_key:
            row[via_key] = 0.0
        if via_value:
            row[via_value] = 0.0

    def _fuse_row(self, key: Hashable, encoded_row: np.ndarray) -> np.ndarray:
        """Fold one encoded row into its key's fusion state and record it.

        Shared by :meth:`append` and :meth:`rebuild` so the fusion replay
        cannot drift between the two paths.
        """
        representation = self.model.fusion_step_inference(self._fusion_states, key, encoded_row)
        self._latest_rep[key] = representation
        self._fused_rows.append(representation)
        return representation

    def append(self, item: Item) -> np.ndarray:
        """Encode one new arrival in O(W·d) and return its fused representation.

        The new row's embedding, mask row, per-block attention (against the
        cached K/V of every earlier row) and fusion step are computed; nothing
        already cached is touched, which is exact because the mask is causal.
        """
        index = self._length
        self._check_absolute_bound(self._base + index + 1)
        if index >= self._capacity:
            self._grow(index + 1)

        key = item.key
        row, via_key, via_value = self._register_item(item, index)
        mask_row = np.full(index + 1, MASK_VALUE, dtype=np.float64)
        base = self._base
        if base:
            via_key = [p - base for p in via_key]
            via_value = [p - base for p in via_value]
        self._fill_mask_row(mask_row, index, via_key, via_value)

        position = None
        delta_row = None
        same_row = None
        if self._use_relative:
            position = float(base + index)
            reference = self.model.encoder.blocks[0].attention
            delta_row = reference.clip_rank_delta(
                self._row_ranks[-1] - np.asarray(self._row_ranks, dtype=np.int64)
            )
            same_row = np.fromiter(
                (row_key == key for row_key in self._row_keys),
                dtype=np.float64,
                count=index + 1,
            )

        for block_index, block in enumerate(self.model.encoder.blocks):
            query, k_row, v_row = block.attention.project_qkv_row(row, position=position)
            self._k_cache[block_index][:, index, :] = k_row
            self._v_cache[block_index][:, index, :] = v_row
            bias_row = (
                block.attention.relative_bias_row(delta_row, same_row)
                if self._use_relative
                else None
            )
            row = block.forward_inference_row(
                row,
                query,
                self._k_cache[block_index][:, : index + 1, :],
                self._v_cache[block_index][:, : index + 1, :],
                mask_row,
                bias_row=bias_row,
            )

        representation = self._fuse_row(key, row)
        self._length += 1
        return representation

    def evict_oldest(self) -> Hashable:
        """Drop row 0 from the ring in O(W·d); returns the evicted key.

        Only valid under the rotary scheme, whose cached rows are invariant
        to their window offset: the remaining K/V rows are simply shifted
        left one slot and every other per-row record pops its front entry.
        Per-key fusion states, latest representations and the global key
        order deliberately survive — the rotary semantics freeze each row at
        arrival, so history beyond the window still shapes later rows of the
        same key exactly as a full banded re-encode of the retained stream
        would.
        """
        if self._scheme != "rotary":
            raise RuntimeError(
                "evict_oldest() requires encoding='rotary'; the absolute scheme "
                "must rebuild() after an eviction"
            )
        if self._length == 0:
            raise IndexError("evict_oldest() on an empty cache")
        key = self._row_keys.pop(0)
        self._row_ranks.pop(0)
        self._fused_rows.pop(0)
        length = self._length
        for block_index in range(self._num_blocks):
            for caches in (self._k_cache, self._v_cache):
                cache = caches[block_index]
                cache[:, : length - 1, :] = cache[:, 1:length, :]
        self._tracker.forget_oldest(key, self._base)
        self._base += 1
        self._length -= 1
        self.evictions += 1
        return key

    def rebuild(self, items: Sequence[Item]) -> None:
        """Invalidate every cache and re-encode ``items`` in one batched pass.

        Called by the engine after a window eviction under the **absolute**
        scheme (see the module docstring).  The batched no-grad pass
        recomputes the embeddings, the full correlation mask, each block's
        K/V projections (which reseed the caches) and the per-key fusion
        replay.  Under the rotary scheme this reseeds the state as if
        ``items`` were a fresh stream (arrival indices restart at 0) — the
        serving engine never needs it, but tests use it to cross-check
        :meth:`append` against the batched encoder.
        """
        self._clear_bookkeeping()
        self.rebuilds += 1
        items = list(items)
        if not items:
            return
        length = len(items)
        self._check_absolute_bound(length)
        if length > self._capacity:
            self._grow(length)

        model = self.model
        embeddings = np.empty((length, model.config.d_model), dtype=np.float64)
        mask = np.full((length, length), MASK_VALUE, dtype=np.float64)
        for index, item in enumerate(items):
            embeddings[index], via_key, via_value = self._register_item(item, index)
            self._fill_mask_row(mask[index], index, via_key, via_value)

        coords = None
        if self._use_relative:
            coords = RelativeCoords(
                positions=np.arange(length, dtype=np.float64),
                key_ranks=np.asarray(self._row_ranks, dtype=np.int64),
                key_codes=np.asarray(
                    [self._key_order[key] for key in self._row_keys], dtype=np.int64
                ),
            )

        x = embeddings
        for block_index, block in enumerate(model.encoder.blocks):
            x, keys, values = block.forward_inference(
                x, mask=mask, return_kv=True, coords=coords
            )
            self._k_cache[block_index][:, :length, :] = keys
            self._v_cache[block_index][:, :length, :] = values

        for index in range(length):
            self._fuse_row(self._row_keys[index], x[index])

        self._length = length
