"""Tests for saving and restoring trained KVEC models."""

import numpy as np
import pytest

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.config import KVECConfig
from repro.core.model import KVEC


class TestCheckpointRoundTrip:
    def test_predictions_identical_after_reload(self, trained_tiny_kvec, tmp_path):
        model = trained_tiny_kvec["model"]
        splits = trained_tiny_kvec["splits"]
        directory = save_checkpoint(model, tmp_path / "kvec")
        restored = load_checkpoint(directory)

        original_records = model.predict_tangle(splits["test"][0])
        restored_records = restored.predict_tangle(splits["test"][0])
        assert [(r.key, r.predicted, r.halt_observation) for r in original_records] == [
            (r.key, r.predicted, r.halt_observation) for r in restored_records
        ]

    def test_config_and_schema_preserved(self, trained_tiny_kvec, tmp_path):
        model = trained_tiny_kvec["model"]
        restored = load_checkpoint(save_checkpoint(model, tmp_path / "kvec"))
        assert restored.config == model.config
        assert restored.spec == model.spec
        assert restored.num_classes == model.num_classes

    def test_weights_actually_copied(self, trained_tiny_kvec, tmp_path):
        model = trained_tiny_kvec["model"]
        restored = load_checkpoint(save_checkpoint(model, tmp_path / "kvec"))
        for (name, original), (_, copy) in zip(
            sorted(model.named_parameters()), sorted(restored.named_parameters())
        ):
            assert np.allclose(original.data, copy.data), name

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "does-not-exist")

    def test_shape_mismatch_detected(self, trained_tiny_kvec, tmp_path, simple_spec):
        model = trained_tiny_kvec["model"]
        directory = save_checkpoint(model, tmp_path / "kvec")
        # Tamper with the stored config so the rebuilt model has other shapes.
        config_file = directory / "config.json"
        import json

        payload = json.loads(config_file.read_text())
        payload["config"]["d_model"] = payload["config"]["d_model"] * 2
        payload["config"]["num_heads"] = 1
        config_file.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_checkpoint(directory)

    def test_untrained_model_round_trip(self, simple_spec, tmp_path):
        config = KVECConfig(d_model=8, num_blocks=1, num_heads=1, ffn_hidden=16, d_state=12,
                            dropout=0.0, epochs=1, batch_size=2)
        model = KVEC(simple_spec, 3, config)
        restored = load_checkpoint(save_checkpoint(model, tmp_path / "fresh"))
        assert restored.num_classes == 3

    def test_rotary_encoding_round_trip(self, simple_spec, tmp_path):
        """The eviction-stable scheme (extra rel_bias params, no absolute
        position/time tables) must checkpoint and reload losslessly."""
        config = KVECConfig(d_model=8, num_blocks=2, num_heads=2, ffn_hidden=16, d_state=12,
                            dropout=0.0, encoding="rotary", epochs=1, batch_size=2)
        model = KVEC(simple_spec, 3, config)
        restored = load_checkpoint(save_checkpoint(model, tmp_path / "rotary"))
        assert restored.config.encoding == "rotary"
        assert restored.input_embedding.position_embedding is None
        np.testing.assert_array_equal(
            restored.encoder.blocks[0].attention.rel_bias.weight.data,
            model.encoder.blocks[0].attention.rel_bias.weight.data,
        )
