"""Randomized chaos fuzz of the fault-tolerance layer (``stress`` marker).

Seeded end-to-end fuzzing on top of the deterministic suite in
``test_supervisor.py``: each case draws a random workload plus a random
mix of injected faults (raise / kill / delay at random serving boundaries,
random cadence), forces mid-run shard kills on every shard, runs under both
executors, and asserts the chaos gate:

* recovery parity — first emissions for every arrival that was actually
  admitted and not lost to a crashed round match a reference cluster that
  never saw the lost/unadmitted arrivals, bit-for-bit;
* liveness — no drain/flush call blocks past a generous wall-clock bound,
  and the backlog fully drains once the faults are exhausted;
* sink isolation — a permanently failing sink subscribed during the chaos
  never changes the returned decisions.

Deselected by default (``pytest.ini`` addopts); run with ``-m stress`` —
the weekly CI stress job does.
"""

import time

import numpy as np
import pytest

from repro.core.config import KVECConfig
from repro.core.model import KVEC
from repro.data.items import Item, ValueSpec
from repro.data.stream import StreamEvent
from repro.serving.cluster import ClusterConfig, ServingCluster
from repro.serving.engine import EngineConfig
from repro.serving.faults import FAULT_SITES, FaultInjectingSink, FaultInjector, FaultSpec
from repro.serving.supervisor import CheckpointConfig, SupervisorConfig

pytestmark = pytest.mark.stress

SPEC = ValueSpec(field_names=("size", "direction"), cardinalities=(8, 2), session_field=1)

TOLERANCE = 1e-9

#: One liveness bound for every cluster call in the fuzz — generous, but a
#: wedged drain would block forever without the supervision layer.
CALL_BUDGET_S = 30.0


def make_model(seed: int = 3) -> KVEC:
    config = KVECConfig(
        d_model=12,
        num_blocks=2,
        num_heads=2,
        ffn_hidden=20,
        d_state=16,
        dropout=0.0,
        encoding="rotary",
        seed=seed,
    )
    return KVEC(SPEC, num_classes=3, config=config)


def multi_stream_events(seed: int, num_events: int, num_streams: int = 6, num_keys: int = 5):
    rng = np.random.default_rng(seed)
    streams = [f"stream-{i}" for i in range(num_streams)]
    events = []
    clock = 0.0
    for _ in range(num_events):
        clock += 1.0
        stream_id = streams[int(rng.integers(num_streams))]
        item = Item(
            f"k{rng.integers(num_keys)}",
            (int(rng.integers(8)), int(rng.integers(2))),
            clock,
        )
        events.append(StreamEvent(time=clock, item=item, source=stream_id))
    return events


def random_fault_specs(rng, num_shards: int):
    """A random, always-exhaustible fault mix (every spec carries a limit)."""
    specs = []
    for _ in range(int(rng.integers(2, 6))):
        site = FAULT_SITES[int(rng.integers(len(FAULT_SITES) - 1))]  # not sink-publish
        action = ("raise", "kill")[int(rng.integers(2))]
        specs.append(
            FaultSpec(
                site=site,
                action=action,
                shard_id=int(rng.integers(num_shards)),
                after=int(rng.integers(0, 20)),
                limit=int(rng.integers(1, 3)),
                probability=float(rng.uniform(0.5, 1.0)),
            )
        )
    return specs


def first_emissions(decisions):
    firsts = {}
    for stream_decision in decisions:
        key = (stream_decision.stream_id, stream_decision.decision.key)
        if key not in firsts:
            firsts[key] = stream_decision.decision
    return firsts


def assert_chaos_parity(got, reference, casualties):
    """The multi-crash recovery gate.

    With several overlapping recoveries an arrival can be served (decision
    emitted), rewound past by one recovery and then *lost* by a later crash —
    its pre-crash emission is an orphan no reference run reproduces, so exact
    first-emission parity (the single-crash gate in ``test_supervisor.py``)
    does not apply.  What recovery does guarantee: the journal replay
    re-serves every surviving arrival against the rewound state, so the
    reference's first emission for every key appears bit-for-bit among the
    chaos run's emissions, and any key the chaos run decided that the
    reference never saw must trace to a lost/unadmitted arrival.
    """
    ref_firsts = first_emissions(reference)
    got_by_key = {}
    for stream_decision in got:
        key = (stream_decision.stream_id, stream_decision.decision.key)
        got_by_key.setdefault(key, []).append(stream_decision.decision)
    casualty_keys = {(stream_id, event.item.key) for stream_id, event in casualties}
    for key in got_by_key:
        assert key in ref_firsts or key in casualty_keys, key
    for key, ref in ref_firsts.items():
        candidates = got_by_key.get(key)
        assert candidates, key
        assert any(
            candidate.predicted == ref.predicted
            and abs(candidate.confidence - ref.confidence) <= TOLERANCE
            and candidate.observations == ref.observations
            and candidate.decision_time == ref.decision_time
            for candidate in candidates
        ), key


def timed(fn):
    """Run a cluster call under the liveness budget; return its decisions."""
    start = time.perf_counter()
    result = fn()
    assert time.perf_counter() - start < CALL_BUDGET_S
    return result


def settle(cluster) -> list:
    """Flush until every queue is empty (faults exhausted, probes allowed)."""
    emitted = []
    deadline = time.monotonic() + CALL_BUDGET_S
    while True:
        emitted.extend(timed(cluster.flush))
        if sum(shard.queue_depth for shard in cluster.shards) == 0:
            break
        assert time.monotonic() < deadline, "backlog never drained"
        time.sleep(0.01)  # let breaker backoffs elapse before the next probe
    return emitted


def run_chaos(seed: int, executor: str):
    """One fuzz case.  Returns (survivor events, chaos decisions, health)."""
    rng = np.random.default_rng(seed)
    num_shards = int(rng.integers(2, 4))
    events = multi_stream_events(seed, num_events=int(rng.integers(150, 300)))
    # The random mix plus one permanently failing sink (quarantine fodder).
    specs = random_fault_specs(rng, num_shards) + [FaultSpec(site="sink-publish")]
    injector = FaultInjector(seed=seed, specs=specs)
    # ``process-pipe`` / ``process-shm`` labels pin the round transport so the
    # chaos gate also covers ring reallocation across SIGKILL recoveries.
    executor, _, transport = executor.partition("-")
    config = ClusterConfig(
        num_shards=num_shards,
        batch_size=int(rng.integers(2, 6)),
        max_queue=4096,
        executor=executor,
        **({"transport": transport} if transport else {}),
        supervision=SupervisorConfig(
            checkpoint=CheckpointConfig(every_rounds=int(rng.integers(1, 8))),
            failure_threshold=2,
            backoff_base_s=0.005,
            backoff_max_s=0.05,
            degraded="shed",
        ),
        faults=injector,
        engine=EngineConfig(window_items=7, halt_threshold=0.5, reencode_every=2),
    )
    model = make_model()
    cluster = ServingCluster(model, SPEC, config)
    broken_sink = cluster.subscribe(FaultInjectingSink(injector))

    got = []
    unadmitted = []
    kill_at = len(events) // 2
    for index, event in enumerate(events):
        if index == kill_at:
            # Forced mid-run crash on every shard, on its next encode.
            for shard in cluster.shards:
                injector.add(
                    FaultSpec(
                        site="session-encode", action="kill", shard_id=shard.shard_id, limit=1
                    )
                )
        result = cluster.submit(event, raise_on_reject=False)
        if result.dropped:
            unadmitted.append((event.source, event))
        got.extend(result)
        if rng.random() < 0.05:
            got.extend(timed(cluster.drain))
    got.extend(settle(cluster))

    lost = [
        (stream_id, event)
        for shard in cluster.shards
        for stream_id, event in shard.supervisor.lost_entries
    ]
    health = cluster.health()
    cluster.close()

    # The reference never sees arrivals the chaos run lost or never admitted.
    casualties = lost + unadmitted
    survivors = list(events)
    for stream_id, casualty in casualties:
        for index, event in enumerate(survivors):
            if event == casualty and event.source == stream_id:
                del survivors[index]
                break
    return survivors, got, health, casualties


@pytest.mark.parametrize(
    "executor", ["serial", "thread", "process-pipe", "process-shm"]
)
@pytest.mark.parametrize("seed", [101, 202, 303])
def test_randomized_chaos_recovery_parity(seed, executor):
    survivors, got, health, casualties = run_chaos(seed, executor)
    # The forced per-shard kills guarantee real crash/recovery coverage.
    assert health["restores"] >= 1
    assert health["failures"] >= 1
    # The permanently failing sink was quarantined, never propagated.
    assert health["quarantined_sinks"] >= 1

    model = make_model()
    reference_cluster = ServingCluster(
        model,
        SPEC,
        ClusterConfig(
            num_shards=2,
            batch_size=4,
            max_queue=4096,
            engine=EngineConfig(window_items=7, halt_threshold=0.5, reencode_every=2),
        ),
    )
    reference = []
    for event in survivors:
        reference.extend(reference_cluster.submit(event))
    reference.extend(reference_cluster.flush())
    reference_cluster.close()
    assert_chaos_parity(got, reference, casualties)


@pytest.mark.parametrize("seed", [11, 22])
def test_chaos_with_round_deadlines_stays_live(seed):
    """Delay faults under a short round deadline: drains return within the
    budget (abandonment, not blocking) and the cluster keeps serving."""
    rng = np.random.default_rng(seed)
    events = multi_stream_events(seed, num_events=80)
    injector = FaultInjector(
        seed=seed,
        specs=[
            FaultSpec(
                site="session-encode",
                action="delay",
                delay_s=20.0,
                shard_id=int(rng.integers(2)),
                after=int(rng.integers(0, 10)),
                limit=1,
            )
        ],
    )
    cluster = ServingCluster(
        make_model(),
        SPEC,
        ClusterConfig(
            num_shards=2,
            batch_size=4,
            max_queue=4096,
            auto_drain=False,
            executor="thread",
            supervision=SupervisorConfig(
                round_deadline_s=0.25,
                checkpoint=CheckpointConfig(every_rounds=2),
                failure_threshold=3,
                backoff_base_s=0.005,
                backoff_max_s=0.05,
            ),
            faults=injector,
            engine=EngineConfig(window_items=7, halt_threshold=0.5, reencode_every=2),
        ),
    )
    for event in events:
        cluster.submit(event)
        if rng.random() < 0.2:
            timed(cluster.drain)
    settle(cluster)
    health = cluster.health()
    assert health["deadline_abandons"] >= 1
    assert health["restores"] >= 1
    assert sum(shard.queue_depth for shard in cluster.shards) == 0
    cluster._executor.join_timeout = 0.1  # don't wait out the wedged sleeper
    with pytest.warns(RuntimeWarning, match="leaked"):
        cluster.close()
