"""Robustness to data corruption and comparison against non-neural baselines.

Run with::

    python examples/robustness_and_baselines.py

Two questions a practitioner asks before adopting KVEC:

* "How does it compare to much simpler, non-neural early classifiers?"
  — we train the prefix-based nearest-centroid baseline and the feature-based
  indicator baseline from :mod:`repro.baselines` on the same tangled streams.
* "What happens when the input stream is corrupted?" — we re-evaluate the
  trained KVEC model on test flows with simulated packet loss and reordering
  (the :mod:`repro.data.augment` transforms).

Bootstrap confidence intervals from :mod:`repro.eval.significance` put the
differences in context at this small, CPU-friendly scale.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import IndicatorClassifier, IndicatorConfig, NearestPrefixClassifier, NearestPrefixConfig
from repro.core import KVECConfig
from repro.data.augment import drop_items, local_swap
from repro.data.items import KeyValueSequence
from repro.data.tangle import retangle_by_concurrency
from repro.datasets import make_traffic_fg
from repro.eval import compare_methods, summarize
from repro.eval.confusion import classification_report
from repro.eval.estimators import KVECEstimator
from repro.eval.evaluator import evaluate_method, prepare_tangled_splits


def corrupt_tangles(splits, drop_probability, swap_probability, seed=0):
    """Rebuild the test tangles from corrupted copies of their flows."""
    rng = np.random.default_rng(seed)
    corrupted = []
    for tangle in splits.test:
        for sequence in tangle.per_key_sequences().values():
            damaged = drop_items(sequence, drop_probability, rng=rng, min_remaining=3)
            damaged = local_swap(damaged, swap_probability, rng=rng)
            corrupted.append(KeyValueSequence(damaged.key, list(damaged.items), damaged.label))
    return retangle_by_concurrency(corrupted, splits.spec, 4, rng=np.random.default_rng(seed + 1))


def main() -> None:
    dataset = make_traffic_fg(num_flows=84, seed=11)
    splits = prepare_tangled_splits(dataset, concurrency=4, seed=0)

    # ------------------------------------------------------------------ #
    # 1. Train KVEC and the two non-neural baselines
    # ------------------------------------------------------------------ #
    kvec_config = KVECConfig(
        d_model=24, num_blocks=2, num_heads=2, d_state=32, dropout=0.0,
        epochs=12, batch_size=8, learning_rate=3e-3, beta=0.001,
    )
    methods = {
        "KVEC": KVECEstimator(splits.spec, splits.num_classes, kvec_config),
        "NearestPrefix": NearestPrefixClassifier(
            splits.spec, splits.num_classes, NearestPrefixConfig(margin=0.02)
        ),
        "Indicator": IndicatorClassifier(
            splits.spec, splits.num_classes, IndicatorConfig(min_support=3, min_precision=0.7)
        ),
    }
    records_by_method = {}
    print("=== method comparison (clean test stream) ===")
    for name, method in methods.items():
        result = evaluate_method(method, splits)
        records_by_method[name] = result.records
        summary = result.summary
        print(
            f"{name:<14} accuracy={summary.accuracy:6.2%}  earliness={summary.earliness:6.2%}  "
            f"HM={summary.harmonic_mean:.3f}"
        )
    print()
    print(compare_methods(records_by_method, metric="accuracy", samples=300))
    print()
    print("per-class report of KVEC on the clean stream:")
    print(classification_report(records_by_method["KVEC"], num_classes=splits.num_classes))

    # ------------------------------------------------------------------ #
    # 2. Robustness: re-evaluate the trained KVEC under corruption
    # ------------------------------------------------------------------ #
    print()
    print("=== robustness of the trained KVEC model ===")
    kvec = methods["KVEC"]
    for drop, swap in [(0.0, 0.0), (0.1, 0.1), (0.25, 0.25)]:
        tangles = splits.test if drop == swap == 0.0 else corrupt_tangles(splits, drop, swap)
        records = kvec.predict_all(tangles)
        summary = summarize(records)
        print(
            f"packet loss={drop:4.0%} reorder={swap:4.0%}  ->  "
            f"accuracy={summary.accuracy:6.2%}  earliness={summary.earliness:6.2%}  "
            f"HM={summary.harmonic_mean:.3f}"
        )


if __name__ == "__main__":
    main()
