"""SRN-EARLIEST: EARLIEST with its LSTM replaced by a Transformer encoder.

This is the strongest baseline in the paper's comparison: it shares KVEC's
embedding + attention machinery (the Sequence Representation Network), but
encodes each key-value sequence independently, so it cannot exploit
correlations across the concurrent sequences of a tangled stream.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.encoders import SRNEncoder
from repro.baselines.rl_policy import RLBaselineConfig, RLHaltingClassifier
from repro.data.items import ValueSpec


class SRNEarliest(RLHaltingClassifier):
    """SRN encoder + RL halting policy (SRN-EARLIEST in the paper)."""

    name = "SRN-EARLIEST"

    def __init__(
        self,
        spec: ValueSpec,
        num_classes: int,
        config: Optional[RLBaselineConfig] = None,
    ) -> None:
        config = config or RLBaselineConfig()
        encoder = SRNEncoder(
            spec,
            d_model=config.d_model,
            num_blocks=config.num_blocks,
            num_heads=config.num_heads,
            dropout=config.dropout,
            rng=np.random.default_rng(config.seed + 13),
        )
        super().__init__(encoder, num_classes, config)
