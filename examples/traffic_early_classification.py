"""Scenario: early classification of encrypted network flows.

This mirrors the paper's networking motivation (Fig. 1, scenario 2): a router
observes a tangled stream of packets from many concurrent flows and must
assign an application type to each flow as early as possible, so that routing
and QoS decisions can be taken while the flow is still young.

The script compares KVEC against the strongest baseline (SRN-EARLIEST, which
models every flow independently) on the Traffic-App analogue and reports the
accuracy both methods reach at matched earliness.

Run with::

    python examples/traffic_early_classification.py
"""

from __future__ import annotations

from repro.baselines import SRNEarliest
from repro.baselines.rl_policy import RLBaselineConfig
from repro.core import KVECConfig
from repro.datasets import make_traffic_app
from repro.eval import KVECEstimator, summarize
from repro.eval.evaluator import evaluate_method, prepare_tangled_splits
from repro.eval.reporting import render_metric_table


def main() -> None:
    dataset = make_traffic_app(num_flows=70, seed=13)
    splits = prepare_tangled_splits(dataset, concurrency=4, seed=0)
    print(
        f"{dataset.name}: {len(dataset)} flows, {dataset.num_classes} application classes, "
        f"{len(splits.train)} training streams"
    )

    methods = {
        "KVEC": KVECEstimator(
            dataset.spec,
            dataset.num_classes,
            KVECConfig(
                d_model=24, num_blocks=2, num_heads=2, d_state=32, dropout=0.0,
                epochs=12, batch_size=8, learning_rate=3e-3, beta=0.001,
            ),
        ),
        "SRN-EARLIEST": SRNEarliest(
            dataset.spec,
            dataset.num_classes,
            RLBaselineConfig(d_model=24, num_blocks=2, epochs=8, learning_rate=2e-3, lam=0.001),
        ),
    }

    results = {}
    for name, method in methods.items():
        print(f"\ntraining {name} ...")
        evaluation = evaluate_method(method, splits)
        results[name] = evaluation.summary

    print("\n" + render_metric_table(results, title="Early classification of concurrent flows"))

    kvec, srn = results["KVEC"], results["SRN-EARLIEST"]
    print(
        f"\nKVEC classified flows after observing {kvec.earliness:.0%} of their packets "
        f"with accuracy {kvec.accuracy:.1%}; the per-flow baseline reached {srn.accuracy:.1%} "
        f"at earliness {srn.earliness:.0%}."
    )
    print(
        "KVEC's advantage comes from the tangled-stream correlations: concurrent flows of the "
        "same application share burst patterns, which the correlation-masked attention exploits "
        "when a flow has only revealed a handful of packets."
    )


if __name__ == "__main__":
    main()
