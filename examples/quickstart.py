"""Quickstart: train KVEC on a synthetic traffic dataset and classify early.

Run with::

    python examples/quickstart.py

The script generates a small USTC-TFC2016 analogue, splits it into
key-disjoint train/test tangled streams, trains KVEC for a handful of epochs
on CPU, and reports the accuracy / earliness / harmonic-mean trade-off the
paper studies.
"""

from __future__ import annotations

import numpy as np

from repro.core import KVEC, KVECConfig, KVECTrainer
from repro.datasets import make_ustc_tfc2016
from repro.eval import summarize
from repro.eval.evaluator import prepare_tangled_splits


def main() -> None:
    # 1. Generate a tangled key-value sequence dataset.  Each key is a network
    #    flow (a five-tuple); each value is (packet-size bucket, direction).
    dataset = make_ustc_tfc2016(num_flows=90, seed=7)
    print(f"dataset: {dataset.name}, {len(dataset)} flows, {dataset.num_classes} classes")

    # 2. Key-disjoint 8:1:1 split, then interleave each subset into tangled
    #    streams of 4 concurrent flows (the paper's evaluation protocol).
    splits = prepare_tangled_splits(dataset, concurrency=4, seed=0)
    print(f"tangled streams: train={len(splits.train)}, test={len(splits.test)}")

    # 3. Build and train KVEC.  The beta hyperparameter is the earliness knob:
    #    larger beta -> earlier (but potentially less accurate) decisions.
    config = KVECConfig(
        d_model=24,
        num_blocks=2,
        num_heads=2,
        d_state=32,
        dropout=0.0,
        epochs=15,
        batch_size=8,
        learning_rate=3e-3,
        alpha=0.1,
        beta=0.001,
    )
    model = KVEC(dataset.spec, dataset.num_classes, config)
    print(f"KVEC parameters: {model.num_parameters():,}")

    trainer = KVECTrainer(model)
    trainer.train(splits.train, verbose=True)

    # 4. Early-classify the held-out tangled streams.
    records = [record for tangle in splits.test for record in model.predict_tangle(tangle)]
    summary = summarize(records)
    print("\ntest results")
    print(f"  accuracy       : {summary.accuracy:.3f}")
    print(f"  precision      : {summary.precision:.3f}")
    print(f"  recall         : {summary.recall:.3f}")
    print(f"  F1             : {summary.f1:.3f}")
    print(f"  earliness      : {summary.earliness:.3f}  (fraction of each flow observed)")
    print(f"  harmonic mean  : {summary.harmonic_mean:.3f}")

    observed = np.mean([record.halt_observation for record in records])
    lengths = np.mean([record.sequence_length for record in records])
    print(f"\non average KVEC classified a flow after {observed:.1f} of {lengths:.1f} packets")


if __name__ == "__main__":
    main()
