"""Tests for scale presets, method factories and the experiment registry."""

import pytest

from repro.baselines.common import EarlyClassifier
from repro.experiments.methods import METHOD_ORDER, method_sweeps
from repro.experiments.presets import SCALES, get_scale
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.workloads import PERFORMANCE_DATASETS, build_scaled_dataset, dataset_splits


class TestPresets:
    def test_three_scales_registered(self):
        assert set(SCALES) == {"unit", "bench", "paper"}

    def test_get_scale_unknown_raises(self):
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_every_scale_covers_all_datasets(self):
        expected = {"USTC-TFC2016", "MovieLens-1M", "Traffic-FG", "Traffic-App", "Synthetic-Traffic"}
        for scale in SCALES.values():
            assert set(scale.dataset_keys) == expected

    def test_scales_are_ordered_by_size(self):
        unit, bench, paper = get_scale("unit"), get_scale("bench"), get_scale("paper")
        for name in unit.dataset_keys:
            assert unit.dataset_keys[name] <= bench.dataset_keys[name] <= paper.dataset_keys[name]
        assert unit.kvec.epochs <= bench.kvec.epochs <= paper.kvec.epochs

    def test_paper_scale_matches_published_settings(self):
        paper = get_scale("paper")
        assert paper.kvec.d_model == 128
        assert paper.kvec.num_blocks == 6
        assert paper.dataset_keys["Traffic-FG"] == 60000


class TestMethodFactories:
    def test_all_paper_methods_present(self, tiny_splits):
        sweeps = method_sweeps(tiny_splits["spec"], tiny_splits["num_classes"], get_scale("unit"))
        assert set(sweeps) == set(METHOD_ORDER)

    def test_factories_build_early_classifiers(self, tiny_splits):
        sweeps = method_sweeps(tiny_splits["spec"], tiny_splits["num_classes"], get_scale("unit"))
        for name, (factory, values) in sweeps.items():
            assert values, f"{name} has an empty sweep"
            method = factory(values[0])
            assert isinstance(method, EarlyClassifier)

    def test_kvec_factory_sets_beta(self, tiny_splits):
        sweeps = method_sweeps(tiny_splits["spec"], tiny_splits["num_classes"], get_scale("unit"))
        factory, _ = sweeps["KVEC"]
        assert factory(0.123).config.beta == pytest.approx(0.123)

    def test_fixed_factory_sets_tau(self, tiny_splits):
        sweeps = method_sweeps(tiny_splits["spec"], tiny_splits["num_classes"], get_scale("unit"))
        factory, _ = sweeps["SRN-Fixed"]
        assert factory(7.0).inner.halt_time == 7

    def test_shared_prefix_model_is_trained_once(self, tiny_splits):
        sweeps = method_sweeps(tiny_splits["spec"], tiny_splits["num_classes"], get_scale("unit"))
        factory, values = sweeps["SRN-Confidence"]
        first = factory(values[0])
        second = factory(values[-1])
        first.fit(tiny_splits["train"])
        second.fit(tiny_splits["train"])  # must reuse, not retrain
        assert first.shared is second.shared
        first_state = first.inner.state_dict()
        second_state = second.inner.state_dict()
        for name in first_state:
            assert (first_state[name] == second_state[name]).all()


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        identifiers = set(EXPERIMENTS)
        assert {"table1_dataset_stats", "table2_hyperparameters"} <= identifiers
        assert {f"fig{i}_" in "".join(identifiers) or True for i in range(3, 13)}
        assert len(identifiers) == 12

    def test_each_experiment_names_a_bench_target(self):
        for experiment in list_experiments():
            assert experiment.bench_target.startswith("benchmarks/bench_")

    def test_get_experiment_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99_nonexistent")


class TestWorkloads:
    def test_build_scaled_dataset_respects_key_counts(self):
        scale = get_scale("unit")
        dataset = build_scaled_dataset("USTC-TFC2016", scale)
        assert len(dataset) == scale.dataset_keys["USTC-TFC2016"]

    def test_dataset_splits_cached_per_scale(self):
        scale = get_scale("unit")
        first = dataset_splits("USTC-TFC2016", scale)
        second = dataset_splits("USTC-TFC2016", scale)
        assert first is second

    def test_performance_datasets_are_the_four_real_world_ones(self):
        assert PERFORMANCE_DATASETS == ("USTC-TFC2016", "MovieLens-1M", "Traffic-FG", "Traffic-App")
