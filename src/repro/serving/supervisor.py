"""Per-shard supervision: circuit breakers, checkpoints, crash recovery.

The cluster's shards are exact and parallel but — before this module —
brittle: an exception escaping a drain round propagated to the caller with
the shard's sessions half-mutated, a wedged round blocked ``drain()``
forever, and snapshots were manual whole-cluster operations.  This module
supplies the fault-tolerance layer:

* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine, per shard.  Consecutive round failures open the breaker; while
  open, the shard is skipped by cluster fan-outs and its streams see
  ``"degraded"`` submission outcomes; after an exponential backoff one probe
  round is allowed (half-open) and either closes the breaker or re-opens it
  with a doubled backoff.

* :class:`CheckpointConfig` / periodic checkpoints — every N successful
  rounds the supervisor deep-copies its shard's serving state (sessions,
  queue, counters — sharing the model weights, exactly like cluster
  snapshots, at shard granularity) and clears the shard's *admission
  journal* (every arrival admitted since the previous checkpoint).

* Crash recovery — any exception escaping a drain round means the shard's
  in-memory state can no longer be trusted.  The supervisor restores the
  last checkpoint bit-for-bit and rebuilds the arrival queue as

      ``checkpoint queue + journaled admissions − the dead round's arrivals``

  so the only arrivals *lost* are the ones consumed by the round that died
  (they are recorded in :attr:`ShardSupervisor.lost_entries`).  Journaled
  arrivals that earlier rounds had already served are re-queued and
  re-served against the rewound sessions: deterministic rounds make the
  replay reproduce the pre-crash decisions exactly, so delivery across a
  recovery is *at-least-once* (the gateway registry's first-emission rule
  dedups), and per-stream decisions for every non-lost arrival match a
  never-crashed reference bit-for-bit — the recovery-parity leg of the
  parity matrix pins this under every executor backend.  On the **process
  backend** recovery is additionally a *respawn*: restoring the checkpoint
  restarts the shard's worker process if it died (real SIGKILL, injected
  kill, hard crash) and reseeds its in-process replica from the restored
  sessions — same supervisor path, same epoch bookkeeping, genuinely dead
  worker.

* Round deadlines — the cluster's supervised fan-out waits on each shard
  job with a progress-aware deadline (``SupervisorConfig.round_deadline_s``):
  as long as rounds keep completing the wait continues, but a round that
  makes no progress for a full deadline window is *abandoned* — counted
  here, the wedged worker thread replaced
  (:meth:`~repro.serving.parallel.ThreadExecutor.abandon`), and the shard
  recovered from its checkpoint.  Preemptive abandonment needs the thread
  executor (a wedged inline round cannot be preempted from its own thread);
  the serial backend treats deadlines as diagnostic only.

Epochs: every recovery bumps :attr:`ShardSupervisor.epoch`.  Worker-side
round reports carry the epoch they started under, so a replaced (abandoned)
worker that eventually finishes its wedged round cannot corrupt the
recovered state's bookkeeping — its stale report is counted and dropped,
and the round's own bookkeeping tail (counters, monitor, lost-entry
tracking) is epoch-gated inside the shard so the zombie thread never
mutates the freshly restored objects.  Containment is two-layered: a
*looping* job on an abandoned thread (a shard drain) additionally polls
:meth:`~repro.serving.parallel.ThreadExecutor.current_context_abandoned`
between rounds and exits rather than re-entering the live queue under the
post-recovery epoch.

The supervisor holds no references into :mod:`repro.serving.cluster`
machinery beyond the shard object it supervises (state capture/restore are
shard methods), so this module stays import-cycle-free and independently
testable.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Hashable, List, Optional, Tuple

from repro.serving.monitoring import Log2Histogram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster imports us)
    from repro.data.stream import StreamEvent
    from repro.serving.cluster import ShardWorker

__all__ = [
    "BREAKER_STATES",
    "CheckpointConfig",
    "CircuitBreaker",
    "ShardSupervisor",
    "SupervisorConfig",
]

#: Circuit-breaker states: ``closed`` (healthy), ``open`` (failing — shed or
#: reject submissions, skip fan-out rounds until the backoff elapses),
#: ``half_open`` (backoff elapsed — one probe decides).
BREAKER_STATES = ("closed", "open", "half_open")


@dataclass
class CheckpointConfig:
    """Cadence of periodic per-shard checkpoints.

    Attributes
    ----------
    every_rounds:
        Take a checkpoint after this many successful drain rounds.  ``0``
        disables periodic checkpointing *and* admission journaling: the
        supervisor then only holds the checkpoint taken at shard birth (or
        at the latest cluster-level restore), so a crash recovery rewinds
        all the way back there and every arrival since is lost.  Keep it
        positive in deployments; the default trades one state deep-copy per
        64 rounds for a bounded recovery window.
    """

    every_rounds: int = 64

    def __post_init__(self) -> None:
        if self.every_rounds < 0:
            raise ValueError("every_rounds must be >= 0 (0 disables)")


@dataclass
class SupervisorConfig:
    """Knobs of per-shard supervision (one shared config, per-shard state).

    Attributes
    ----------
    checkpoint:
        Periodic checkpoint cadence (:class:`CheckpointConfig`).
    round_deadline_s:
        Progress deadline of supervised fan-out waits: a shard round that
        completes no work for this long is abandoned and the shard
        recovered.  ``None`` (default) waits forever — the pre-supervision
        behaviour.  Enforced preemptively only under ``executor="thread"``.
    failure_threshold:
        Consecutive round failures that open the shard's breaker.
    backoff_base_s / backoff_factor / backoff_max_s:
        Exponential backoff of open-breaker probe scheduling: the first
        open lasts ``backoff_base_s``, each re-open multiplies the wait by
        ``backoff_factor`` up to ``backoff_max_s``; a successful probe
        resets it.
    degraded:
        Admission policy for a breaker-open shard: ``"shed"`` drops the
        arrival with an explicit ``status="degraded"`` result, ``"reject"``
        raises :class:`~repro.serving.cluster.ShardDegradedError` (or
        returns the degraded status under ``raise_on_reject=False``).
    sink_quarantine_after:
        Consecutive publish failures after which a subscribed sink is
        quarantined (auto-unsubscribed) by its
        :class:`~repro.serving.sinks.FanOutSink`.
    clock:
        Monotonic time source for breaker backoff — injectable for tests.
    """

    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)
    round_deadline_s: Optional[float] = None
    failure_threshold: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    degraded: str = "shed"
    sink_quarantine_after: int = 3
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self) -> None:
        if self.round_deadline_s is not None and self.round_deadline_s <= 0:
            raise ValueError("round_deadline_s must be positive (or None)")
        if self.failure_threshold <= 0:
            raise ValueError("failure_threshold must be positive")
        if self.backoff_base_s <= 0:
            raise ValueError("backoff_base_s must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_max_s < self.backoff_base_s:
            raise ValueError("backoff_max_s must be >= backoff_base_s")
        if self.degraded not in ("shed", "reject"):
            raise ValueError(f"unknown degraded policy {self.degraded!r}")
        if self.sink_quarantine_after <= 0:
            raise ValueError("sink_quarantine_after must be positive")


class CircuitBreaker:
    """Closed → open → half-open failure gate with exponential backoff.

    Not internally locked: the owning :class:`ShardSupervisor` serializes
    all access under its own lock.
    """

    def __init__(self, config: SupervisorConfig) -> None:
        self._config = config
        self.state = "closed"
        self.consecutive_failures = 0
        self.opens = 0
        self._backoff = config.backoff_base_s
        self._retry_at = 0.0

    @property
    def current_backoff_s(self) -> float:
        """The backoff the *next* open would impose."""
        return self._backoff

    def allow(self) -> bool:
        """Whether work may run now; flips open → half-open at backoff end."""
        if self.state == "closed" or self.state == "half_open":
            return True
        if self._config.clock() >= self._retry_at:
            self.state = "half_open"
            return True
        return False

    def record_success(self) -> None:
        """A round completed: close the breaker and reset the backoff."""
        self.state = "closed"
        self.consecutive_failures = 0
        self._backoff = self._config.backoff_base_s

    def record_failure(self) -> None:
        """A round failed: maybe open, scheduling the next probe."""
        self.consecutive_failures += 1
        if (
            self.state == "half_open"
            or self.consecutive_failures >= self._config.failure_threshold
        ):
            self.state = "open"
            self.opens += 1
            self._retry_at = self._config.clock() + self._backoff
            self._backoff = min(
                self._backoff * self._config.backoff_factor,
                self._config.backoff_max_s,
            )

    def reset(self) -> None:
        """Back to pristine closed (e.g. after a cluster-level restore)."""
        self.state = "closed"
        self.consecutive_failures = 0
        self._backoff = self._config.backoff_base_s
        self._retry_at = 0.0


#: One journaled / lost arrival: ``(stream_id, event)``.
_Entry = Tuple[Hashable, "StreamEvent"]


class ShardSupervisor:
    """Failure containment and crash recovery for one shard worker.

    Owns the shard's circuit breaker, its checkpoint, and every failure
    counter the cluster's ``stats()["health"]`` view reports.  All
    bookkeeping runs under one lock; the heavyweight operations (checkpoint
    deep-copies, recovery restores) happen inside it too, trading brief
    contention for a race-free state machine (rounds of one shard are
    serialized anyway).
    """

    def __init__(self, shard: "ShardWorker", config: SupervisorConfig) -> None:
        self.shard = shard
        self.config = config
        self._lock = threading.Lock()
        self.breaker = CircuitBreaker(config)
        #: Bumped on every recovery; stale worker reports are dropped by it.
        self.epoch = 0
        #: Monotonic successful-round count — the fan-out's progress signal.
        #: Never rewound by recovery (it measures work, not state).
        self.rounds_completed = 0
        self._rounds_since_checkpoint = 0
        self.failures = 0
        self.restores = 0
        self.deadline_abandons = 0
        self.checkpoints = 0
        self.stale_reports = 0
        self.degraded_submits = 0
        self.last_error: Optional[str] = None
        #: Every arrival consumed by a round that died — the recovery
        #: casualties, in crash order (the parity tests subtract these from
        #: the reference workload).
        self.lost_entries: List[_Entry] = []
        self.recovery_ms = Log2Histogram()
        self._checkpoint: Dict[str, object] = {}
        with self._lock:
            self._take_checkpoint_locked()

    # ------------------------------------------------------------------ #
    # gating
    # ------------------------------------------------------------------ #
    def allow_round(self) -> bool:
        """Whether a drain round may run now (breaker gate + probe timing)."""
        with self._lock:
            return self.breaker.allow()

    def submission_allowed(self) -> bool:
        """Whether a new arrival may be admitted (False = degraded)."""
        with self._lock:
            return self.breaker.allow()

    def note_degraded_submit(self) -> None:
        with self._lock:
            self.degraded_submits += 1

    # ------------------------------------------------------------------ #
    # round reports (worker side, epoch-guarded)
    # ------------------------------------------------------------------ #
    def note_round_success(self, epoch: int) -> bool:
        """A round completed cleanly; maybe take a periodic checkpoint.

        Returns False (and counts a stale report) when ``epoch`` predates a
        recovery — the caller must then discard the round's emissions too,
        since the state they were computed against has been replaced.
        """
        with self._lock:
            if epoch != self.epoch:
                self.stale_reports += 1
                return False
            self.breaker.record_success()
            self.rounds_completed += 1
            cadence = self.config.checkpoint.every_rounds
            if cadence > 0:
                self._rounds_since_checkpoint += 1
                if self._rounds_since_checkpoint >= cadence:
                    self._take_checkpoint_locked()
            return True

    def on_round_failure(self, error: BaseException, epoch: int, lost: List[_Entry]) -> None:
        """A round raised: count, trip the breaker, recover from checkpoint."""
        with self._lock:
            if epoch != self.epoch:
                self.stale_reports += 1
                return
            self.failures += 1
            self.last_error = f"{type(error).__name__}: {error}"
            self.breaker.record_failure()
            self._recover_locked(lost)

    # ------------------------------------------------------------------ #
    # deadline abandonment (caller side, authoritative)
    # ------------------------------------------------------------------ #
    def on_deadline_abandon(self, deadline_s: float, lost: List[_Entry]) -> None:
        """A round made no progress for a full deadline window and was
        abandoned (its worker replaced); recover the shard."""
        with self._lock:
            self.deadline_abandons += 1
            self.failures += 1
            self.last_error = (
                f"TimeoutError: drain round abandoned after {deadline_s}s "
                f"without progress"
            )
            self.breaker.record_failure()
            self._recover_locked(lost)

    # ------------------------------------------------------------------ #
    # checkpointing / recovery
    # ------------------------------------------------------------------ #
    def checkpoint_now(self) -> None:
        """Force a checkpoint of the shard's current state."""
        with self._lock:
            self._take_checkpoint_locked()

    def _take_checkpoint_locked(self) -> None:
        self._checkpoint = self.shard._capture_checkpoint()
        self._rounds_since_checkpoint = 0
        self.checkpoints += 1

    def _recover_locked(self, lost: List[_Entry]) -> None:
        """Restore the checkpoint; rebuild the queue; re-checkpoint.

        The rebuilt queue is ``checkpoint queue + admission journal − lost``
        (each lost entry removed once, by value).  The post-recovery state
        immediately becomes the new checkpoint — its sessions are the exact
        deep copies we just made for the restore, so only the queue entry
        list (immutable events, shared not copied) needs refreshing.
        """
        start = time.perf_counter()
        self.epoch += 1
        self.lost_entries.extend(lost)
        state = dict(self._checkpoint)
        restored = self.shard._restore_from_checkpoint(state, lost)
        self._checkpoint = dict(state, queue=list(restored))
        self._rounds_since_checkpoint = 0
        self.checkpoints += 1
        self.restores += 1
        self.recovery_ms.observe((time.perf_counter() - start) * 1e3)

    def reset(self) -> None:
        """Re-arm after an external state change (cluster-level restore):
        fresh checkpoint of the current state, breaker closed, new epoch.
        Failure counters are telemetry and survive, like sinks and meters.
        """
        with self._lock:
            self.epoch += 1
            self.breaker.reset()
            self._take_checkpoint_locked()

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def health(self) -> Dict[str, object]:
        """Immutable health view of this shard for ``stats()["health"]``."""
        with self._lock:
            return {
                "breaker": self.breaker.state,
                "consecutive_failures": self.breaker.consecutive_failures,
                "breaker_opens": self.breaker.opens,
                "failures": self.failures,
                "restores": self.restores,
                "deadline_abandons": self.deadline_abandons,
                "degraded_submits": self.degraded_submits,
                "checkpoints": self.checkpoints,
                "rounds_since_checkpoint": self._rounds_since_checkpoint,
                "lost_arrivals": len(self.lost_entries),
                "stale_reports": self.stale_reports,
                "recovery_ms": self.recovery_ms.summary(),
                "last_error": self.last_error,
            }
