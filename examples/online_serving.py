"""Online serving: classify live flows as their packets arrive.

Run with::

    python examples/online_serving.py

The paper's motivating scenario (Fig. 1) is a router that must label each
network flow while its packets are still arriving.  This example

1. trains a small KVEC model offline on a synthetic Traffic-App analogue,
2. saves it as a checkpoint and reloads it (the deployment path),
3. replays the *test* flows through the arrival simulator as one live packet
   stream with overlapping flows,
4. serves the stream with the online engine over a bounded sliding window,
5. reports running accuracy / earliness / latency from the decision monitor,
6. serves the same flows again as a *multi-stream* process through the
   push-based :class:`ServingGateway` — per-stream handles, per-key decision
   futures, a subscribed decision sink, and explicit admission outcomes from
   the sharded :class:`ServingCluster` underneath (hash-routed shards,
   cross-stream batched encoding),
7. turns on the parallel backend: bursty Zipf-skewed traffic served by a
   thread worker pool (one pinned worker per shard) with adaptive drain
   batching (``batch_size="auto"``) — hot shards batch wide, cold shards
   stay at per-arrival latency, and explicit drains overlap all shards on
   real cores,
8. kills a shard mid-run with the seeded :class:`FaultInjector` and watches
   the supervision layer recover it from its periodic checkpoint — the
   replayed decisions match a never-crashed run for every non-lost arrival,
   and ``stats()["health"]`` shows the breaker/restore accounting,
9. serves from an event loop through the :class:`AsyncServingGateway` —
   awaitable submission with one concurrent submitter task per stream and
   an ``async for`` decision stream (stdlib asyncio only),
10. drains a 4-shard cluster across long-lived **worker processes**
    (``executor="process"``: shard replicas seeded from pickled checkpoints,
    rounds shipped over pipes, no shared GIL), force-kills one worker with a
    real SIGKILL mid-run, and watches supervision respawn it from the
    checkpoint — same decisions as the thread/serial backends for every
    surviving arrival,
11. swaps the process backend's round transport between ``"pipe"`` (pickled
    rounds over the worker pipe) and ``"shm"`` (flat columnar codec in
    per-worker shared-memory rings, the default) and reads the per-round
    ``transport_bytes`` / ``transport_serialize_ms`` telemetry from
    ``stats()`` — the shm rings move about half the bytes per round, with
    bit-identical decisions,
12. puts the cluster on the network: a stdlib-only
    :class:`ServingHTTPServer` front end (admission statuses as HTTP codes,
    decisions as a chunked NDJSON push stream consumed by
    :class:`ServingHTTPClient`), then goes horizontal with the
    :class:`ClusterRouter` — two cluster nodes behind consistent-hash
    stream placement, with one live stream *migrated* between nodes
    mid-run and every stream's decisions staying identical to an unmoved
    run.
"""

from __future__ import annotations

import asyncio
import tempfile
from pathlib import Path

import numpy as np

from repro.core import KVEC, KVECConfig, KVECTrainer, load_checkpoint, save_checkpoint
from repro.datasets import make_traffic_app
from repro.eval import summarize
from repro.eval.evaluator import prepare_tangled_splits
from repro.serving import (
    ArrivalSimulator,
    AsyncServingGateway,
    BufferedSink,
    ClusterConfig,
    CheckpointConfig,
    ClusterRouter,
    DecisionMonitor,
    EngineConfig,
    FaultInjector,
    FaultSpec,
    MultiStreamConfig,
    MultiStreamSimulator,
    OnlineClassificationEngine,
    ServingCluster,
    ServingGateway,
    ServingHTTPClient,
    ServingHTTPServer,
    SimulatorConfig,
    SupervisorConfig,
    ThroughputMeter,
)


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Offline training
    # ------------------------------------------------------------------ #
    dataset = make_traffic_app(num_flows=70, seed=13)
    splits = prepare_tangled_splits(dataset, concurrency=4, seed=0)
    config = KVECConfig(
        d_model=24, num_blocks=2, num_heads=2, d_state=32, dropout=0.0,
        epochs=12, batch_size=8, learning_rate=3e-3, beta=0.001,
    )
    model = KVEC(dataset.spec, dataset.num_classes, config)
    KVECTrainer(model).train(splits.train)
    offline = summarize(model.predict_tangle(splits.test[0]))
    print(f"offline sanity check: accuracy={offline.accuracy:.2f} earliness={offline.earliness:.2%}")

    # ------------------------------------------------------------------ #
    # 2. Checkpoint round trip (how a deployment would load the model)
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = save_checkpoint(model, Path(tmp) / "kvec-traffic-app")
        served_model = load_checkpoint(checkpoint)
    print("checkpoint reloaded")

    # ------------------------------------------------------------------ #
    # 3. A live packet stream built from the held-out test flows
    # ------------------------------------------------------------------ #
    test_flows = []
    for tangle in splits.test:
        test_flows.extend(tangle.per_key_sequences().values())
    simulator = ArrivalSimulator(
        test_flows, SimulatorConfig(arrival_rate=1.5, gap_scale=1.0, max_active=6, seed=1)
    )
    print(f"simulating {len(test_flows)} flows, peak concurrency {simulator.peak_concurrency()}")

    # ------------------------------------------------------------------ #
    # 4. Serve the stream
    # ------------------------------------------------------------------ #
    engine = OnlineClassificationEngine(
        served_model,
        dataset.spec,
        EngineConfig(window_items=512, halt_threshold=0.5, reencode_every=4),
    )
    monitor = DecisionMonitor(labels=simulator.labels, sequence_lengths=simulator.sequence_lengths)
    meter = ThroughputMeter()
    for event in simulator.events():
        meter.tick(event.time)
        for decision in engine.offer(event):
            monitor.observe(decision)
    for decision in engine.flush():
        monitor.observe(decision)

    # ------------------------------------------------------------------ #
    # 5. Report
    # ------------------------------------------------------------------ #
    print()
    print("=== live serving report ===")
    print(monitor.report())
    print(f"arrival throughput   {meter.rate:.2f} packets / simulated time unit")
    print(f"decisions from window truncation: {engine.num_truncated}")

    # ------------------------------------------------------------------ #
    # 6. Multi-stream serving through the push-based gateway
    # ------------------------------------------------------------------ #
    # The same flows, now partitioned across 4 concurrent stream ids with a
    # Zipf-skewed traffic share (hot streams carry most flows).  The gateway
    # wraps a 2-shard ServingCluster: offers go through per-stream handles,
    # decisions come back *pushed* — a subscribed sink receives every
    # decision in emission order (identical to the returned lists, the
    # parity suite pins this), and per-key futures resolve the moment a
    # key's decision is emitted.  Per-stream decisions are identical to the
    # single-stream engine above.
    traffic = MultiStreamSimulator(
        test_flows,
        MultiStreamConfig(
            num_streams=4,
            stream_skew=1.0,
            simulator=SimulatorConfig(arrival_rate=1.5, max_active=6, seed=2),
        ),
    )
    gateway = ServingGateway(
        served_model,
        dataset.spec,
        ClusterConfig(
            num_shards=2,
            batch_size=8,
            engine=EngineConfig(window_items=256, halt_threshold=0.5, reencode_every=2),
        ),
    )
    # Push delivery: the monitor is fed by a subscription instead of the
    # caller demultiplexing returned lists.
    sink = gateway.subscribe(BufferedSink())
    monitor = DecisionMonitor(labels=traffic.labels, sequence_lengths=traffic.sequence_lengths)
    # A per-key future: resolved whenever that flow's decision is emitted,
    # by whatever drain/flush happens to trigger it.
    events_list = list(traffic.events())
    first_event = events_list[0]
    first_flow = gateway.stream(first_event.source).result(first_event.key)
    admission = {"accepted": 0, "decided": 0}
    for event in events_list:
        result = gateway.stream(event.source).offer(event)
        admission[result.status] += 1
    gateway.flush()
    for stream_decision in sink.take():
        monitor.observe(stream_decision.decision)

    print()
    print("=== gateway report (push delivery, merged across shards) ===")
    print(f"streams: {traffic.stream_share} (Zipf-skewed shares)")
    print(monitor.report())
    stats = gateway.stats()
    print(
        f"cluster: {stats['num_shards']} shards, {stats['num_sessions']} sessions, "
        f"{stats['batch_rounds']} batched rounds covering {stats['batched_rows']} arrivals"
    )
    print(
        f"admission outcomes: {admission['accepted']} accepted, "
        f"{admission['decided']} submissions triggered decisions; "
        f"throughput {stats['items_per_s']:.0f} items/s, "
        f"{stats['decisions_per_s']:.0f} decisions/s (sliding window)"
    )
    if first_flow.done() and not first_flow.cancelled():
        decision = first_flow.result(timeout=0)
        print(
            f"future for flow {decision.key!r}: class {decision.predicted} "
            f"after {decision.observations} packets (confidence {decision.confidence:.2f})"
        )

    # Snapshots deep-copy the serving state (sharing the model weights), so
    # a deployment can checkpoint mid-stream and restore after a failover.
    # Deliveries are not serving state: the restore re-fires nothing, and
    # resolved futures stay resolved.
    snapshot = gateway.cluster.snapshot()
    gateway.cluster.restore(snapshot)
    print("snapshot/restore round trip ok")
    gateway.close()

    # ------------------------------------------------------------------ #
    # 7. Parallel shard execution under bursty, skewed traffic
    # ------------------------------------------------------------------ #
    # The same flows once more, now as an on/off *bursty* arrival process
    # (duty-cycle modulated key starts, mean rate preserved) with a strong
    # Zipf stream skew — the worst case for a serial cluster: one hot shard
    # backs up while the others idle.  The thread executor pins each of the
    # 4 shards to its own pool worker, so an explicit drain() runs all
    # shards concurrently (numpy releases the GIL inside the batched GEMMs),
    # and batch_size="auto" lets each shard's controller pick its round
    # width from its own backlog and latency EWMA.  Decisions are identical
    # to the serial cluster per stream — the parity suite pins that — only
    # the wall-clock changes.
    bursty = MultiStreamSimulator(
        test_flows,
        MultiStreamConfig(
            num_streams=8,
            stream_skew=1.2,
            simulator=SimulatorConfig(
                arrival_rate=1.5,
                max_active=6,
                seed=3,
                pattern="burst",
                burst_period=24.0,
                burst_duty=0.25,
                burst_floor=0.1,
            ),
        ),
    )
    with ServingCluster(
        served_model,
        dataset.spec,
        ClusterConfig(
            num_shards=4,
            batch_size="auto",
            executor="thread",
            auto_drain=False,
            max_queue=4096,
            engine=EngineConfig(window_items=256, halt_threshold=0.5, reencode_every=2),
        ),
    ) as parallel_cluster:
        monitor = DecisionMonitor(
            labels=bursty.labels, sequence_lengths=bursty.sequence_lengths
        )
        # Drain-scheduling serving: submissions enqueue, and every 64th
        # arrival one explicit drain lets the pool overlap all shards.
        for position, event in enumerate(bursty.events()):
            parallel_cluster.submit(event)
            if position % 64 == 63:
                for stream_decision in parallel_cluster.drain():
                    monitor.observe(stream_decision.decision)
        for stream_decision in parallel_cluster.flush():
            monitor.observe(stream_decision.decision)

        print()
        print("=== parallel cluster report (thread executor, auto batching) ===")
        print(monitor.report())
        stats = parallel_cluster.stats()
        print(
            f"executor={stats['executor']}  shards={stats['num_shards']}  "
            f"rounds={stats['rounds']}  "
            f"round p50={stats['round_latency_ms']['p50']:.2f}ms "
            f"p99={stats['round_latency_ms']['p99']:.2f}ms"
        )
        # Realized widths, not stats()["round_widths"]: after flush() the
        # queues are empty and every controller is back at its floor.
        mean_widths = [
            round(snap["rows"] / snap["rounds"], 2) if snap["rounds"] else 0.0
            for snap in stats["shard_monitors"]
        ]
        print(
            f"mean drain-round widths per shard: {mean_widths} "
            f"(hot shards batched wide, cold shards stayed near the floor)"
        )

    # ------------------------------------------------------------------ #
    # 8. Fault injection and checkpoint crash recovery
    # ------------------------------------------------------------------ #
    # Every cluster is supervised: each shard keeps a periodic checkpoint
    # (deep-copied sessions/queue sharing the model weights) plus a journal
    # of admissions since.  Here a seeded FaultInjector kills shard 1 (the
    # shard the four stream ids hash to) mid-encode; the supervisor restores
    # the checkpoint, replays the journal minus the dead round's arrivals,
    # and serving continues — the decisions for every surviving arrival are
    # exactly what a never-crashed run produces (the recovery-parity suite
    # pins this bit-for-bit).
    injector = FaultInjector(
        seed=7,
        specs=[FaultSpec(site="session-encode", action="kill", shard_id=1, after=10, limit=1)],
    )
    faulty_cluster = ServingCluster(
        served_model,
        dataset.spec,
        ClusterConfig(
            num_shards=2,
            batch_size=8,
            supervision=SupervisorConfig(checkpoint=CheckpointConfig(every_rounds=8)),
            faults=injector,
            engine=EngineConfig(window_items=256, halt_threshold=0.5, reencode_every=2),
        ),
    )
    recovered = []
    for event in events_list:
        recovered.extend(faulty_cluster.submit(event))
    recovered.extend(faulty_cluster.flush())
    health = faulty_cluster.health()
    lost = [
        (stream_id, event)
        for shard in faulty_cluster.shards
        for stream_id, event in shard.supervisor.lost_entries
    ]
    faulty_cluster.close()

    # The reference: the same cluster shape, fed everything except the
    # arrivals the dead round consumed (recovery cannot resurrect those —
    # they are the only casualties, and they are accounted, not silent).
    surviving = list(events_list)
    for _, casualty in lost:
        surviving.remove(casualty)
    reference_cluster = ServingCluster(
        served_model,
        dataset.spec,
        ClusterConfig(
            num_shards=2,
            batch_size=8,
            engine=EngineConfig(window_items=256, halt_threshold=0.5, reencode_every=2),
        ),
    )
    reference = []
    for event in surviving:
        reference.extend(reference_cluster.submit(event))
    reference.extend(reference_cluster.flush())
    reference_cluster.close()

    def first_emissions(decisions):
        firsts = {}
        for stream_decision in decisions:
            key = (stream_decision.stream_id, stream_decision.decision.key)
            firsts.setdefault(key, stream_decision.decision)
        return firsts

    got, want = first_emissions(recovered), first_emissions(reference)
    matches = sum(
        1
        for key, decision in want.items()
        if got[key].predicted == decision.predicted
        and got[key].decision_time == decision.decision_time
    )
    print()
    print("=== fault injection + crash recovery ===")
    print(
        f"injected kill faults fired: {injector.fired()}; "
        f"round failures: {health['failures']}, checkpoint restores: "
        f"{health['restores']}, arrivals lost with the dead round: "
        f"{health['lost_arrivals']}"
    )
    print(
        f"recovery parity: {matches}/{len(want)} first emissions identical "
        f"to a never-crashed reference"
    )
    print(
        f"breaker states: "
        f"{[shard_view['breaker'] for shard_view in health['shards']]}; "
        f"checkpoints taken: {health['checkpoints']}"
    )

    # ------------------------------------------------------------------ #
    # 9. Event-loop serving through the asyncio gateway
    # ------------------------------------------------------------------ #
    # The same multi-stream traffic, served from inside an event loop: one
    # concurrent submitter task per stream (awaitable submission — the event
    # loop never blocks on a drain round; shard work still runs on the
    # cluster's own thread backend) and one consumer task iterating the
    # pushed decision stream.  Per-stream decisions remain identical to the
    # sequential reference — only the waiting becomes cooperative.
    per_stream = {}
    for event in events_list:
        per_stream.setdefault(event.source, []).append(event)

    async def serve_async():
        config = ClusterConfig(
            num_shards=2,
            batch_size=8,
            executor="thread",
            engine=EngineConfig(window_items=256, halt_threshold=0.5, reencode_every=2),
        )
        async_monitor = DecisionMonitor(
            labels=traffic.labels, sequence_lengths=traffic.sequence_lengths
        )
        async with AsyncServingGateway(served_model, dataset.spec, config) as agw:

            async def consume():
                async for stream_decision in agw.decisions():
                    async_monitor.observe(stream_decision.decision)

            consumer = asyncio.create_task(consume())

            async def submit_stream(stream_id):
                for event in per_stream[stream_id]:
                    await agw.submit(event)

            await asyncio.gather(*(submit_stream(s) for s in per_stream))
            await agw.close()
            await consumer
        return async_monitor

    async_monitor = asyncio.run(serve_async())
    print()
    print("=== asyncio gateway report (concurrent submitter tasks) ===")
    print(async_monitor.report())

    # ------------------------------------------------------------------ #
    # 10. Process-parallel shard execution with real crash recovery
    # ------------------------------------------------------------------ #
    # The same bursty traffic once more, now with executor="process": every
    # shard is pinned to a long-lived worker process (shard % num_workers),
    # seeded with a pickled copy of its checkpoint state.  Drain rounds ship
    # each batch of arrivals over the worker's pipe and get the decisions
    # back — the queue, journal, checkpoints, supervision and sinks all stay
    # caller-side, so the decision stream is list-identical to the serial
    # and thread backends (the parity suite pins this).  Mid-run we SIGKILL
    # one worker process for real: the next round on the dead pipe fails,
    # the supervisor restores the shard's checkpoint and reseeds it into a
    # freshly respawned process, and serving continues.
    with ServingCluster(
        served_model,
        dataset.spec,
        ClusterConfig(
            num_shards=4,
            batch_size=8,
            executor="process",
            auto_drain=False,
            max_queue=4096,
            supervision=SupervisorConfig(checkpoint=CheckpointConfig(every_rounds=4)),
            engine=EngineConfig(window_items=256, halt_threshold=0.5, reencode_every=2),
        ),
    ) as process_cluster:
        import os
        import signal

        monitor = DecisionMonitor(
            labels=bursty.labels, sequence_lengths=bursty.sequence_lengths
        )
        bursty_events = list(bursty.events())
        kill_at = len(bursty_events) // 2
        victim_pid = None
        for position, event in enumerate(bursty_events):
            if position == kill_at:
                victim_pid = process_cluster._executor.worker_pid(0)
                os.kill(victim_pid, signal.SIGKILL)  # a real worker death
            process_cluster.submit(event)
            if position % 64 == 63:
                for stream_decision in process_cluster.drain():
                    monitor.observe(stream_decision.decision)
        for stream_decision in process_cluster.flush():
            monitor.observe(stream_decision.decision)

        health = process_cluster.health()
        print()
        print("=== process cluster report (worker processes, forced SIGKILL) ===")
        print(monitor.report())
        print(
            f"killed worker pid {victim_pid} -> respawned as pid "
            f"{process_cluster._executor.worker_pid(0)}; "
            f"worker respawns: {health['worker_respawns']}, "
            f"round failures: {health['failures']}, "
            f"checkpoint restores: {health['restores']}, "
            f"arrivals lost with the dead rounds: {health['lost_arrivals']}"
        )

    # ------------------------------------------------------------------ #
    # 11. Shared-memory round transport for the process backend
    # ------------------------------------------------------------------ #
    # transport="shm" (the default where multiprocessing.shared_memory
    # exists) replaces each round's pickled object graph with a flat codec
    # in a pair of per-worker shared-memory rings: numeric columns packed as
    # little-endian machine words, strings as length-prefixed UTF-8, with
    # the pipe reduced to a tiny control message.  The payload shrinks
    # roughly in half, and with it the caller-side serialize cost on
    # machines with a core to spare — stats() exposes both as per-round
    # telemetry.  Any round that cannot
    # ride the ring (oversized, or an exotic key type) falls back to the
    # pipe transparently; decisions are bit-identical either way.
    transport_reports = {}
    for transport in ("pipe", "shm"):
        with ServingCluster(
            served_model,
            dataset.spec,
            ClusterConfig(
                num_shards=4,
                batch_size=8,
                executor="process",
                transport=transport,
                auto_drain=False,
                max_queue=4096,
                engine=EngineConfig(
                    window_items=256, halt_threshold=0.5, reencode_every=2
                ),
            ),
        ) as transport_cluster:
            decisions = []
            for position, event in enumerate(bursty_events):
                transport_cluster.submit(event)
                if position % 64 == 63:
                    decisions.extend(transport_cluster.drain())
            decisions.extend(transport_cluster.flush())
            stats = transport_cluster.stats()
            transport_reports[transport] = (
                stats["transport"],
                stats["transport_bytes"].get("mean", 0.0),
                stats["transport_serialize_ms"].get("p50", 0.0),
                [(d.stream_id, d.decision.key, d.decision.predicted) for d in decisions],
            )
    print()
    print("=== round transport report (process backend, pipe vs shm) ===")
    for transport, (actual, mean_bytes, ser_p50, _) in transport_reports.items():
        print(
            f"transport={transport!r} (resolved {actual!r}): "
            f"{mean_bytes:.0f} bytes/round, serialize p50 {ser_p50 * 1000:.1f}us"
        )
    assert transport_reports["pipe"][3] == transport_reports["shm"][3]
    print("decision streams identical across transports: True")

    # ------------------------------------------------------------------ #
    # 12. The network tier: HTTP front end + consistent-hash router
    # ------------------------------------------------------------------ #
    # First the vertical hop: the same flows, submitted over real loopback
    # sockets.  ServingHTTPServer fronts an AsyncServingGateway with a tiny
    # stdlib HTTP/1.1 dialect — POST one arrival per request (admission
    # status doubles as the response code: decided/accepted -> 200/202,
    # reject -> 429, shed -> 503 + Retry-After), and GET /v1/decisions turns
    # the connection into a chunked NDJSON push stream.
    async def serve_over_http():
        config = ClusterConfig(
            num_shards=2,
            batch_size=8,
            engine=EngineConfig(window_items=256, halt_threshold=0.5, reencode_every=2),
        )
        async with ServingHTTPServer(
            model=served_model,
            spec=dataset.spec,
            config=config,
            port=0,  # ephemeral loopback port, published after start
            heartbeat_s=0.2,
        ) as server:
            client = ServingHTTPClient(server.host, server.port)
            pushed = []

            async def consume():
                async for decision in client.decisions():
                    pushed.append(decision)

            consumer = asyncio.create_task(consume())
            while server.stats()["server"]["decision_streams"] == 0:
                await asyncio.sleep(0.01)  # wait for the push stream to attach
            statuses = {}
            for event in events_list:
                result = await client.submit(event.source, event)
                statuses[result.status] = statuses.get(result.status, 0) + 1
            final = await client.shutdown()  # drains, flushes, closes the gateway
            await consumer  # the push stream ends when the gateway closes
            await client.close()
            return statuses, pushed, final

    statuses, pushed, final = asyncio.run(serve_over_http())
    print()
    print("=== network tier report (loopback HTTP front end) ===")
    print(
        f"admission over the wire: {statuses}; "
        f"decisions pushed while serving: {len(pushed)}, "
        f"returned by the shutdown flush: {len(final)}"
    )

    # Then the horizontal hop: two cluster *nodes* behind a ClusterRouter.
    # Stream placement is the same process-independent CRC32 consistent
    # hash the shards use, plus a migration overlay: migrate_stream() moves
    # a live stream's sessions *and* queued arrivals to another node
    # mid-run, and the decision sequences stay identical to a run that
    # never moved anything.
    def route(migrate):
        def node():
            return ServingCluster(
                served_model,
                dataset.spec,
                ClusterConfig(
                    num_shards=2,
                    batch_size=8,
                    engine=EngineConfig(
                        window_items=256, halt_threshold=0.5, reencode_every=2
                    ),
                ),
            )

        moved = min(event.source for event in events_list)
        with ClusterRouter([node(), node()]) as router:
            sink = router.subscribe(BufferedSink())
            half = len(events_list) // 2
            for event in events_list[:half]:
                router.submit(event)
            hop = None
            if migrate:
                source = router.node_index(moved)
                target = 1 - source
                router.migrate_stream(moved, target)
                hop = (moved, source, target)
            for event in events_list[half:]:
                router.submit(event)
            router.flush()
            per_stream = {}
            for stream_decision in sink.take():
                per_stream.setdefault(stream_decision.stream_id, []).append(
                    (
                        stream_decision.decision.key,
                        stream_decision.decision.predicted,
                        stream_decision.decision.decision_time,
                    )
                )
            return per_stream, hop

    migrated, hop = route(migrate=True)
    unmoved, _ = route(migrate=False)
    moved_stream, source, target = hop
    print(
        f"router: migrated live stream {moved_stream!r} from node {source} "
        f"to node {target} mid-run"
    )
    print(
        f"per-stream decisions identical to the unmigrated run: "
        f"{migrated == unmoved}"
    )
    assert migrated == unmoved


if __name__ == "__main__":
    main()
