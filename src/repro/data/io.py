"""Serialization of key-value sequence data to and from disk.

Real deployments of the paper's system ingest key-value sequences from
external systems (packet capture pipelines, clickstream logs).  This module
provides a stable on-disk representation so that generated datasets, tangled
streams and prediction records can be exported, versioned and re-loaded
without re-running the generators:

* JSON Lines (``.jsonl``) — one item / sequence / record per line, the
  primary interchange format,
* CSV — a flat item table for inspection with external tools.

All writers are deterministic (no timestamps, stable key ordering) so that
exported files are diff-friendly.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Union

from repro.core.model import PredictionRecord
from repro.data.items import Item, KeyValueSequence, TangledSequence, ValueSpec
from repro.datasets.base import GeneratedDataset

PathLike = Union[str, Path]

#: Format version written into every JSONL header record so that future
#: revisions of the schema can detect and migrate old files.
FORMAT_VERSION = 1


# --------------------------------------------------------------------------- #
# low-level item codecs
# --------------------------------------------------------------------------- #
def item_to_dict(item: Item) -> Dict:
    """Encode one item as a JSON-serializable dictionary."""
    return {"key": item.key, "value": list(int(v) for v in item.value), "time": float(item.time)}


def item_from_dict(payload: Dict) -> Item:
    """Decode one item from its dictionary representation."""
    key = payload["key"]
    if isinstance(key, list):
        key = tuple(key)
    return Item(key=key, value=tuple(int(v) for v in payload["value"]), time=float(payload["time"]))


def spec_to_dict(spec: ValueSpec) -> Dict:
    """Encode a value schema."""
    return {
        "field_names": list(spec.field_names),
        "cardinalities": list(int(c) for c in spec.cardinalities),
        "session_field": int(spec.session_field),
    }


def spec_from_dict(payload: Dict) -> ValueSpec:
    """Decode a value schema."""
    return ValueSpec(
        field_names=tuple(payload["field_names"]),
        cardinalities=tuple(int(c) for c in payload["cardinalities"]),
        session_field=int(payload["session_field"]),
    )


def _normalise_key(key) -> Hashable:
    """JSON turns tuples into lists; restore hashability on load."""
    if isinstance(key, list):
        return tuple(key)
    return key


# --------------------------------------------------------------------------- #
# per-key sequences
# --------------------------------------------------------------------------- #
def sequence_to_dict(sequence: KeyValueSequence) -> Dict:
    """Encode a labelled per-key sequence."""
    return {
        "key": sequence.key,
        "label": None if sequence.label is None else int(sequence.label),
        "items": [item_to_dict(item) for item in sequence.items],
    }


def sequence_from_dict(payload: Dict) -> KeyValueSequence:
    """Decode a labelled per-key sequence."""
    key = _normalise_key(payload["key"])
    items = [item_from_dict(entry) for entry in payload["items"]]
    label = payload.get("label")
    return KeyValueSequence(key, items, None if label is None else int(label))


def save_sequences(sequences: Sequence[KeyValueSequence], path: PathLike) -> int:
    """Write sequences to a JSONL file; returns the number of lines written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for sequence in sequences:
            handle.write(json.dumps(sequence_to_dict(sequence), sort_keys=True) + "\n")
    return len(sequences)


def load_sequences(path: PathLike) -> List[KeyValueSequence]:
    """Load per-key sequences from a JSONL file written by :func:`save_sequences`."""
    sequences: List[KeyValueSequence] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            sequences.append(sequence_from_dict(json.loads(line)))
    return sequences


# --------------------------------------------------------------------------- #
# tangled sequences
# --------------------------------------------------------------------------- #
def tangle_to_dict(tangle: TangledSequence) -> Dict:
    """Encode a tangled sequence (items, labels and name; the spec is shared)."""
    return {
        "name": tangle.name,
        "labels": [[key, int(label)] for key, label in sorted(tangle.labels.items(), key=lambda kv: str(kv[0]))],
        "items": [item_to_dict(item) for item in tangle.items],
    }


def tangle_from_dict(payload: Dict, spec: ValueSpec) -> TangledSequence:
    """Decode a tangled sequence given the dataset's value schema."""
    labels = {_normalise_key(key): int(label) for key, label in payload["labels"]}
    items = [item_from_dict(entry) for entry in payload["items"]]
    return TangledSequence(items, labels, spec, name=payload.get("name", ""))


def save_tangles(tangles: Sequence[TangledSequence], spec: ValueSpec, path: PathLike) -> int:
    """Write tangled sequences plus their shared schema to a JSONL file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        header = {"format_version": FORMAT_VERSION, "kind": "tangles", "spec": spec_to_dict(spec)}
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for tangle in tangles:
            handle.write(json.dumps(tangle_to_dict(tangle), sort_keys=True) + "\n")
    return len(tangles)


def load_tangles(path: PathLike) -> List[TangledSequence]:
    """Load tangled sequences from a JSONL file written by :func:`save_tangles`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        lines = [line.strip() for line in handle if line.strip()]
    if not lines:
        return []
    header = json.loads(lines[0])
    if header.get("kind") != "tangles":
        raise ValueError(f"{path} is not a tangled-sequence file (kind={header.get('kind')!r})")
    spec = spec_from_dict(header["spec"])
    return [tangle_from_dict(json.loads(line), spec) for line in lines[1:]]


# --------------------------------------------------------------------------- #
# full datasets
# --------------------------------------------------------------------------- #
def save_dataset(dataset: GeneratedDataset, path: PathLike) -> int:
    """Write a generated dataset (schema, metadata and every sequence) to JSONL."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "format_version": FORMAT_VERSION,
            "kind": "dataset",
            "name": dataset.name,
            "num_classes": int(dataset.num_classes),
            "class_names": list(dataset.class_names),
            "spec": spec_to_dict(dataset.spec),
            "true_stop_positions": [
                [key, int(position)]
                for key, position in sorted(dataset.true_stop_positions.items(), key=lambda kv: str(kv[0]))
            ],
        }
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for sequence in dataset.sequences:
            handle.write(json.dumps(sequence_to_dict(sequence), sort_keys=True) + "\n")
    return len(dataset.sequences)


def load_dataset(path: PathLike) -> GeneratedDataset:
    """Load a generated dataset from a JSONL file written by :func:`save_dataset`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        lines = [line.strip() for line in handle if line.strip()]
    if not lines:
        raise ValueError(f"{path} is empty")
    header = json.loads(lines[0])
    if header.get("kind") != "dataset":
        raise ValueError(f"{path} is not a dataset file (kind={header.get('kind')!r})")
    spec = spec_from_dict(header["spec"])
    sequences = [sequence_from_dict(json.loads(line)) for line in lines[1:]]
    return GeneratedDataset(
        name=header["name"],
        sequences=sequences,
        spec=spec,
        num_classes=int(header["num_classes"]),
        class_names=tuple(header.get("class_names", ())),
        true_stop_positions={
            _normalise_key(key): int(position)
            for key, position in header.get("true_stop_positions", [])
        },
    )


# --------------------------------------------------------------------------- #
# prediction records
# --------------------------------------------------------------------------- #
def record_to_dict(record: PredictionRecord) -> Dict:
    """Encode one early-classification outcome."""
    return {
        "key": record.key,
        "predicted": int(record.predicted),
        "label": int(record.label),
        "halt_observation": int(record.halt_observation),
        "sequence_length": int(record.sequence_length),
        "confidence": float(record.confidence),
        "halted_by_policy": bool(record.halted_by_policy),
    }


def record_from_dict(payload: Dict) -> PredictionRecord:
    """Decode one early-classification outcome."""
    return PredictionRecord(
        key=_normalise_key(payload["key"]),
        predicted=int(payload["predicted"]),
        label=int(payload["label"]),
        halt_observation=int(payload["halt_observation"]),
        sequence_length=int(payload["sequence_length"]),
        confidence=float(payload.get("confidence", 0.0)),
        halted_by_policy=bool(payload.get("halted_by_policy", True)),
    )


def save_records(records: Sequence[PredictionRecord], path: PathLike) -> int:
    """Write prediction records to a JSONL file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record_to_dict(record), sort_keys=True) + "\n")
    return len(records)


def load_records(path: PathLike) -> List[PredictionRecord]:
    """Load prediction records from a JSONL file written by :func:`save_records`."""
    records: List[PredictionRecord] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(record_from_dict(json.loads(line)))
    return records


# --------------------------------------------------------------------------- #
# CSV export (inspection / external tooling)
# --------------------------------------------------------------------------- #
def export_items_csv(tangle: TangledSequence, path: PathLike) -> int:
    """Export a tangled sequence as a flat CSV item table.

    Columns: ``time, key, label, position_in_sequence, <value field names...>``.
    Returns the number of item rows written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "key", "label", "position"] + list(tangle.spec.field_names))
        for index, item in enumerate(tangle.items):
            writer.writerow(
                [item.time, item.key, tangle.labels[item.key], tangle.position_in_key_sequence(index)]
                + [int(code) for code in item.value]
            )
    return len(tangle.items)


def iter_jsonl(path: PathLike) -> Iterator[Dict]:
    """Yield each JSON object of a JSONL file (generic helper for callers)."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
