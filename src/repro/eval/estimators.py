"""Adapter giving KVEC the same interface as the baselines.

The evaluation and benchmark harnesses operate on the
:class:`~repro.baselines.common.EarlyClassifier` interface (``fit`` on
tangled sequences, ``predict_tangle``).  :class:`KVECEstimator` wraps a
:class:`~repro.core.model.KVEC` model and its trainer behind that interface.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.baselines.common import EarlyClassifier
from repro.core.config import KVECConfig
from repro.core.model import KVEC, PredictionRecord
from repro.core.trainer import KVECTrainer, TrainingHistory
from repro.data.items import TangledSequence, ValueSpec


class KVECEstimator(EarlyClassifier):
    """``fit`` / ``predict_tangle`` wrapper around KVEC + its trainer."""

    name = "KVEC"

    def __init__(
        self,
        spec: ValueSpec,
        num_classes: int,
        config: Optional[KVECConfig] = None,
        halt_threshold: float = 0.5,
    ) -> None:
        self.config = config or KVECConfig()
        self.model = KVEC(spec, num_classes, self.config)
        self.trainer = KVECTrainer(self.model, self.config)
        self.halt_threshold = halt_threshold
        self.history: Optional[TrainingHistory] = None

    def fit(self, train_tangles: Sequence[TangledSequence], verbose: bool = False) -> "KVECEstimator":
        self.history = self.trainer.train(train_tangles, verbose=verbose)
        return self

    def predict_tangle(self, tangle: TangledSequence) -> List[PredictionRecord]:
        return self.model.predict_tangle(tangle, halt_threshold=self.halt_threshold)
