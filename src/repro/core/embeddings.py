"""The KVRL input embedding (Section IV-B, "Input Embedding").

Each item of the tangled sequence is embedded as the **sum** of

* a *value embedding* — one learned embedding per value field, summed over
  fields (the paper assigns one embedding per distinct value; summing
  per-field embeddings is the natural factorised form when the value is an
  l-dimensional categorical vector),
* a *membership embedding* — indexed by which key-value sequence the item
  belongs to inside the current tangled sequence,
* a *relative position embedding* — the item's position within its own
  key-value sequence, and
* a *time embedding* — the item's global arrival order in the tangled stream.

The membership and time-related embeddings can be disabled for the Fig. 9
ablations.

Eviction-stable variant (``encoding="rotary"``)
-----------------------------------------------
The absolute scheme indexes the position/time tables by the item's offset
*within the current window*, so a sliding-window eviction silently re-labels
every retained item and invalidates any cached projection of it.  Under the
rotary scheme the time-related signal moves into attention (rotary phase
rotation by global arrival index plus a relative within-key position bias —
see :mod:`repro.nn.attention`), and the membership embedding is indexed by a
**stable hash of the key** instead of the key's first-appearance rank, so an
item's embedding is a pure function of the item itself.  Hash collisions
merely make two keys share a membership vector (a bucketed feature), they do
not affect exactness of streaming serving.
"""

from __future__ import annotations

import zlib
from typing import Hashable, List, Optional

import numpy as np

from repro.data.items import TangledSequence, ValueSpec
from repro.nn.layers import Embedding
from repro.nn.module import Module, ModuleList
from repro.nn.tensor import Tensor


def stable_key_slot(key: Hashable, num_slots: int) -> int:
    """Deterministic, process-independent hash bucket for a key.

    Python's builtin ``hash`` is salted per process; CRC32 of the key's
    string form is stable across runs, which keeps checkpointed rotary models
    reproducible.
    """
    return zlib.crc32(str(key).encode("utf-8")) % num_slots


class InputEmbedding(Module):
    """Embed the items of a tangled sequence into ``(T, d_model)``."""

    def __init__(
        self,
        spec: ValueSpec,
        d_model: int,
        max_positions: int = 256,
        max_keys: int = 64,
        max_time: int = 512,
        use_membership_embedding: bool = True,
        use_time_embeddings: bool = True,
        encoding: str = "absolute",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if encoding not in ("absolute", "rotary"):
            raise ValueError(f"unknown encoding {encoding!r}")
        self.spec = spec
        self.d_model = d_model
        self.max_positions = max_positions
        self.max_keys = max_keys
        self.max_time = max_time
        self.use_membership_embedding = use_membership_embedding
        self.use_time_embeddings = use_time_embeddings
        self.encoding = encoding

        self.value_embeddings = ModuleList(
            [Embedding(cardinality, d_model, rng=rng) for cardinality in spec.cardinalities]
        )
        self.membership_embedding = Embedding(max_keys, d_model, rng=rng)
        if encoding == "absolute":
            self.position_embedding = Embedding(max_positions, d_model, rng=rng)
            self.time_embedding = Embedding(max_time, d_model, rng=rng)
        else:
            # Rotary mode carries position/time on the attention side; no
            # absolute tables are allocated (keeps checkpoints lean).
            self.position_embedding = None
            self.time_embedding = None

    def key_slot(self, key: Hashable) -> int:
        """Membership-table row for ``key`` under the rotary scheme."""
        return stable_key_slot(key, self.max_keys)

    def coordinates(self, tangle: TangledSequence, upto: Optional[int] = None):
        """Clipped embedding-table indices for every row of ``tangle[:upto]``.

        Returns ``(field_codes, membership, positions, times)`` where
        ``field_codes`` is ``(num_fields, T)`` and the rest are ``(T,)`` int
        arrays — exactly the rows :meth:`forward` gathers, so callers that
        slice these per arrival (the batched-episode runner) index the same
        table rows as the full-matrix embed.  Under the rotary scheme the
        position/time columns stay zero: those signals live on the attention
        side and the membership index is the key's stable hash slot.
        """
        length = len(tangle) if upto is None else min(upto, len(tangle))
        if length == 0:
            raise ValueError("cannot embed an empty tangled sequence")
        field_codes = np.zeros((self.spec.num_fields, length), dtype=int)
        membership = np.zeros(length, dtype=int)
        positions = np.zeros(length, dtype=int)
        times = np.zeros(length, dtype=int)
        for index in range(length):
            item = tangle[index]
            for field_index in range(self.spec.num_fields):
                field_codes[field_index, index] = item.field(field_index)
            if self.encoding == "rotary":
                membership[index] = self.key_slot(item.key)
            else:
                membership[index] = min(tangle.key_index(item.key), self.max_keys - 1)
                positions[index] = min(tangle.position_in_key_sequence(index), self.max_positions - 1)
                times[index] = min(index, self.max_time - 1)
        return field_codes, membership, positions, times

    def embed_rows(
        self,
        field_codes: np.ndarray,
        membership: np.ndarray,
        positions: np.ndarray,
        times: np.ndarray,
    ) -> Tensor:
        """Autograd batched-row embed from precomputed table indices.

        ``field_codes`` is ``(num_fields, B)`` and the coordinate arrays are
        ``(B,)`` — one column of :meth:`coordinates` per episode, already
        clipped.  Parity contract: the summation order (value fields, then
        membership, then position, then time) matches :meth:`forward`, so
        each returned row is bit-identical to the corresponding row of the
        full-matrix embed while gradients scatter back into the same table
        rows.
        """
        embedded = self.value_embeddings[0](field_codes[0])
        for field_index in range(1, self.spec.num_fields):
            embedded = embedded + self.value_embeddings[field_index](field_codes[field_index])
        if self.use_membership_embedding:
            embedded = embedded + self.membership_embedding(membership)
        if self.use_time_embeddings and self.encoding == "absolute":
            embedded = embedded + self.position_embedding(positions)
            embedded = embedded + self.time_embedding(times)
        return embedded

    def forward(self, tangle: TangledSequence, upto: Optional[int] = None) -> Tensor:
        """Return the dynamic embedding matrix ``E0`` for ``tangle[:upto]``.

        Rows are ordered by arrival, matching the correlation mask layout.
        """
        field_codes, membership, positions, times = self.coordinates(tangle, upto=upto)

        embedded = self.value_embeddings[0](field_codes[0])
        for field_index in range(1, self.spec.num_fields):
            embedded = embedded + self.value_embeddings[field_index](field_codes[field_index])
        if self.use_membership_embedding:
            embedded = embedded + self.membership_embedding(membership)
        if self.use_time_embeddings and self.encoding == "absolute":
            embedded = embedded + self.position_embedding(positions)
            embedded = embedded + self.time_embedding(times)
        return embedded

    def forward_inference(self, tangle: TangledSequence, upto: Optional[int] = None) -> np.ndarray:
        """Raw-array ``E0`` for ``tangle[:upto]`` (no autograd graph)."""
        length = len(tangle) if upto is None else min(upto, len(tangle))
        if length == 0:
            raise ValueError("cannot embed an empty tangled sequence")
        rows = np.empty((length, self.d_model), dtype=np.float64)
        for index in range(length):
            item = tangle[index]
            rows[index] = self.embed_item_inference(
                item,
                key_index=tangle.key_index(item.key),
                position=tangle.position_in_key_sequence(index),
                time_index=index,
            )
        return rows

    def embed_item_inference(
        self, item, key_index: int, position: int, time_index: int
    ) -> np.ndarray:
        """Embed one item given its tangled-stream coordinates.

        Summation order matches :meth:`forward` (value fields, membership,
        relative position, time) so streaming callers reproduce the batched
        embedding bit for bit.  Under the rotary scheme the window-relative
        coordinates are ignored: the membership row is the key's stable hash
        slot and position/time live on the attention side, so the returned
        row depends on the item alone (the eviction-stability invariant).
        """
        row = self.value_embeddings[0].weight.data[item.field(0)].copy()
        for field_index in range(1, self.spec.num_fields):
            row += self.value_embeddings[field_index].weight.data[item.field(field_index)]
        if self.encoding == "rotary":
            if self.use_membership_embedding:
                row += self.membership_embedding.weight.data[self.key_slot(item.key)]
            return row
        if self.use_membership_embedding:
            row += self.membership_embedding.weight.data[min(key_index, self.max_keys - 1)]
        if self.use_time_embeddings:
            row += self.position_embedding.weight.data[min(position, self.max_positions - 1)]
            row += self.time_embedding.weight.data[min(time_index, self.max_time - 1)]
        return row

    def embed_items_inference(
        self, items, key_indices, positions, time_indices
    ) -> np.ndarray:
        """Batched :meth:`embed_item_inference`: one table gather per signal.

        ``items`` come from ``B`` *independent* streams and the coordinate
        lists are parallel to them.  Returns the ``(B, d_model)`` embedding
        rows, identical per row to the single-item path (the same table rows
        are gathered and summed in the same order).
        """
        # Advanced (list) indexing already materialises a fresh array — no
        # defensive copy needed, unlike the scalar row lookup above.
        rows = self.value_embeddings[0].weight.data[
            [item.field(0) for item in items]
        ]
        for field_index in range(1, self.spec.num_fields):
            rows += self.value_embeddings[field_index].weight.data[
                [item.field(field_index) for item in items]
            ]
        if self.encoding == "rotary":
            if self.use_membership_embedding:
                rows += self.membership_embedding.weight.data[
                    [self.key_slot(item.key) for item in items]
                ]
            return rows
        if self.use_membership_embedding:
            rows += self.membership_embedding.weight.data[
                np.minimum(np.asarray(key_indices), self.max_keys - 1)
            ]
        if self.use_time_embeddings:
            rows += self.position_embedding.weight.data[
                np.minimum(np.asarray(positions), self.max_positions - 1)
            ]
            rows += self.time_embedding.weight.data[
                np.minimum(np.asarray(time_indices), self.max_time - 1)
            ]
        return rows
